//! The per-replica key-value store: interned keys addressing a dense vector
//! of versioned records.
//!
//! The store keeps two representations of its keyspace: the wire-form
//! [`Key`] (an `Arc<str>`), and a dense [`KeyId`] assigned by a per-store
//! [`KeyInterner`]. The `*_id` methods are the hot path — one vector index,
//! no hashing — and the [`Key`]-addressed methods are boundary conveniences
//! that resolve the id first. A replica handling a message resolves each
//! key once and runs the whole validate/log/accept sequence on the id.

use crate::intern::KeyInterner;
use crate::options::{RecordOption, RejectReason};
use crate::record::VersionedRecord;
use crate::types::{Key, KeyId, TxnId, Value, VersionNo};

/// The result of a read: the committed version and its value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadResult {
    /// Committed version number (0 for never-written keys).
    pub version: VersionNo,
    /// The committed value.
    pub value: Value,
    /// How many options are pending on the record — the likelihood model
    /// uses this as a contention signal.
    pub pending: usize,
}

impl ReadResult {
    fn absent() -> Self {
        ReadResult {
            version: 0,
            value: Value::None,
            pending: 0,
        }
    }
}

/// An in-memory store of versioned records with interned keys.
///
/// `Clone` is intentional: a cloned store is a point-in-time snapshot
/// (records are value types, keys are refcounted), which is exactly what
/// [`Wal::checkpoint`](crate::Wal::checkpoint) persists.
#[derive(Debug, Default, Clone)]
pub struct Store {
    interner: KeyInterner,
    /// Indexed by [`KeyId`]; always the same length as the interner.
    records: Vec<VersionedRecord>,
}

impl Store {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    // ---- key interning -------------------------------------------------

    /// Intern `key`, creating its (empty) record slot on first sight. This
    /// is the one place the hot path pays a string hash; everything after
    /// runs on the returned id.
    pub fn intern(&mut self, key: &Key) -> KeyId {
        let id = self.interner.intern(key);
        if self.records.len() <= id.0 as usize {
            self.records.push(VersionedRecord::new());
        }
        id
    }

    /// The id of an already-interned key, if any.
    pub fn key_id(&self, key: &Key) -> Option<KeyId> {
        self.interner.get(key)
    }

    /// The key an id stands for.
    pub fn key_name(&self, id: KeyId) -> &Key {
        self.interner.name(id)
    }

    // ---- id-addressed hot path -----------------------------------------

    /// Read the latest committed state by id.
    pub fn read_id(&self, id: KeyId) -> ReadResult {
        let r = &self.records[id.0 as usize];
        ReadResult {
            version: r.current_version(),
            value: r.current_value().clone(),
            pending: r.pending_count(),
        }
    }

    /// Validate an option against a record by id without mutating anything.
    pub fn validate_id(&self, id: KeyId, option: &RecordOption) -> Result<(), RejectReason> {
        self.records[id.0 as usize].validate(option)
    }

    /// Validate and accept an option by id.
    pub fn accept_id(&mut self, id: KeyId, option: RecordOption) -> Result<(), RejectReason> {
        self.records[id.0 as usize].accept(option)
    }

    /// Learn a transaction outcome by id; returns the new version if one
    /// was committed.
    pub fn decide_id(&mut self, id: KeyId, txn: TxnId, commit: bool) -> Option<VersionNo> {
        self.records[id.0 as usize].decide(txn, commit)
    }

    /// Install a committed version by state transfer, by id.
    pub fn install_id(&mut self, id: KeyId, version: VersionNo, value: Value, txn: TxnId) -> bool {
        self.records[id.0 as usize].install(version, value, txn)
    }

    /// Direct access to a record by id.
    pub fn record_id(&self, id: KeyId) -> &VersionedRecord {
        &self.records[id.0 as usize]
    }

    // ---- key-addressed boundary API ------------------------------------

    /// Read the latest committed state of a key. Never fails: unknown keys
    /// read as version 0, `Value::None`.
    pub fn read(&self, key: &Key) -> ReadResult {
        match self.key_id(key) {
            Some(id) => self.read_id(id),
            None => ReadResult::absent(),
        }
    }

    /// Validate an option without mutating anything.
    pub fn validate(&self, key: &Key, option: &RecordOption) -> Result<(), RejectReason> {
        match self.key_id(key) {
            Some(id) => self.validate_id(id, option),
            None => VersionedRecord::new().validate(option),
        }
    }

    /// Validate and accept an option on a key.
    pub fn accept(&mut self, key: &Key, option: RecordOption) -> Result<(), RejectReason> {
        let id = self.intern(key);
        self.accept_id(id, option)
    }

    /// Learn a transaction outcome on a key; returns the new version if one
    /// was committed.
    pub fn decide(&mut self, key: &Key, txn: TxnId, commit: bool) -> Option<VersionNo> {
        self.key_id(key)
            .and_then(|id| self.decide_id(id, txn, commit))
    }

    /// Install a committed version by state transfer; see
    /// [`VersionedRecord::install`].
    pub fn install(&mut self, key: &Key, version: VersionNo, value: Value, txn: TxnId) -> bool {
        let id = self.intern(key);
        self.install_id(id, version, value, txn)
    }

    /// Direct access to a record (e.g. pending inspection), if its key has
    /// been interned.
    pub fn record(&self, key: &Key) -> Option<&VersionedRecord> {
        self.key_id(key).map(|id| self.record_id(id))
    }

    // ---- whole-store traversal -----------------------------------------

    /// Number of interned keys.
    pub fn len(&self) -> usize {
        self.interner.len()
    }

    /// True if no record exists.
    pub fn is_empty(&self) -> bool {
        self.interner.is_empty()
    }

    /// Iterate keys in sorted order (deterministic regardless of the order
    /// keys arrived in).
    pub fn keys(&self) -> impl Iterator<Item = &Key> {
        self.interner.keys_sorted().into_iter()
    }

    /// Total pending options across all records.
    pub fn total_pending(&self) -> usize {
        self.records.iter().map(|r| r.pending_count()).sum()
    }

    /// Garbage-collect version chains, keeping the newest `keep` versions of
    /// each record.
    pub fn gc(&mut self, keep: usize) {
        for r in &mut self.records {
            r.gc(keep);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::WriteOp;

    fn txn(n: u64) -> TxnId {
        TxnId::new(1, n)
    }

    #[test]
    fn read_unknown_key() {
        let s = Store::new();
        let r = s.read(&Key::new("missing"));
        assert_eq!(r.version, 0);
        assert_eq!(r.value, Value::None);
        assert_eq!(r.pending, 0);
        assert!(s.is_empty());
    }

    #[test]
    fn accept_decide_read_cycle() {
        let mut s = Store::new();
        let k = Key::new("a");
        s.accept(
            &k,
            RecordOption::new(txn(1), 0, WriteOp::Set(Value::Int(7))),
        )
        .unwrap();
        assert_eq!(s.read(&k).pending, 1);
        assert_eq!(s.decide(&k, txn(1), true), Some(1));
        let r = s.read(&k);
        assert_eq!(r.version, 1);
        assert_eq!(r.value, Value::Int(7));
        assert_eq!(r.pending, 0);
    }

    #[test]
    fn id_path_matches_key_path() {
        let mut s = Store::new();
        let k = Key::new("a");
        let id = s.intern(&k);
        assert_eq!(s.intern(&k), id, "intern is idempotent");
        assert_eq!(s.key_id(&k), Some(id));
        assert_eq!(s.key_name(id), &k);
        s.accept_id(
            id,
            RecordOption::new(txn(1), 0, WriteOp::Set(Value::Int(7))),
        )
        .unwrap();
        assert_eq!(s.decide_id(id, txn(1), true), Some(1));
        assert_eq!(s.read_id(id), s.read(&k));
        assert_eq!(s.record_id(id).version_count(), 1);
    }

    #[test]
    fn validate_does_not_mutate() {
        let s = Store::new();
        let k = Key::new("a");
        let opt = RecordOption::new(txn(1), 0, WriteOp::Set(Value::Int(1)));
        s.validate(&k, &opt).unwrap();
        assert!(s.is_empty());
        // Validation against a missing record behaves like an empty record:
        // stale expected version is caught.
        let stale = RecordOption::new(txn(1), 5, WriteOp::Set(Value::Int(1)));
        assert!(s.validate(&k, &stale).is_err());
    }

    #[test]
    fn decide_on_unknown_key_is_noop() {
        let mut s = Store::new();
        assert_eq!(s.decide(&Key::new("nope"), txn(1), true), None);
    }

    #[test]
    fn total_pending_sums_across_keys() {
        let mut s = Store::new();
        for (i, k) in ["a", "b", "c"].iter().enumerate() {
            s.accept(
                &Key::new(*k),
                RecordOption::new(txn(i as u64), 0, WriteOp::add(1)),
            )
            .unwrap();
        }
        assert_eq!(s.total_pending(), 3);
        assert_eq!(s.len(), 3);
        assert_eq!(s.keys().count(), 3);
    }

    #[test]
    fn keys_iterate_sorted_not_in_arrival_order() {
        let mut s = Store::new();
        for k in ["z", "a", "m"] {
            s.accept(&Key::new(k), RecordOption::new(txn(1), 0, WriteOp::add(1)))
                .unwrap();
        }
        let order: Vec<&str> = s.keys().map(|k| k.as_str()).collect();
        assert_eq!(order, vec!["a", "m", "z"]);
    }

    #[test]
    fn snapshot_clone_is_independent() {
        let mut s = Store::new();
        let k = Key::new("a");
        s.accept(
            &k,
            RecordOption::new(txn(1), 0, WriteOp::Set(Value::Int(1))),
        )
        .unwrap();
        s.decide(&k, txn(1), true);
        let snap = s.clone();
        s.accept(&k, RecordOption::new(txn(2), 1, WriteOp::add(5)))
            .unwrap();
        s.decide(&k, txn(2), true);
        assert_eq!(s.read(&k).value, Value::Int(6));
        assert_eq!(snap.read(&k).value, Value::Int(1), "snapshot unaffected");
    }

    #[test]
    fn gc_applies_to_all_records() {
        let mut s = Store::new();
        let k = Key::new("a");
        for v in 1..=5u64 {
            s.accept(
                &k,
                RecordOption::new(txn(v), v - 1, WriteOp::Set(Value::Int(v as i64))),
            )
            .unwrap();
            s.decide(&k, txn(v), true);
        }
        s.gc(2);
        assert_eq!(s.record(&k).unwrap().version_count(), 2);
        assert_eq!(s.read(&k).value, Value::Int(5));
    }
}
