//! End-to-end: attach generated workloads to a full deployment and check
//! system-level behaviour.

use planet_core::{FinalOutcome, Planet, Protocol, SimDuration};
use planet_workload::{
    preload_events, stock_key, Arrival, KeyChooser, KeyDistribution, TicketConfig, TicketWorkload,
    WriteKind, YcsbConfig, YcsbWorkload,
};

#[test]
fn ycsb_open_loop_runs_and_commits() {
    let mut db = Planet::builder().protocol(Protocol::Fast).seed(1).build();
    for site in 0..5 {
        let w = YcsbWorkload::new(
            YcsbConfig {
                arrival: Arrival::poisson(5.0),
                limit: Some(20),
                ..Default::default()
            },
            KeyChooser::new(format!("s{site}"), KeyDistribution::Uniform { n: 10_000 }),
        );
        db.attach_source(site, Box::new(w));
    }
    db.run_for(SimDuration::from_secs(30));
    let records = db.all_records();
    assert_eq!(records.len(), 100, "all issued txns must finish");
    let commits = records.iter().filter(|r| r.outcome.is_commit()).count();
    assert!(
        commits >= 98,
        "uncontended YCSB should commit nearly all, got {commits}"
    );
}

#[test]
fn contended_ycsb_aborts_with_physical_but_not_commutative() {
    let run = |kind: WriteKind, seed: u64| {
        let mut db = Planet::builder()
            .protocol(Protocol::Fast)
            .seed(seed)
            .build();
        // Seed the counters high (and first) so commutative decrements never
        // hit the floor and never race the seeding writes.
        let seedtxn = planet_core::PlanetTxn::builder()
            .set("hot:0", 1_000_000i64)
            .set("hot:1", 1_000_000i64)
            .set("hot:2", 1_000_000i64)
            .set("hot:3", 1_000_000i64)
            .build();
        db.submit(0, seedtxn);
        db.run_for(SimDuration::from_secs(5));
        for site in 0..5 {
            let w = YcsbWorkload::new(
                YcsbConfig {
                    arrival: Arrival::poisson(8.0),
                    write_kind: kind,
                    limit: Some(30),
                    ..Default::default()
                },
                // Tiny hot keyspace shared by all sites.
                KeyChooser::new("hot", KeyDistribution::Zipfian { n: 4, theta: 0.9 }),
            );
            db.attach_source(site, Box::new(w));
        }
        db.run_for(SimDuration::from_secs(60));
        let records = db.all_records();
        let commits = records.iter().filter(|r| r.outcome.is_commit()).count();
        (commits, records.len())
    };
    let (physical_commits, n1) = run(WriteKind::Physical, 7);
    let (commutative_commits, n2) = run(WriteKind::Commutative, 7);
    assert_eq!(n1, 151);
    assert_eq!(n2, 151);
    assert!(
        physical_commits < commutative_commits,
        "commutative options must tolerate contention: {physical_commits} vs {commutative_commits}"
    );
    assert!(
        commutative_commits as f64 / n2 as f64 > 0.9,
        "bounded adds should nearly all commit: {commutative_commits}/{n2}"
    );
}

#[test]
fn ticket_sales_never_oversell_and_speculate() {
    let config = TicketConfig {
        events: 20,
        theta: 0.9,
        initial_stock: 50,
        arrival: Arrival::poisson(10.0),
        limit: Some(40),
        ..Default::default()
    };
    let mut db = Planet::builder().protocol(Protocol::Fast).seed(3).build();
    preload_events(&mut db, &config);
    for site in 0..5 {
        db.attach_source(
            site,
            Box::new(TicketWorkload::new(config.clone(), site as u8)),
        );
    }
    db.run_for(SimDuration::from_secs(60));

    let records = db.all_records();
    // Only count the purchases (2-key writes), not the preload seeds.
    let purchases: Vec<_> = records.iter().filter(|r| r.write_keys == 2).collect();
    assert_eq!(purchases.len(), 200);
    let commits = purchases.iter().filter(|r| r.outcome.is_commit()).count();
    assert!(
        commits > 150,
        "most purchases should succeed, got {commits}"
    );
    let speculated = purchases
        .iter()
        .filter(|r| r.speculated_at.is_some())
        .count();
    assert!(
        speculated > 100,
        "purchases should speculate, got {speculated}"
    );

    // Stock accounting: committed purchases per event == stock consumed,
    // and no replica ever shows negative stock.
    for event in 0..config.events {
        for site in 0..5 {
            if let planet_core::Value::Int(stock) = db.read_local(site, &stock_key(event)) {
                assert!((0..=config.initial_stock).contains(&stock));
            }
        }
    }
    // Total consumed equals committed purchases (each buys exactly 1).
    let consumed: i64 = (0..config.events)
        .map(|e| match db.read_local(0, &stock_key(e)) {
            planet_core::Value::Int(s) => config.initial_stock - s,
            _ => 0,
        })
        .sum();
    assert_eq!(
        consumed as usize, commits,
        "tickets sold must equal committed purchases"
    );
}

#[test]
fn flash_sale_sells_out_exactly() {
    // One event, tiny stock, heavy demand: exactly `stock` purchases commit.
    let config = TicketConfig {
        events: 1,
        theta: 0.0,
        initial_stock: 10,
        arrival: Arrival::poisson(20.0),
        limit: Some(30),
        speculate_at: None,
        deadline: None,
        ..Default::default()
    };
    let mut db = Planet::builder()
        .protocol(Protocol::Classic)
        .seed(4)
        .build();
    preload_events(&mut db, &config);
    for site in 0..5 {
        db.attach_source(
            site,
            Box::new(TicketWorkload::new(config.clone(), site as u8)),
        );
    }
    db.run_for(SimDuration::from_secs(120));

    let purchases: Vec<_> = db
        .all_records()
        .into_iter()
        .filter(|r| r.write_keys == 2)
        .collect();
    assert_eq!(purchases.len(), 150);
    let commits = purchases.iter().filter(|r| r.outcome.is_commit()).count();
    assert_eq!(commits, 10, "exactly the stock must sell");
    match db.read_local(0, &stock_key(0)) {
        planet_core::Value::Int(s) => assert_eq!(s, 0, "sold out"),
        other => panic!("unexpected stock value {other:?}"),
    }
    let aborted = purchases
        .iter()
        .filter(|r| r.outcome == FinalOutcome::Aborted)
        .count();
    assert_eq!(aborted, 140);
}

#[test]
fn closed_loop_paces_on_completions() {
    // 3 virtual users, zero think time, ~170ms commits from us-east: each
    // user completes ~5-6 txns/s, so over 20 simulated seconds the client
    // sees roughly 3 × 20/0.17 ≈ 350 txns — and crucially, never more than
    // 3 in flight at once.
    let mut db = Planet::builder().protocol(Protocol::Fast).seed(9).build();
    let w = YcsbWorkload::new(
        YcsbConfig {
            arrival: Arrival::every(SimDuration::from_micros(1)), // ~no think time
            closed_loop: Some(3),
            ..Default::default()
        },
        KeyChooser::new("cl", KeyDistribution::Uniform { n: 100_000 }),
    );
    db.attach_source(0, Box::new(w));
    db.run_for(SimDuration::from_secs(20));
    let n = db.records(0).len();
    assert!(
        (250..=450).contains(&n),
        "3 closed-loop users at ~170ms/txn over 20s should finish ~350, got {n}"
    );

    // The open-loop equivalent at a huge rate would flood far more than
    // that; verify the contrast.
    let mut db2 = Planet::builder().protocol(Protocol::Fast).seed(10).build();
    let w2 = YcsbWorkload::new(
        YcsbConfig {
            arrival: Arrival::poisson(100.0),
            ..Default::default()
        },
        KeyChooser::new("ol", KeyDistribution::Uniform { n: 100_000 }),
    );
    db2.attach_source(0, Box::new(w2));
    db2.run_for(SimDuration::from_secs(20));
    assert!(
        db2.records(0).len() > 3 * n,
        "open loop at 100/s must far exceed the closed loop: {} vs {n}",
        db2.records(0).len()
    );
}
