//! Compiled ≡ interpreted: a compiled plan must be observationally
//! identical to the interpreted `TxnSpec` it specializes.
//!
//! Property: for the same simulation seed and the same parameter stream,
//! a deployment that registers a [`TxnProgram`] and submits `(PlanId,
//! params)` produces *exactly* the same per-transaction outcomes, the same
//! latencies, and the same committed values as one that submits the
//! instantiated `TxnSpec`s through the interpreted path. The compiled path
//! skips string hashing, routing and dispatch per transaction — it must
//! never change what the database does, only how fast it gets there.

use std::collections::BTreeSet;

use planet_core::{FinalOutcome, PlanParam, Planet, PlanetTxn, Protocol, SimDuration, TxnProgram};
use planet_sim::DetRng;
use planet_storage::{Key, Value};
use planet_workload::{
    preload_events, ticket_program, ycsb_point_program, KeyChooser, KeyDistribution, TicketConfig,
    TicketPlanParams, WriteKind, YcsbPointParams,
};

/// Build the interpreted twin of one plan execution: the `PlanetTxn`
/// carrying the fully-instantiated spec the coordinator would reconstruct.
fn interpreted_txn(program: &TxnProgram, params: &[PlanParam]) -> PlanetTxn {
    let inst = program.instantiate(params).expect("params fit the program");
    let mut b = PlanetTxn::builder();
    for key in inst.reads {
        b = b.read(key);
    }
    for (key, op) in inst.writes {
        b = b.write(key, op);
    }
    if inst.quorum_reads {
        b = b.quorum_reads();
    }
    b.build()
}

/// Every key one parameter vector touches (for the final value sweep).
fn touched_keys(program: &TxnProgram, params: &[PlanParam]) -> Vec<Key> {
    let inst = program.instantiate(params).expect("params fit the program");
    inst.reads
        .into_iter()
        .chain(inst.writes.into_iter().map(|(k, _)| k))
        .collect()
}

/// What one run observed: per-txn outcomes and latencies in submission
/// order, then the committed value of every touched key at every site.
#[derive(Debug, PartialEq)]
struct Observation {
    outcomes: Vec<(FinalOutcome, SimDuration)>,
    values: Vec<(usize, Key, Value)>,
}

/// Run one deployment over the parameter stream; `compiled` picks the path.
fn run(
    seed: u64,
    program: &TxnProgram,
    param_stream: &[Vec<PlanParam>],
    compiled: bool,
    preload: &dyn Fn(&mut Planet),
) -> Observation {
    let mut db = Planet::builder()
        .protocol(Protocol::Fast)
        .seed(seed)
        .build();
    preload(&mut db);
    db.install_program(1, program.clone())
        .expect("program installs");
    let sites = db.num_sites();
    let base = db.now();
    let handles: Vec<_> = param_stream
        .iter()
        .enumerate()
        .map(|(i, params)| {
            let at = base + SimDuration::from_millis(5 + i as u64 * 20);
            let site = i % sites;
            if compiled {
                let txn = PlanetTxn::builder().via_plan(1, params.clone()).build();
                db.submit_at(site, at, txn)
            } else {
                db.submit_at(site, at, interpreted_txn(program, params))
            }
        })
        .collect();
    db.run_for(SimDuration::from_secs(60));

    let outcomes = handles
        .iter()
        .map(|h| {
            let r = db.record(*h).expect("txn finished");
            (r.outcome, r.latency)
        })
        .collect();
    let keys: BTreeSet<Key> = param_stream
        .iter()
        .flat_map(|p| touched_keys(program, p))
        .collect();
    let values = (0..sites)
        .flat_map(|site| keys.iter().map(move |k| (site, k.clone())))
        .map(|(site, k)| {
            let v = db.read_local(site, &k);
            (site, k, v)
        })
        .collect();
    Observation { outcomes, values }
}

/// Assert the two paths observe the same world, over several seeds.
fn assert_equivalent(
    program: &TxnProgram,
    streams: impl Fn(&mut DetRng) -> Vec<Vec<PlanParam>>,
    preload: &dyn Fn(&mut Planet),
) {
    for seed in [3, 17, 92] {
        let mut rng = DetRng::new(seed ^ 0xD1CE);
        let param_stream = streams(&mut rng);
        let compiled = run(seed, program, &param_stream, true, preload);
        let interpreted = run(seed, program, &param_stream, false, preload);
        assert_eq!(
            compiled.outcomes, interpreted.outcomes,
            "seed {seed}: compiled and interpreted outcomes diverge"
        );
        assert_eq!(
            compiled.values, interpreted.values,
            "seed {seed}: committed state diverges"
        );
        assert!(
            compiled
                .outcomes
                .iter()
                .any(|(o, _)| *o == FinalOutcome::Committed),
            "seed {seed}: a useful equivalence run commits at least once"
        );
    }
}

#[test]
fn ycsb_physical_point_writes_are_equivalent() {
    let chooser = KeyChooser::new("eq", KeyDistribution::Uniform { n: 16 });
    let program = ycsb_point_program(&chooser, WriteKind::Physical);
    assert_equivalent(
        &program,
        |rng| {
            let mut gen = YcsbPointParams::new(
                KeyChooser::new("eq", KeyDistribution::Uniform { n: 16 }),
                WriteKind::Physical,
            );
            (0..40).map(|_| gen.next_params(rng)).collect()
        },
        &|_| {},
    );
}

#[test]
fn ycsb_commutative_point_writes_are_equivalent() {
    // Zipfian contention on commutative decrements: aborts and floor hits
    // must land identically on both paths.
    let dist = KeyDistribution::Zipfian { n: 8, theta: 0.9 };
    let chooser = KeyChooser::new("eq", dist);
    let program = ycsb_point_program(&chooser, WriteKind::Commutative);
    assert_equivalent(
        &program,
        |rng| {
            let mut gen = YcsbPointParams::new(
                KeyChooser::new("eq", KeyDistribution::Zipfian { n: 8, theta: 0.9 }),
                WriteKind::Commutative,
            );
            (0..40).map(|_| gen.next_params(rng)).collect()
        },
        &|db| {
            // Seed stock so the floor-bounded decrements have room to
            // commit; both paths see the identical preloaded state.
            let base = db.now();
            for i in 0..8u64 {
                let txn = PlanetTxn::builder().set(format!("eq:{i}"), 50i64).build();
                db.submit_at(0, base + SimDuration::from_micros(1 + i * 500), txn);
            }
            db.run_for(SimDuration::from_secs(5));
        },
    );
}

#[test]
fn ticket_purchases_are_equivalent() {
    // The three-op purchase: a read, a bounded decrement, and a derived-key
    // insert — exercises the plan reader path and the key-template renderer.
    let config = TicketConfig {
        events: 6,
        initial_stock: 10,
        tickets_per_purchase: 2,
        theta: 0.9,
        ..Default::default()
    };
    let program = ticket_program(&config, 0);
    let cfg = config.clone();
    assert_equivalent(
        &program,
        move |rng| {
            let mut gen = TicketPlanParams::new(&cfg);
            (0..30).map(|_| gen.next_params(rng)).collect()
        },
        &|db| preload_events(db, &config),
    );
}
