//! Compiled-plan editions of the workloads: the [`TxnProgram`]s that YCSB
//! point operations and the ticket-sales purchase compile to, plus the
//! per-execution parameter generators that drive them.
//!
//! An interpreted workload ships a full [`planet_core::TxnSpec`] per
//! transaction — key strings, write ops, the lot. The compiled edition
//! registers one program per workload shape up front and then submits only
//! `(PlanId, params)`: a key-table index and an integer or two. The
//! generators here draw from the *same* key distributions as their
//! interpreted twins, so a compiled run is an apples-to-apples ablation of
//! the interpreted one (`exp_plan` in planet-bench measures exactly that).

use planet_core::{PlanParam, TxnProgram};
use planet_plan::{DeltaRef, KeyRef, KeyTemplate, OpTemplate};
use planet_sim::DetRng;

use crate::keyspace::KeyChooser;
use crate::ticket::TicketConfig;
use crate::ycsb::WriteKind;

/// The YCSB point-op program: one write to a parameter-chosen key of the
/// chooser's keyspace. [`WriteKind::Physical`] takes a second integer
/// parameter (the set value); [`WriteKind::Commutative`] compiles the
/// bounded decrement (`Add(-1)`, floor 0) into the plan itself.
pub fn ycsb_point_program(chooser: &KeyChooser, kind: WriteKind) -> TxnProgram {
    let mut prog = TxnProgram::new(match kind {
        WriteKind::Physical => "ycsb-point-set",
        WriteKind::Commutative => "ycsb-point-add",
    });
    for i in 0..chooser.keyspace() {
        prog.intern(chooser.key_at(i));
    }
    let op = match kind {
        WriteKind::Physical => OpTemplate::SetParam(1),
        WriteKind::Commutative => OpTemplate::Add {
            delta: DeltaRef::Const(-1),
            lower: Some(0),
            upper: None,
        },
    };
    prog.write(KeyRef::Param(0), op)
}

/// Per-execution parameters for [`ycsb_point_program`], drawing keys from
/// the same distribution the interpreted [`crate::YcsbWorkload`] uses.
pub struct YcsbPointParams {
    chooser: KeyChooser,
    kind: WriteKind,
    counter: i64,
}

impl YcsbPointParams {
    /// A parameter stream over `chooser`'s distribution.
    pub fn new(chooser: KeyChooser, kind: WriteKind) -> Self {
        YcsbPointParams {
            chooser,
            kind,
            counter: 0,
        }
    }

    /// Draw the next execution's parameters.
    pub fn next_params(&mut self, rng: &mut DetRng) -> Vec<PlanParam> {
        let key = PlanParam::Key(self.chooser.sample_index(rng) as u32);
        match self.kind {
            WriteKind::Physical => {
                self.counter += 1;
                vec![key, PlanParam::Int(self.counter)]
            }
            WriteKind::Commutative => vec![key],
        }
    }

    /// Box into a [`planet_cluster::PlanSource`] for
    /// [`planet_cluster::LoadClient::with_plan`].
    pub fn into_source(mut self) -> planet_cluster::PlanSource {
        Box::new(move |rng| self.next_params(rng))
    }
}

/// The ticket-purchase program for one site: read the stock record of a
/// parameter-chosen event, decrement it with a floor of zero, and insert a
/// unique `order:{site}:{issued}` record via a derived-key template. Params:
/// `[Key(event index), Int(issued), Int(event id)]`.
pub fn ticket_program(config: &TicketConfig, site: u8) -> TxnProgram {
    let mut prog = TxnProgram::new(format!("ticket-purchase-{site}"));
    for event in 0..config.events {
        prog.intern(crate::ticket::stock_key(event));
    }
    prog.read(KeyRef::Param(0))
        .write(
            KeyRef::Param(0),
            OpTemplate::Add {
                delta: DeltaRef::Const(-config.tickets_per_purchase),
                lower: Some(0),
                upper: None,
            },
        )
        .write(
            KeyRef::Derived(KeyTemplate::new().lit(format!("order:{site}:")).param(1)),
            OpTemplate::SetParam(2),
        )
}

/// Per-execution parameters for [`ticket_program`], drawing events from the
/// same Zipfian popularity the interpreted [`crate::TicketWorkload`] uses.
pub struct TicketPlanParams {
    events: KeyChooser,
    issued: i64,
}

impl TicketPlanParams {
    /// A purchase-parameter stream over `config`'s event popularity.
    pub fn new(config: &TicketConfig) -> Self {
        TicketPlanParams {
            events: KeyChooser::new(
                "event",
                crate::keyspace::KeyDistribution::Zipfian {
                    n: config.events,
                    theta: config.theta,
                },
            ),
            issued: 0,
        }
    }

    /// Draw the next purchase's parameters.
    pub fn next_params(&mut self, rng: &mut DetRng) -> Vec<PlanParam> {
        let event = self.events.sample_index(rng);
        let issued = self.issued;
        self.issued += 1;
        vec![
            PlanParam::Key(event as u32),
            PlanParam::Int(issued),
            PlanParam::Int(event as i64),
        ]
    }

    /// Box into a [`planet_cluster::PlanSource`] for
    /// [`planet_cluster::LoadClient::with_plan`].
    pub fn into_source(mut self) -> planet_cluster::PlanSource {
        Box::new(move |rng| self.next_params(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keyspace::KeyDistribution;
    use planet_storage::{Key, Value, WriteOp};

    fn chooser(n: u64) -> KeyChooser {
        KeyChooser::new("k", KeyDistribution::Uniform { n })
    }

    #[test]
    fn ycsb_program_instantiates_like_the_interpreted_txn() {
        let prog = ycsb_point_program(&chooser(8), WriteKind::Physical);
        prog.validate().expect("valid");
        let inst = prog
            .instantiate(&[PlanParam::Key(3), PlanParam::Int(41)])
            .expect("instantiate");
        assert!(inst.reads.is_empty());
        assert_eq!(
            inst.writes,
            vec![(Key::new("k:3"), WriteOp::Set(Value::Int(41)))]
        );

        let prog = ycsb_point_program(&chooser(8), WriteKind::Commutative);
        let inst = prog.instantiate(&[PlanParam::Key(5)]).expect("instantiate");
        assert_eq!(
            inst.writes,
            vec![(Key::new("k:5"), WriteOp::add_with_floor(-1, 0))]
        );
    }

    #[test]
    fn ycsb_params_match_the_program_arity() {
        let mut rng = DetRng::new(7);
        let mut phys = YcsbPointParams::new(chooser(8), WriteKind::Physical);
        let prog = ycsb_point_program(&chooser(8), WriteKind::Physical);
        for _ in 0..50 {
            let params = phys.next_params(&mut rng);
            prog.instantiate(&params).expect("params fit the program");
        }
        let mut comm = YcsbPointParams::new(chooser(8), WriteKind::Commutative);
        let prog = ycsb_point_program(&chooser(8), WriteKind::Commutative);
        for _ in 0..50 {
            let params = comm.next_params(&mut rng);
            prog.instantiate(&params).expect("params fit the program");
        }
    }

    #[test]
    fn ticket_program_matches_the_interpreted_purchase() {
        let config = TicketConfig {
            events: 10,
            tickets_per_purchase: 2,
            ..Default::default()
        };
        let prog = ticket_program(&config, 3);
        prog.validate().expect("valid");
        let inst = prog
            .instantiate(&[PlanParam::Key(4), PlanParam::Int(17), PlanParam::Int(4)])
            .expect("instantiate");
        assert_eq!(inst.reads, vec![Key::new("event:4:stock")]);
        assert_eq!(
            inst.writes,
            vec![
                (Key::new("event:4:stock"), WriteOp::add_with_floor(-2, 0)),
                (Key::new("order:3:17"), WriteOp::Set(Value::Int(4))),
            ]
        );
    }

    #[test]
    fn ticket_params_produce_unique_orders() {
        let config = TicketConfig {
            events: 10,
            ..Default::default()
        };
        let prog = ticket_program(&config, 1);
        let mut gen = TicketPlanParams::new(&config);
        let mut rng = DetRng::new(9);
        let mut orders = std::collections::HashSet::new();
        for _ in 0..100 {
            let params = gen.next_params(&mut rng);
            let inst = prog.instantiate(&params).expect("instantiate");
            assert!(orders.insert(inst.writes[1].0.clone()), "orders unique");
        }
    }
}
