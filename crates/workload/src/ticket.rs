//! The ticket-sales workload — PLANET's motivating use case.
//!
//! A user buys tickets for a (possibly very hot) event: the transaction
//! reads the event record, decrements its remaining-stock counter with a
//! floor of zero (a commutative, demarcation-bounded write), and inserts a
//! unique order record (a physical write that never conflicts). Popularity
//! across events is Zipfian — a flash-sale event absorbs most purchases —
//! and purchases speculate: the storefront shows "you got it!" as soon as
//! the likelihood crosses the configured threshold.

use planet_core::{Planet, PlanetTxn, SimTime, TxnSource};
use planet_sim::{DetRng, SimDuration};
use planet_storage::{Key, Value, WriteOp};

use crate::arrival::Arrival;
use crate::keyspace::{KeyChooser, KeyDistribution};

/// Configuration for [`TicketWorkload`].
#[derive(Debug, Clone)]
pub struct TicketConfig {
    /// Number of events on sale.
    pub events: u64,
    /// Zipf skew of event popularity.
    pub theta: f64,
    /// Initial stock per event.
    pub initial_stock: i64,
    /// Tickets bought per purchase.
    pub tickets_per_purchase: i64,
    /// Arrival process of purchases at this site.
    pub arrival: Arrival,
    /// Speculation threshold for the storefront (None = no speculation).
    pub speculate_at: Option<f64>,
    /// Storefront response deadline.
    pub deadline: Option<SimDuration>,
    /// Stop after this many purchases (`None` = unbounded).
    pub limit: Option<u64>,
}

impl Default for TicketConfig {
    fn default() -> Self {
        TicketConfig {
            events: 100,
            theta: 0.9,
            initial_stock: 1_000,
            tickets_per_purchase: 1,
            arrival: Arrival::poisson(20.0),
            speculate_at: Some(0.95),
            deadline: Some(SimDuration::from_millis(300)),
            limit: None,
        }
    }
}

/// The key of an event's stock record.
pub fn stock_key(event: u64) -> Key {
    Key::new(format!("event:{event}:stock"))
}

/// Preload event stock into a deployment (run before attaching workloads).
/// Submits one seeding transaction per event from site 0 and runs the
/// simulation until they are durable.
pub fn preload_events(db: &mut Planet, config: &TicketConfig) {
    let base = db.now();
    for event in 0..config.events {
        let txn = PlanetTxn::builder()
            .set(stock_key(event), Value::Int(config.initial_stock))
            .build();
        // Pipeline the seeding writes; distinct keys never conflict.
        db.submit_at(0, base + SimDuration::from_micros(event * 500), txn);
    }
    db.run_for(SimDuration::from_secs(config.events / 100 + 5));
}

/// The ticket-purchase transaction source for one site.
pub struct TicketWorkload {
    config: TicketConfig,
    events: KeyChooser,
    site: u8,
    issued: u64,
}

impl TicketWorkload {
    /// A purchase stream for `site` (used to make order keys unique).
    pub fn new(config: TicketConfig, site: u8) -> Self {
        let events = KeyChooser::new(
            "event",
            KeyDistribution::Zipfian {
                n: config.events,
                theta: config.theta,
            },
        );
        TicketWorkload {
            config,
            events,
            site,
            issued: 0,
        }
    }

    /// Purchases issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    fn purchase(&mut self, rng: &mut DetRng) -> PlanetTxn {
        let event = self.events.sample_index(rng);
        let order_key = Key::new(format!("order:{}:{}", self.site, self.issued));
        let mut b = PlanetTxn::builder()
            .read(stock_key(event))
            .write(
                stock_key(event),
                WriteOp::add_with_floor(-self.config.tickets_per_purchase, 0),
            )
            .write(order_key, WriteOp::Set(Value::Int(event as i64)));
        if let Some(d) = self.config.deadline {
            b = b.deadline(d);
        }
        if let Some(t) = self.config.speculate_at {
            b = b.speculate_at(t);
        }
        b.build()
    }
}

impl TxnSource for TicketWorkload {
    fn next_txn(&mut self, _now: SimTime, rng: &mut DetRng) -> Option<(PlanetTxn, SimDuration)> {
        if let Some(limit) = self.config.limit {
            if self.issued >= limit {
                return None;
            }
        }
        let txn = self.purchase(rng);
        self.issued += 1;
        let gap = self.config.arrival.next_gap(rng);
        Some((txn, gap))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn purchase_reads_stock_and_writes_two_keys() {
        let mut w = TicketWorkload::new(TicketConfig::default(), 3);
        let mut rng = DetRng::new(1);
        let (txn, _) = w.next_txn(SimTime::ZERO, &mut rng).unwrap();
        assert_eq!(txn.spec.reads.len(), 1);
        assert_eq!(txn.spec.writes.len(), 2);
        // First write is a bounded decrement on a stock key.
        let (key, op) = &txn.spec.writes[0];
        assert!(key.as_str().starts_with("event:"));
        assert!(matches!(
            op,
            WriteOp::Add {
                delta: -1,
                lower: Some(0),
                ..
            }
        ));
        // Second write is the unique order insert.
        let (okey, oop) = &txn.spec.writes[1];
        assert_eq!(okey.as_str(), "order:3:0");
        assert!(matches!(oop, WriteOp::Set(_)));
    }

    #[test]
    fn order_keys_are_unique_per_purchase() {
        let mut w = TicketWorkload::new(TicketConfig::default(), 1);
        let mut rng = DetRng::new(2);
        let (a, _) = w.next_txn(SimTime::ZERO, &mut rng).unwrap();
        let (b, _) = w.next_txn(SimTime::ZERO, &mut rng).unwrap();
        assert_ne!(a.spec.writes[1].0, b.spec.writes[1].0);
    }

    #[test]
    fn limit_is_respected() {
        let cfg = TicketConfig {
            limit: Some(2),
            ..Default::default()
        };
        let mut w = TicketWorkload::new(cfg, 0);
        let mut rng = DetRng::new(3);
        assert!(w.next_txn(SimTime::ZERO, &mut rng).is_some());
        assert!(w.next_txn(SimTime::ZERO, &mut rng).is_some());
        assert!(w.next_txn(SimTime::ZERO, &mut rng).is_none());
    }

    #[test]
    fn popularity_is_skewed() {
        let cfg = TicketConfig {
            events: 50,
            theta: 0.95,
            ..Default::default()
        };
        let mut w = TicketWorkload::new(cfg, 0);
        let mut rng = DetRng::new(4);
        let mut head = 0;
        for _ in 0..2000 {
            let (txn, _) = w.next_txn(SimTime::ZERO, &mut rng).unwrap();
            let stock = &txn.spec.writes[0].0;
            let idx: u64 = stock.as_str().split(':').nth(1).unwrap().parse().unwrap();
            if idx < 3 {
                head += 1;
            }
        }
        assert!(head > 700, "top-3 events drew {head}/2000");
    }
}
