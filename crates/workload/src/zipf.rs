//! Zipfian key-popularity generator.
//!
//! The classic YCSB/Gray construction: item ranks are drawn with
//! `P(rank = i) ∝ 1/i^θ`. θ = 0 degenerates to uniform; θ ≈ 0.99 is the
//! YCSB default "hot-spot" skew. The generator precomputes the harmonic
//! normalisers so each draw is O(1).

use planet_sim::DetRng;

/// A Zipf-distributed integer generator over `[0, n)`.
///
/// ```
/// use planet_workload::Zipf;
/// use planet_sim::DetRng;
///
/// let zipf = Zipf::new(1_000, 0.9);
/// let mut rng = DetRng::new(7);
/// let head = (0..1_000).filter(|_| zipf.sample(&mut rng) < 10).count();
/// assert!(head > 200, "rank 0-9 dominate at theta=0.9, got {head}/1000");
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    /// A generator over `n` items with skew `theta` (`0 ≤ theta < 1` for
    /// this construction; use [`Zipf::uniform`] for θ = 0).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "need at least one item");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    /// A uniform generator (θ = 0).
    pub fn uniform(n: u64) -> Self {
        Self::new(n, 0.0)
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Exact sum for small n; Euler–Maclaurin style approximation above.
        if n <= 10_000 {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            let head: f64 = (1..=10_000u64).map(|i| 1.0 / (i as f64).powf(theta)).sum();
            // ∫_{10000}^{n} x^-θ dx
            let a = 1.0 - theta;
            head + ((n as f64).powf(a) - 10_000f64.powf(a)) / a
        }
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draw a rank in `[0, n)`; rank 0 is the most popular item.
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        let u = rng.unit_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram(z: &Zipf, draws: usize, seed: u64) -> Vec<u64> {
        let mut rng = DetRng::new(seed);
        let mut counts = vec![0u64; z.n() as usize];
        for _ in 0..draws {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        counts
    }

    #[test]
    fn all_samples_in_range() {
        let z = Zipf::new(100, 0.9);
        let mut rng = DetRng::new(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn uniform_theta_is_flat() {
        let z = Zipf::uniform(10);
        let counts = histogram(&z, 100_000, 2);
        for &c in &counts {
            let freq = c as f64 / 100_000.0;
            assert!((freq - 0.1).abs() < 0.02, "freq {freq}");
        }
    }

    #[test]
    fn high_theta_concentrates_on_head() {
        let z = Zipf::new(1000, 0.99);
        let counts = histogram(&z, 100_000, 3);
        let head: u64 = counts[..10].iter().sum();
        assert!(
            head as f64 / 100_000.0 > 0.35,
            "top-10 of 1000 should draw >35% at θ=0.99, got {}",
            head as f64 / 100_000.0
        );
        // And the ordering is roughly monotone: rank 0 beats rank 100.
        assert!(counts[0] > counts[100]);
    }

    #[test]
    fn moderate_theta_matches_zipf_ratios() {
        // P(0)/P(1) should be ≈ 2^θ.
        let theta = 0.8;
        let z = Zipf::new(100, theta);
        let counts = histogram(&z, 400_000, 4);
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!(
            (ratio - 2f64.powf(theta)).abs() < 0.25,
            "P0/P1 ratio {ratio}, expected {}",
            2f64.powf(theta)
        );
    }

    #[test]
    fn large_n_zeta_approximation_is_sane() {
        let z = Zipf::new(10_000_000, 0.9);
        let mut rng = DetRng::new(5);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 10_000_000);
        }
    }

    #[test]
    #[should_panic]
    fn theta_one_rejected() {
        let _ = Zipf::new(10, 1.0);
    }
}
