//! # planet-workload
//!
//! Workload generation for the PLANET reproduction: Zipfian key popularity,
//! YCSB-style read/write mixes, the paper's motivating ticket-sales
//! scenario, Poisson/uniform arrival processes and load-spike schedules.
//!
//! Generators implement [`planet_core::TxnSource`] and attach to a site via
//! [`planet_core::Planet::attach_source`]; each site's client then paces the
//! arrivals inside the deterministic simulation.

#![warn(missing_docs)]

pub mod anomaly;
pub mod arrival;
pub mod keyspace;
pub mod plan;
pub mod ticket;
pub mod ycsb;
pub mod zipf;

pub use anomaly::{SpecGen, ANOMALY_WORKLOADS};
pub use arrival::{Arrival, LoadSchedule};
pub use keyspace::{KeyChooser, KeyDistribution};
pub use plan::{ticket_program, ycsb_point_program, TicketPlanParams, YcsbPointParams};
pub use ticket::{preload_events, stock_key, TicketConfig, TicketWorkload};
pub use ycsb::{WriteKind, YcsbConfig, YcsbWorkload};
pub use zipf::Zipf;
