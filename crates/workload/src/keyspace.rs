//! Key selection: how a workload picks which records to touch.

use planet_sim::DetRng;
use planet_storage::Key;

use crate::zipf::Zipf;

/// How keys are drawn from the keyspace.
#[derive(Debug, Clone)]
pub enum KeyDistribution {
    /// Uniform over `[0, n)`.
    Uniform {
        /// Keyspace size.
        n: u64,
    },
    /// Zipfian with skew `theta` over `[0, n)`.
    Zipfian {
        /// Keyspace size.
        n: u64,
        /// Skew (0 = uniform, 0.99 = heavy YCSB skew).
        theta: f64,
    },
    /// With probability `hot_prob`, draw uniformly from the first
    /// `hot_keys`; otherwise uniformly from the rest.
    HotSpot {
        /// Keyspace size.
        n: u64,
        /// Size of the hot set.
        hot_keys: u64,
        /// Probability of hitting the hot set.
        hot_prob: f64,
    },
}

/// A key chooser: a distribution plus a name prefix.
#[derive(Debug, Clone)]
pub struct KeyChooser {
    prefix: String,
    dist: KeyDistribution,
    sampler: Option<Zipf>,
}

impl KeyChooser {
    /// Build a chooser producing keys `"<prefix>:<index>"`.
    pub fn new(prefix: impl Into<String>, dist: KeyDistribution) -> Self {
        let sampler = match &dist {
            KeyDistribution::Zipfian { n, theta } => Some(Zipf::new(*n, *theta)),
            _ => None,
        };
        KeyChooser {
            prefix: prefix.into(),
            dist,
            sampler,
        }
    }

    /// Keyspace size.
    pub fn keyspace(&self) -> u64 {
        match self.dist {
            KeyDistribution::Uniform { n }
            | KeyDistribution::Zipfian { n, .. }
            | KeyDistribution::HotSpot { n, .. } => n,
        }
    }

    /// Draw a key index.
    pub fn sample_index(&self, rng: &mut DetRng) -> u64 {
        match &self.dist {
            KeyDistribution::Uniform { n } => rng.range_u64(0, *n),
            KeyDistribution::Zipfian { .. } => self
                .sampler
                .as_ref()
                .expect("sampler built in new")
                .sample(rng),
            KeyDistribution::HotSpot {
                n,
                hot_keys,
                hot_prob,
            } => {
                if rng.bernoulli(*hot_prob) {
                    rng.range_u64(0, (*hot_keys).min(*n))
                } else if *hot_keys >= *n {
                    rng.range_u64(0, *n)
                } else {
                    rng.range_u64(*hot_keys, *n)
                }
            }
        }
    }

    /// Draw a key.
    pub fn sample(&self, rng: &mut DetRng) -> Key {
        Key::new(format!("{}:{}", self.prefix, self.sample_index(rng)))
    }

    /// The key for a specific index (e.g. for preloading).
    pub fn key_at(&self, index: u64) -> Key {
        Key::new(format!("{}:{}", self.prefix, index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_space() {
        let c = KeyChooser::new("u", KeyDistribution::Uniform { n: 8 });
        let mut rng = DetRng::new(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(c.sample_index(&mut rng));
        }
        assert_eq!(seen.len(), 8);
        assert_eq!(c.keyspace(), 8);
    }

    #[test]
    fn hotspot_favors_hot_set() {
        let c = KeyChooser::new(
            "h",
            KeyDistribution::HotSpot {
                n: 1000,
                hot_keys: 10,
                hot_prob: 0.9,
            },
        );
        let mut rng = DetRng::new(2);
        let hot = (0..10_000)
            .filter(|_| c.sample_index(&mut rng) < 10)
            .count();
        assert!((8_500..9_500).contains(&hot), "hot draws {hot}");
    }

    #[test]
    fn zipfian_skews() {
        let c = KeyChooser::new("z", KeyDistribution::Zipfian { n: 100, theta: 0.9 });
        let mut rng = DetRng::new(3);
        let top = (0..10_000).filter(|_| c.sample_index(&mut rng) < 5).count();
        assert!(top > 3_000, "top-5 draws {top}");
    }

    #[test]
    fn keys_carry_prefix() {
        let c = KeyChooser::new("stock", KeyDistribution::Uniform { n: 3 });
        assert_eq!(c.key_at(2), Key::new("stock:2"));
        let mut rng = DetRng::new(4);
        assert!(c.sample(&mut rng).as_str().starts_with("stock:"));
    }

    #[test]
    fn degenerate_hotspot_with_full_hot_set() {
        let c = KeyChooser::new(
            "h",
            KeyDistribution::HotSpot {
                n: 5,
                hot_keys: 10,
                hot_prob: 0.1,
            },
        );
        let mut rng = DetRng::new(5);
        for _ in 0..100 {
            assert!(c.sample_index(&mut rng) < 5);
        }
    }
}
