//! A YCSB-style micro-workload: single- and multi-key transactions over a
//! keyspace with configurable skew, mix and arrival process.

use planet_core::{PlanetTxn, SourceMode, TxnSource};
use planet_sim::{DetRng, SimDuration, SimTime};
use planet_storage::{Value, WriteOp};

use crate::arrival::{Arrival, LoadSchedule};
use crate::keyspace::KeyChooser;

/// What kind of write the workload issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteKind {
    /// Physical `Set` writes (conflict on concurrency).
    Physical,
    /// Commutative bounded decrements (`Add(-1)` with floor 0).
    Commutative,
}

/// Configuration for [`YcsbWorkload`].
#[derive(Debug, Clone)]
pub struct YcsbConfig {
    /// Fraction of transactions that are read-only.
    pub read_ratio: f64,
    /// Keys touched per transaction.
    pub keys_per_txn: usize,
    /// Physical or commutative writes.
    pub write_kind: WriteKind,
    /// Arrival process.
    pub arrival: Arrival,
    /// Load spikes (empty = flat).
    pub schedule: LoadSchedule,
    /// Per-transaction deadline, if any.
    pub deadline: Option<SimDuration>,
    /// Speculation threshold, if speculation is on.
    pub speculate_at: Option<f64>,
    /// Stop after this many transactions (`None` = unbounded).
    pub limit: Option<u64>,
    /// `Some(n)`: closed loop with `n` virtual users — each submits its
    /// next transaction only after the previous finishes plus a think time
    /// drawn from `arrival`. `None` (default): open loop.
    pub closed_loop: Option<usize>,
}

impl Default for YcsbConfig {
    fn default() -> Self {
        YcsbConfig {
            read_ratio: 0.0,
            keys_per_txn: 1,
            write_kind: WriteKind::Physical,
            arrival: Arrival::poisson(10.0),
            schedule: LoadSchedule::flat(),
            deadline: None,
            speculate_at: None,
            limit: None,
            closed_loop: None,
        }
    }
}

/// The YCSB-style transaction source; attach to a site with
/// [`planet_core::Planet::attach_source`].
pub struct YcsbWorkload {
    config: YcsbConfig,
    keys: KeyChooser,
    issued: u64,
    counter: u64,
}

impl YcsbWorkload {
    /// Build a workload over the given key chooser.
    pub fn new(config: YcsbConfig, keys: KeyChooser) -> Self {
        assert!(config.keys_per_txn >= 1);
        YcsbWorkload {
            config,
            keys,
            issued: 0,
            counter: 0,
        }
    }

    /// Transactions issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    fn build_txn(&mut self, rng: &mut DetRng) -> PlanetTxn {
        let mut b = PlanetTxn::builder();
        let read_only = rng.bernoulli(self.config.read_ratio);
        // Draw distinct keys for the transaction.
        let mut chosen = Vec::with_capacity(self.config.keys_per_txn);
        let mut guard = 0;
        while chosen.len() < self.config.keys_per_txn && guard < 1000 {
            let k = self.keys.sample(rng);
            if !chosen.contains(&k) {
                chosen.push(k);
            }
            guard += 1;
        }
        for key in chosen {
            if read_only {
                b = b.read(key);
            } else {
                self.counter += 1;
                b = match self.config.write_kind {
                    WriteKind::Physical => {
                        b.write(key, WriteOp::Set(Value::Int(self.counter as i64)))
                    }
                    WriteKind::Commutative => b.write(key, WriteOp::add_with_floor(-1, 0)),
                };
            }
        }
        if let Some(d) = self.config.deadline {
            b = b.deadline(d);
        }
        if let Some(t) = self.config.speculate_at {
            b = b.speculate_at(t);
        }
        b.build()
    }
}

impl TxnSource for YcsbWorkload {
    fn next_txn(&mut self, now: SimTime, rng: &mut DetRng) -> Option<(PlanetTxn, SimDuration)> {
        if let Some(limit) = self.config.limit {
            if self.issued >= limit {
                return None;
            }
        }
        self.issued += 1;
        let txn = self.build_txn(rng);
        let gap = self
            .config
            .schedule
            .scale_gap(self.config.arrival.next_gap(rng), now);
        Some((txn, gap))
    }

    fn mode(&self) -> SourceMode {
        match self.config.closed_loop {
            Some(concurrency) => SourceMode::Closed { concurrency },
            None => SourceMode::Open,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keyspace::KeyDistribution;

    fn chooser(n: u64) -> KeyChooser {
        KeyChooser::new("k", KeyDistribution::Uniform { n })
    }

    #[test]
    fn respects_limit() {
        let mut w = YcsbWorkload::new(
            YcsbConfig {
                limit: Some(3),
                ..Default::default()
            },
            chooser(100),
        );
        let mut rng = DetRng::new(1);
        for _ in 0..3 {
            assert!(w.next_txn(SimTime::ZERO, &mut rng).is_some());
        }
        assert!(w.next_txn(SimTime::ZERO, &mut rng).is_none());
        assert_eq!(w.issued(), 3);
    }

    #[test]
    fn builds_multi_key_write_txns() {
        let mut w = YcsbWorkload::new(
            YcsbConfig {
                keys_per_txn: 3,
                ..Default::default()
            },
            chooser(1000),
        );
        let mut rng = DetRng::new(2);
        let (txn, _) = w.next_txn(SimTime::ZERO, &mut rng).unwrap();
        assert_eq!(txn.spec.writes.len(), 3);
        // Keys are distinct.
        let keys: std::collections::HashSet<_> =
            txn.spec.writes.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(keys.len(), 3);
    }

    #[test]
    fn read_ratio_produces_read_only_txns() {
        let mut w = YcsbWorkload::new(
            YcsbConfig {
                read_ratio: 1.0,
                ..Default::default()
            },
            chooser(10),
        );
        let mut rng = DetRng::new(3);
        let (txn, _) = w.next_txn(SimTime::ZERO, &mut rng).unwrap();
        assert!(txn.spec.is_read_only());
        assert_eq!(txn.spec.reads.len(), 1);
    }

    #[test]
    fn commutative_kind_issues_bounded_adds() {
        let mut w = YcsbWorkload::new(
            YcsbConfig {
                write_kind: WriteKind::Commutative,
                ..Default::default()
            },
            chooser(10),
        );
        let mut rng = DetRng::new(4);
        let (txn, _) = w.next_txn(SimTime::ZERO, &mut rng).unwrap();
        match &txn.spec.writes[0].1 {
            WriteOp::Add { delta, lower, .. } => {
                assert_eq!(*delta, -1);
                assert_eq!(*lower, Some(0));
            }
            other => panic!("expected Add, got {other:?}"),
        }
    }

    #[test]
    fn load_schedule_compresses_gaps_inside_spikes() {
        use crate::arrival::LoadSchedule;
        use planet_sim::SimTime;
        let sched =
            LoadSchedule::flat().spike(SimTime::from_secs(100), SimTime::from_secs(200), 4.0);
        let mut w = YcsbWorkload::new(
            YcsbConfig {
                arrival: Arrival::every(SimDuration::from_millis(40)),
                schedule: sched,
                ..Default::default()
            },
            chooser(100),
        );
        let mut rng = DetRng::new(9);
        let (_, calm_gap) = w.next_txn(SimTime::from_secs(10), &mut rng).unwrap();
        let (_, spike_gap) = w.next_txn(SimTime::from_secs(150), &mut rng).unwrap();
        assert_eq!(calm_gap, SimDuration::from_millis(40));
        assert_eq!(spike_gap, SimDuration::from_millis(10), "4x load = 1/4 gap");
    }

    #[test]
    fn deadline_and_speculation_flow_through() {
        let mut w = YcsbWorkload::new(
            YcsbConfig {
                deadline: Some(SimDuration::from_millis(250)),
                speculate_at: Some(0.9),
                ..Default::default()
            },
            chooser(10),
        );
        let mut rng = DetRng::new(5);
        let (txn, _) = w.next_txn(SimTime::ZERO, &mut rng).unwrap();
        assert_eq!(txn.deadline, Some(SimDuration::from_millis(250)));
        assert_eq!(txn.speculation_threshold, Some(0.9));
    }
}
