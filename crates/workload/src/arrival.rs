//! Arrival processes: when transactions are submitted.

use planet_sim::{DetRng, SimDuration, SimTime};

/// The inter-arrival process of an open-loop workload.
#[derive(Debug, Clone)]
pub enum Arrival {
    /// Poisson arrivals at `rate` transactions per second.
    Poisson {
        /// Mean arrival rate (txn/s).
        rate: f64,
    },
    /// Fixed gap between submissions.
    Uniform {
        /// The gap.
        gap: SimDuration,
    },
}

impl Arrival {
    /// Poisson arrivals at `rate` transactions per second.
    pub fn poisson(rate: f64) -> Self {
        assert!(rate > 0.0);
        Arrival::Poisson { rate }
    }

    /// One transaction every `gap`.
    pub fn every(gap: SimDuration) -> Self {
        Arrival::Uniform { gap }
    }

    /// Draw the next inter-arrival gap.
    pub fn next_gap(&self, rng: &mut DetRng) -> SimDuration {
        match self {
            Arrival::Poisson { rate } => {
                let secs = rng.exponential(*rate);
                SimDuration::from_micros((secs * 1e6).round().max(1.0) as u64)
            }
            Arrival::Uniform { gap } => *gap,
        }
    }

    /// The mean rate in transactions per second.
    pub fn rate(&self) -> f64 {
        match self {
            Arrival::Poisson { rate } => *rate,
            Arrival::Uniform { gap } => 1.0 / gap.as_secs_f64().max(1e-12),
        }
    }
}

/// A time-varying rate multiplier — load spikes for the spike experiments.
#[derive(Debug, Clone, Default)]
pub struct LoadSchedule {
    /// `(from, to, multiplier)` windows; overlaps take the maximum.
    pub windows: Vec<(SimTime, SimTime, f64)>,
}

impl LoadSchedule {
    /// No spikes.
    pub fn flat() -> Self {
        Self::default()
    }

    /// Add a spike window.
    pub fn spike(mut self, from: SimTime, to: SimTime, factor: f64) -> Self {
        assert!(factor > 0.0);
        self.windows.push((from, to, factor));
        self
    }

    /// The rate multiplier at `now`.
    pub fn factor_at(&self, now: SimTime) -> f64 {
        self.windows
            .iter()
            .filter(|(from, to, _)| now >= *from && now < *to)
            .map(|&(_, _, f)| f)
            .fold(1.0, f64::max)
    }

    /// Scale a gap by the inverse of the current load factor (higher load
    /// ⇒ shorter gaps).
    pub fn scale_gap(&self, gap: SimDuration, now: SimTime) -> SimDuration {
        let f = self.factor_at(now);
        SimDuration::from_micros(((gap.as_micros() as f64 / f).round() as u64).max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_mean_gap_matches_rate() {
        let a = Arrival::poisson(100.0); // 100 txn/s → 10ms mean gap
        let mut rng = DetRng::new(1);
        let n = 20_000;
        let mean_us: f64 = (0..n)
            .map(|_| a.next_gap(&mut rng).as_micros() as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean_us - 10_000.0).abs() < 300.0, "mean gap {mean_us}us");
        assert_eq!(a.rate(), 100.0);
    }

    #[test]
    fn uniform_gap_is_constant() {
        let a = Arrival::every(SimDuration::from_millis(5));
        let mut rng = DetRng::new(2);
        assert_eq!(a.next_gap(&mut rng), SimDuration::from_millis(5));
        assert!((a.rate() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn schedule_scales_gaps_inside_windows() {
        let sched = LoadSchedule::flat().spike(SimTime::from_secs(10), SimTime::from_secs(20), 4.0);
        let gap = SimDuration::from_millis(8);
        assert_eq!(sched.scale_gap(gap, SimTime::from_secs(5)), gap);
        assert_eq!(
            sched.scale_gap(gap, SimTime::from_secs(15)),
            SimDuration::from_millis(2)
        );
        assert_eq!(sched.factor_at(SimTime::from_secs(25)), 1.0);
    }

    #[test]
    fn overlapping_spikes_take_max() {
        let sched = LoadSchedule::flat()
            .spike(SimTime::ZERO, SimTime::from_secs(10), 2.0)
            .spike(SimTime::from_secs(5), SimTime::from_secs(10), 3.0);
        assert_eq!(sched.factor_at(SimTime::from_secs(7)), 3.0);
        assert_eq!(sched.factor_at(SimTime::from_secs(2)), 2.0);
    }
}
