//! `planet-load` — a multi-client load driver for a `planetd` deployment.
//!
//! Spawns `--clients` closed-loop [`LoadClient`] actors, round-robined
//! across the sites in `--addrs`, each driving its site's coordinator over
//! TCP. After `--secs` of measurement the driver drains the completion
//! channel and prints throughput and latency percentiles.
//!
//! ```text
//! planet-load --addrs 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 \
//!     --clients 32 --secs 10 --keys 64
//! ```
//!
//! `--workload <name>` swaps the default single-key-increment mix for one of
//! the anomaly recipes registered in `planet-workload` (one shared generator
//! feeds all clients, so e.g. write-skew mirror twins land on different
//! clients concurrently). `--trace <path>` appends client-observed outcome
//! events in `planet-audit`'s trace format; pair it with the servers'
//! `planetd --trace` files for a full audit.

use std::net::SocketAddr;
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex};
// check:allow(determinism) — live closed-loop driver; wall-clock windows are the point
use std::time::{Duration, Instant};

use planet_cluster::{
    mailbox, spawn_node, Clock, LoadClient, LoadRecord, PlaneConfig, PoolMembers, Reactor,
    SpecSource, TcpTransport, Transport,
};
use planet_mdcc::{FileSink, Msg, Outcome, Trace};
use planet_sim::metrics::Histogram;
use planet_sim::{Actor, ActorId, SiteId};
use planet_storage::Key;
use planet_workload::{SpecGen, ANOMALY_WORKLOADS};

struct Args {
    addrs: Vec<SocketAddr>,
    clients: usize,
    secs: u64,
    keys: usize,
    shards: usize,
    workers: usize,
    workload: Option<String>,
    trace: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: planet-load --addrs <a0,a1,...> [--clients <n>] [--secs <s>] [--keys <k>] [--shards <s>]\n\
         \x20                 [--workers <w>] [--workload <name>] [--trace <path>]\n\
         \x20 --workers: reactor worker threads multiplexing the clients\n\
         \x20            (default: host parallelism; 0 = thread per client)\n\
         \x20 --workload: replace the increment mix with an anomaly recipe ({})\n\
         \x20 --trace: append client-observed outcomes in planet-audit trace format",
        ANOMALY_WORKLOADS.join(", ")
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut addrs = Vec::new();
    let mut clients = 8;
    let mut secs = 10;
    let mut keys = 64;
    let mut shards = 1;
    let mut workers = planet_cluster::default_workers();
    let mut workload = None;
    let mut trace = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addrs" => {
                let Some(list) = args.next() else { usage() };
                addrs = list
                    .split(',')
                    .map(|a| a.parse().unwrap_or_else(|_| usage()))
                    .collect();
            }
            "--clients" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => clients = v,
                None => usage(),
            },
            "--secs" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => secs = v,
                None => usage(),
            },
            "--keys" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => keys = v,
                None => usage(),
            },
            // Must match the servers' --shards: coordinator ids sit above
            // the shards*n replica id block.
            "--shards" => match args.next().and_then(|v| v.parse().ok()).filter(|&s| s >= 1) {
                Some(v) => shards = v,
                None => usage(),
            },
            "--workers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => workers = v,
                None => usage(),
            },
            "--workload" => match args.next() {
                Some(w) if SpecGen::by_name(&w).is_some() => workload = Some(w),
                _ => usage(),
            },
            "--trace" => match args.next() {
                Some(p) => trace = Some(p),
                None => usage(),
            },
            _ => usage(),
        }
    }
    if addrs.is_empty() || clients == 0 || keys == 0 {
        usage();
    }
    Args {
        addrs,
        clients,
        secs,
        keys,
        shards,
        workers,
        workload,
        trace,
    }
}

fn main() {
    let args = parse_args();
    let n = args.addrs.len();
    let clock = Clock::new();
    let key_space: Vec<Key> = (0..args.keys)
        .map(|i| Key::new(format!("load-{i}")))
        .collect();

    // Route only to the coordinators; replies come back down our own
    // connections via the servers' learned-peer routes. Coordinator ids
    // depend on the deployment's shard count (replicas occupy 0..shards*n).
    let coord_base = args.shards * n;
    let transport = TcpTransport::new();
    for (site, addr) in args.addrs.iter().enumerate() {
        transport.add_route((coord_base + site) as u32, *addr);
    }

    // One shared generator behind a mutex: clients pull specs interleaved,
    // so paired transactions (write-skew twins, snapshot pairs) go to
    // *different* clients and genuinely overlap.
    let spec_gen: Option<Arc<Mutex<SpecGen>>> = args
        .workload
        .as_deref()
        .and_then(SpecGen::by_name)
        .map(|g| Arc::new(Mutex::new(g)));
    let (trace, trace_sink) = match &args.trace {
        Some(path) => {
            let sink = match FileSink::create(std::path::Path::new(path)) {
                Ok(sink) => Arc::new(sink),
                Err(e) => {
                    eprintln!("planet-load: cannot create trace file {path}: {e}");
                    std::process::exit(1);
                }
            };
            (Trace::to(sink.clone()), Some(sink))
        }
        None => (Trace::off(), None),
    };

    let plane = PlaneConfig::default().with_workers(args.workers);
    // Reactor mode (workers > 0) multiplexes the clients as pooled tasks
    // over the worker threads; workers == 0 keeps a thread per client.
    let reactor = (plane.workers > 0).then(|| Reactor::new(clock, plane, 0x10AD));
    let (results_tx, results_rx) = channel::<LoadRecord>();
    let make_client = |site: usize| -> Box<dyn Actor<Msg>> {
        let mut load = LoadClient::new(
            ActorId((coord_base + site) as u32),
            key_space.clone(),
            results_tx.clone(),
        )
        .with_trace(trace.clone());
        if let Some(gen) = &spec_gen {
            let gen = gen.clone();
            let source: SpecSource =
                Box::new(move |rng| gen.lock().expect("spec generator poisoned").next_spec(rng));
            load = load.with_spec_source(source);
        }
        Box::new(load)
    };
    let mut nodes = Vec::new();
    let mut pools = Vec::new();
    match &reactor {
        // Clients chunk into one pool task per worker per site — a task
        // per client would pay the full scheduling cost for every ~2
        // messages of work, while chunks keep batch amortization and stay
        // stealable across workers.
        Some(reactor) => {
            for site in 0..n {
                let ids: Vec<u32> = (0..args.clients)
                    .filter(|k| k % n == site)
                    .map(|k| (coord_base + n + k) as u32)
                    .collect();
                if ids.is_empty() {
                    continue;
                }
                let chunk = ids.len().div_ceil(reactor.workers()).max(1);
                for group in ids.chunks(chunk) {
                    let (tx, rx) = mailbox(plane.mailbox_capacity);
                    let members: PoolMembers = group
                        .iter()
                        .map(|&id| {
                            transport.host(id, tx.clone());
                            (ActorId(id), make_client(site))
                        })
                        .collect();
                    pools.push(reactor.spawn_pool(
                        members,
                        SiteId(site as u8),
                        tx,
                        rx,
                        transport.clone() as Arc<dyn Transport>,
                    ));
                }
            }
        }
        None => {
            for k in 0..args.clients {
                let site = k % n;
                let id = (coord_base + n + k) as u32;
                let (tx, rx) = mailbox(plane.mailbox_capacity);
                transport.host(id, tx.clone());
                nodes.push(spawn_node(
                    ActorId(id),
                    SiteId(site as u8),
                    make_client(site),
                    tx,
                    rx,
                    transport.clone() as Arc<dyn Transport>,
                    clock,
                    0x10AD ^ k as u64,
                    plane,
                ));
            }
        }
    }
    drop(results_tx);
    println!(
        "planet-load: {} clients across {n} sites, {} keys, {}s window, {} mix, {}",
        args.clients,
        args.keys,
        args.secs,
        args.workload.as_deref().unwrap_or("increment"),
        match &reactor {
            Some(r) => format!("reactor x{}", r.workers()),
            None => "thread-per-client".to_string(),
        }
    );

    let window = Duration::from_secs(args.secs);
    // check:allow(determinism) — measurement window of the live run
    let started = Instant::now();
    let mut latencies = Histogram::new();
    let mut committed = 0u64;
    let mut aborted = 0u64;
    while started.elapsed() < window {
        let remaining = window.saturating_sub(started.elapsed());
        if let Ok(record) = results_rx.recv_timeout(remaining.min(Duration::from_millis(100))) {
            latencies.record(record.latency_us());
            match record.outcome {
                Outcome::Committed => committed += 1,
                _ => aborted += 1,
            }
        }
    }
    let elapsed = started.elapsed().as_secs_f64();

    let mut batch = Histogram::new();
    let mut depth = Histogram::new();
    let mut harvested = Vec::new();
    for node in nodes {
        let (_, metrics) = node.stop_and_join();
        harvested.push(metrics);
    }
    for pool in pools {
        let (_, metrics) = pool.stop_and_join();
        harvested.push(metrics);
    }
    for metrics in harvested {
        for (name, hist) in metrics.histograms() {
            match name {
                "plane.batch" => batch.merge(hist),
                "plane.mailbox.depth" => depth.merge(hist),
                _ => {}
            }
        }
    }
    if let Some(reactor) = &reactor {
        println!("planet-load: {} task steals", reactor.steals());
        reactor.shutdown();
    }
    let (flushes, bytes) = transport.io_stats();
    transport.stop();
    if let Some(sink) = &trace_sink {
        if let Err(e) = sink.flush() {
            eprintln!("planet-load: trace flush failed: {e}");
        }
    }

    let total = committed + aborted;
    println!("planet-load: {total} txns in {elapsed:.2}s ({committed} committed, {aborted} other)");
    println!("planet-load: {:.1} ops/sec", total as f64 / elapsed);
    if let (Some(p50), Some(p99)) = (latencies.quantile(0.50), latencies.quantile(0.99)) {
        println!("planet-load: latency p50 {p50} us, p99 {p99} us");
    }
    if let (Some(mean), Some(max)) = (batch.mean(), batch.max()) {
        println!("planet-load: drain batch mean {mean:.2}, max {max}");
    }
    if let Some(hwm) = depth.max() {
        println!("planet-load: mailbox depth high-water {hwm}");
    }
    if flushes > 0 {
        println!(
            "planet-load: {flushes} socket flushes, {bytes} bytes ({:.1} bytes/flush)",
            bytes as f64 / flushes as f64
        );
    }
}
