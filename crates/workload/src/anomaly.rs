//! Anomaly-provoking workloads for the isolation auditor.
//!
//! MDCC's option-based commit sits below serializability, and each generator
//! here is a minimal recipe for one of the anomalies it admits:
//!
//! * **`counter-fanout`** — concurrent commutative `Add(+1)`s on a tiny set
//!   of counters, mixed with fan-out reads over all of them. Two adds that
//!   both read base version `v` both commit (demarcation validation is
//!   order-free), producing versions `v+1` and `v+2`: a `ww` edge one way
//!   and an `rw` anti-dependency back — a G2 cycle.
//! * **`snapshot-mix`** — multi-key writers pairing `a_i`/`b_i` updates,
//!   with local-read fan-out readers. A reader whose replica has applied
//!   `a_i`'s new version but not yet `b_i`'s observes a fractured
//!   (non-atomic) read of the writer.
//! * **`write-skew`** — the classic pair: one transaction reads `a` and
//!   writes `b`, its mirror reads `b` and writes `a`. Their options touch
//!   different keys, so both pass validation and commit; the two `rw`
//!   anti-dependencies form the textbook all-`rw` two-cycle.
//! * **`ycsb`** — the serializable control: single-key reads and
//!   version-conditioned single-key `Set`s. Every dependency between two
//!   transactions agrees with the key's committed version order, so the
//!   dependency graph is provably acyclic and the auditor must report a
//!   clean verdict.
//!
//! Generators produce raw [`TxnSpec`]s (not [`planet_core::PlanetTxn`]s) so
//! the same recipes drive the sim-level audit harness, the mck scenarios and
//! the live `planet-load --workload` driver.

use planet_mdcc::{ReadLevel, TxnSpec};
use planet_sim::DetRng;
use planet_storage::{Key, Value, WriteOp};

/// Workload names accepted by [`SpecGen::by_name`] (and therefore by
/// `planet-load --workload` / `planet-audit --run`).
pub const ANOMALY_WORKLOADS: &[&str] = &["counter-fanout", "snapshot-mix", "write-skew", "ycsb"];

#[derive(Debug, Clone)]
enum Kind {
    CounterFanout { counters: Vec<Key> },
    SnapshotMix { pairs: Vec<(Key, Key)> },
    WriteSkew,
    Ycsb { keys: Vec<Key> },
}

/// A deterministic [`TxnSpec`] generator for one of the anomaly recipes.
#[derive(Debug, Clone)]
pub struct SpecGen {
    kind: Kind,
    /// Monotonic counter: makes `Set` payloads distinct and alternates the
    /// write-skew orientation.
    seq: u64,
}

impl SpecGen {
    /// Commutative `Add(+1)`s and fan-out reads over `counters` counters.
    pub fn counter_fanout(counters: usize) -> Self {
        assert!(counters >= 1);
        SpecGen {
            kind: Kind::CounterFanout {
                counters: (0..counters)
                    .map(|i| Key::new(format!("ctr-{i}")))
                    .collect(),
            },
            seq: 0,
        }
    }

    /// Multi-key pair writers and local-read fan-out readers over `pairs`
    /// key pairs.
    pub fn snapshot_mix(pairs: usize) -> Self {
        assert!(pairs >= 1);
        SpecGen {
            kind: Kind::SnapshotMix {
                pairs: Self::key_pairs(pairs),
            },
            seq: 0,
        }
    }

    /// Mirrored read-`a`-write-`b` / read-`b`-write-`a` transactions.
    ///
    /// Each consecutive pair of transactions gets its *own* fresh key pair:
    /// the mirror twins are the only writers of those keys, so neither can
    /// fail write validation — both commit whenever they overlap, and the
    /// two `rw` anti-dependencies between them are guaranteed. (A shared key
    /// pool would instead make same-orientation transactions write-conflict
    /// and abort each other, suppressing the very anomaly we're provoking.)
    pub fn write_skew() -> Self {
        SpecGen {
            kind: Kind::WriteSkew,
            seq: 0,
        }
    }

    /// The serializable control: single-key reads/writes over `keys` keys.
    pub fn ycsb(keys: usize) -> Self {
        assert!(keys >= 1);
        SpecGen {
            kind: Kind::Ycsb {
                keys: (0..keys).map(|i| Key::new(format!("y-{i}"))).collect(),
            },
            seq: 0,
        }
    }

    /// Look a generator up by its registered name (see
    /// [`ANOMALY_WORKLOADS`]), with each recipe's default keyspace size —
    /// small enough that a few dozen overlapping transactions collide.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "counter-fanout" => Some(Self::counter_fanout(2)),
            "snapshot-mix" => Some(Self::snapshot_mix(8)),
            "write-skew" => Some(Self::write_skew()),
            "ycsb" => Some(Self::ycsb(8)),
            _ => None,
        }
    }

    /// The anomaly this workload is built to provoke, as the auditor names
    /// it (`None` for the serializable control). What `--expect-anomaly`
    /// should be given in CI.
    pub fn expected_anomaly(&self) -> Option<&'static str> {
        match &self.kind {
            Kind::CounterFanout { .. } => Some("g2"),
            Kind::SnapshotMix { .. } => Some("fractured-read"),
            Kind::WriteSkew => Some("write-skew"),
            Kind::Ycsb { .. } => None,
        }
    }

    /// The registered name of this generator.
    pub fn name(&self) -> &'static str {
        match &self.kind {
            Kind::CounterFanout { .. } => "counter-fanout",
            Kind::SnapshotMix { .. } => "snapshot-mix",
            Kind::WriteSkew => "write-skew",
            Kind::Ycsb { .. } => "ycsb",
        }
    }

    fn key_pairs(pairs: usize) -> Vec<(Key, Key)> {
        (0..pairs)
            .map(|i| (Key::new(format!("pa-{i}")), Key::new(format!("pb-{i}"))))
            .collect()
    }

    /// The next transaction. Deterministic given the caller's RNG state.
    pub fn next_spec(&mut self, rng: &mut DetRng) -> TxnSpec {
        self.seq += 1;
        let seq = self.seq;
        match &self.kind {
            Kind::CounterFanout { counters } => {
                if rng.bernoulli(0.5) {
                    let key = counters[rng.index(counters.len())].clone();
                    TxnSpec::write_one(key, WriteOp::add(1))
                } else {
                    TxnSpec::read_only(counters.iter().cloned())
                }
            }
            Kind::SnapshotMix { pairs } => {
                if rng.bernoulli(0.5) {
                    // Writers round-robin over the pool, so consecutive
                    // writers touch different pairs and same-pair writers are
                    // spaced far enough apart in time to commit (a random
                    // pair choice makes concurrent writers ww-conflict and
                    // abort, suppressing the anomaly).
                    let (a, b) = pairs[seq as usize % pairs.len()].clone();
                    TxnSpec {
                        reads: Vec::new(),
                        writes: vec![
                            (a, WriteOp::Set(Value::Int(seq as i64))),
                            (b, WriteOp::Set(Value::Int(seq as i64))),
                        ],
                        read_level: ReadLevel::Local,
                    }
                } else {
                    // Readers snapshot the *whole* pool with local reads: any
                    // pair whose two Applies have not both landed at this
                    // replica yet is caught fractured.
                    TxnSpec {
                        reads: pairs
                            .iter()
                            .flat_map(|(a, b)| [a.clone(), b.clone()])
                            .collect(),
                        writes: Vec::new(),
                        read_level: ReadLevel::Local,
                    }
                }
            }
            Kind::WriteSkew => {
                // Transactions 2p-1 and 2p are the mirror twins over the
                // private pair `sk{p}a`/`sk{p}b`.
                let pair = (seq - 1) / 2;
                let a = Key::new(format!("sk{pair}a"));
                let b = Key::new(format!("sk{pair}b"));
                let (read, write) = if seq % 2 == 1 { (a, b) } else { (b, a) };
                TxnSpec {
                    reads: vec![read],
                    writes: vec![(write, WriteOp::Set(Value::Int(seq as i64)))],
                    read_level: ReadLevel::Local,
                }
            }
            Kind::Ycsb { keys } => {
                let key = keys[rng.index(keys.len())].clone();
                if rng.bernoulli(0.5) {
                    TxnSpec::read_only([key])
                } else {
                    TxnSpec::write_one(key, WriteOp::Set(Value::Int(seq as i64)))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_name_covers_the_registry() {
        for name in ANOMALY_WORKLOADS {
            let g = SpecGen::by_name(name).expect("registered name must resolve");
            assert_eq!(g.name(), *name);
        }
        assert!(SpecGen::by_name("nope").is_none());
    }

    #[test]
    fn write_skew_alternates_orientation() {
        let mut g = SpecGen::write_skew();
        let mut rng = DetRng::new(7);
        let s1 = g.next_spec(&mut rng);
        let s2 = g.next_spec(&mut rng);
        assert_eq!(s1.reads.len(), 1);
        assert_eq!(s1.writes.len(), 1);
        // Mirrored pair: each reads what the other writes.
        assert_eq!(s1.reads[0], s2.writes[0].0);
        assert_eq!(s2.reads[0], s1.writes[0].0);
    }

    #[test]
    fn counter_fanout_issues_adds_and_fanout_reads() {
        let mut g = SpecGen::counter_fanout(2);
        let mut rng = DetRng::new(1);
        let (mut adds, mut fanouts) = (0, 0);
        for _ in 0..64 {
            let s = g.next_spec(&mut rng);
            if s.is_read_only() {
                assert_eq!(s.reads.len(), 2, "fan-out reads every counter");
                fanouts += 1;
            } else {
                assert!(matches!(s.writes[0].1, WriteOp::Add { delta: 1, .. }));
                adds += 1;
            }
        }
        assert!(adds > 10 && fanouts > 10, "mix should be balanced-ish");
    }

    #[test]
    fn snapshot_mix_writers_pair_keys() {
        let mut g = SpecGen::snapshot_mix(1);
        let mut rng = DetRng::new(2);
        let writer = loop {
            let s = g.next_spec(&mut rng);
            if !s.is_read_only() {
                break s;
            }
        };
        assert_eq!(writer.writes.len(), 2, "writers touch both pair keys");
    }

    #[test]
    fn ycsb_control_is_single_key() {
        let mut g = SpecGen::ycsb(4);
        let mut rng = DetRng::new(3);
        for _ in 0..32 {
            let s = g.next_spec(&mut rng);
            assert_eq!(s.touched_keys().len(), 1);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let run = |seed| {
            let mut g = SpecGen::by_name("counter-fanout").unwrap();
            let mut rng = DetRng::new(seed);
            (0..16)
                .map(|_| format!("{:?}", g.next_spec(&mut rng)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
