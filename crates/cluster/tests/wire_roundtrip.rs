//! Exhaustive wire-codec round-trip: every `Msg` variant crosses
//! encode/decode and the framed reader/writer unchanged.
//!
//! Two enforcement layers, so codec drift fails CI with the variant named:
//!
//! 1. `variant_name` is an exhaustive `match` with no wildcard — adding a
//!    `Msg` variant breaks this test's build until it is listed here.
//! 2. The coverage test parses `crates/mdcc/src/messages.rs` at run time and
//!    asserts a round-tripped sample exists for every declared variant — so
//!    listing a variant without actually round-tripping it also fails, by
//!    name.

use planet_cluster::transport::Envelope;
use planet_cluster::wire::{decode, encode, read_frame, write_frame};
use planet_mdcc::{KeyRead, Msg, Outcome, ProgressStage, ReadLevel, TxnSpec, TxnStats};
use planet_plan::{KeyRef, KeyTemplate, OpTemplate, PlanParam, TxnProgram};
use planet_sim::{ActorId, SimTime, SiteId};
use planet_storage::{Key, RecordOption, RejectReason, TxnId, Value, WriteOp};

fn variant_name(msg: &Msg) -> &'static str {
    match msg {
        Msg::Submit { .. } => "Submit",
        Msg::ReadReq { .. } => "ReadReq",
        Msg::FastPropose { .. } => "FastPropose",
        Msg::Propose { .. } => "Propose",
        Msg::Replicate { .. } => "Replicate",
        Msg::Decide { .. } => "Decide",
        Msg::ReadResp { .. } => "ReadResp",
        Msg::Vote { .. } => "Vote",
        Msg::ReplicateAck { .. } => "ReplicateAck",
        Msg::Apply { .. } => "Apply",
        Msg::DropPending { .. } => "DropPending",
        Msg::Progress { .. } => "Progress",
        Msg::TxnDone { .. } => "TxnDone",
        Msg::Crash => "Crash",
        Msg::Recover => "Recover",
        Msg::ReplicaServiceDone => "ReplicaServiceDone",
        Msg::TxnTimeout { .. } => "TxnTimeout",
        Msg::ClientTimer { .. } => "ClientTimer",
        Msg::RegisterPlan { .. } => "RegisterPlan",
        Msg::SubmitPlan { .. } => "SubmitPlan",
        Msg::PlanReady { .. } => "PlanReady",
    }
}

fn option() -> RecordOption {
    RecordOption::new(
        TxnId::new(3, 41),
        9,
        WriteOp::Add {
            delta: -2,
            lower: Some(0),
            upper: Some(500),
        },
    )
}

fn reads() -> Vec<KeyRead> {
    vec![
        KeyRead {
            key: Key::new("alpha"),
            version: 12,
            value: Value::Int(-7),
            pending: 2,
        },
        KeyRead {
            key: Key::new("beta"),
            version: 0,
            value: Value::None,
            pending: 0,
        },
        KeyRead {
            key: Key::new("gamma"),
            version: 3,
            value: Value::bytes(&b"payload"[..]),
            pending: 1,
        },
    ]
}

/// One representative (payload-rich) sample per `Msg` variant, plus extra
/// payload shapes for variants with interesting branches.
fn samples() -> Vec<Msg> {
    let txn = TxnId::new(1, 99);
    vec![
        Msg::Submit {
            spec: TxnSpec {
                reads: vec![Key::new("r")],
                writes: vec![
                    (Key::new("w1"), WriteOp::Set(Value::Int(5))),
                    (Key::new("w2"), WriteOp::Delete),
                    (Key::new("w3"), WriteOp::add(7)),
                ],
                read_level: ReadLevel::Quorum,
            },
            reply_to: ActorId(17),
            tag: 0xDEAD_BEEF,
        },
        Msg::ReadReq {
            txn,
            keys: vec![Key::new("a"), Key::new("b")],
        },
        Msg::FastPropose {
            txn,
            key: Key::new("k"),
            option: option(),
            round: 2,
        },
        Msg::Propose {
            txn,
            key: Key::new("k"),
            option: option(),
            coordinator: ActorId(4),
            round: 1,
        },
        Msg::Replicate {
            txn,
            key: Key::new("k"),
            option: option(),
            coordinator: ActorId(4),
            master: ActorId(8),
            round: 0,
        },
        Msg::Decide {
            txn,
            key: Key::new("k"),
            option: option(),
            commit: true,
        },
        Msg::ReadResp {
            txn,
            results: reads(),
        },
        Msg::Vote {
            txn,
            key: Key::new("k"),
            site: SiteId(3),
            accept: false,
            reason: Some(RejectReason::StaleVersion {
                expected: 4,
                actual: 6,
            }),
            round: 1,
        },
        Msg::Vote {
            txn,
            key: Key::new("k"),
            site: SiteId(0),
            accept: true,
            reason: None,
            round: 0,
        },
        Msg::Vote {
            txn,
            key: Key::new("k"),
            site: SiteId(1),
            accept: false,
            reason: Some(RejectReason::PendingConflict {
                holder: TxnId::new(7, 7),
            }),
            round: 3,
        },
        Msg::ReplicateAck {
            txn,
            key: Key::new("k"),
            site: SiteId(2),
        },
        Msg::Apply {
            key: Key::new("k"),
            version: 44,
            value: Value::bytes(&b"v"[..]),
            txn,
        },
        Msg::DropPending {
            key: Key::new("k"),
            txn,
        },
        Msg::Progress {
            tag: 5,
            txn,
            stage: ProgressStage::Started,
        },
        Msg::Progress {
            tag: 5,
            txn,
            stage: ProgressStage::ReadsDone { reads: reads() },
        },
        Msg::Progress {
            tag: 5,
            txn,
            stage: ProgressStage::Vote {
                key: Key::new("k"),
                site: SiteId(4),
                accept: false,
                reason: Some(RejectReason::BoundViolation),
                elapsed_us: 12_345,
            },
        },
        Msg::Progress {
            tag: 5,
            txn,
            stage: ProgressStage::KeyFallback { key: Key::new("k") },
        },
        Msg::Progress {
            tag: 5,
            txn,
            stage: ProgressStage::KeyResolved {
                key: Key::new("k"),
                accepted: true,
            },
        },
        Msg::TxnDone {
            tag: 5,
            txn,
            outcome: Outcome::TimedOut,
            stats: TxnStats {
                submitted_at: SimTime::from_micros(1_000),
                decided_at: SimTime::from_micros(9_999),
                proposals_sent_at: SimTime::from_micros(4_000),
                write_keys: 3,
                votes_received: 8,
                rejections: 1,
            },
        },
        Msg::RegisterPlan {
            plan: 7,
            program: {
                let mut p = TxnProgram::new("wire-sample");
                let stock = p.intern(Key::new("stock:1"));
                p = p
                    .read(KeyRef::Fixed(stock))
                    .write(
                        KeyRef::Param(0),
                        OpTemplate::Add {
                            delta: planet_plan::DeltaRef::Const(-1),
                            lower: Some(0),
                            upper: None,
                        },
                    )
                    .write(
                        KeyRef::Derived(KeyTemplate::new().lit("order:").param(1)),
                        OpTemplate::SetParam(1),
                    )
                    .quorum_reads();
                p
            },
            reply_to: ActorId(17),
        },
        Msg::SubmitPlan {
            plan: 7,
            params: vec![PlanParam::Key(0), PlanParam::Int(-42)],
            reply_to: ActorId(17),
            tag: 0xCAFE,
        },
        Msg::PlanReady { plan: 7 },
        Msg::Crash,
        Msg::Recover,
        Msg::ReplicaServiceDone,
        Msg::TxnTimeout { txn },
        Msg::ClientTimer {
            kind: 2,
            tag: 0xFFFF_FFFF_FFFF_FFFF,
        },
    ]
}

fn envelope(msg: Msg) -> Envelope {
    Envelope {
        from: ActorId(11),
        to: ActorId(23),
        msg,
    }
}

/// Variant names declared by `pub enum Msg` in the protocol source, parsed
/// from the file itself so the test cannot drift from the real enum.
fn declared_variants() -> Vec<String> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../mdcc/src/messages.rs");
    let src = std::fs::read_to_string(path).expect("read messages.rs");
    let start = src.find("pub enum Msg").expect("Msg enum present");
    let body_start = src[start..].find('{').expect("enum body") + start + 1;
    let mut depth = 1usize;
    let mut variants = Vec::new();
    for line in src[body_start..].lines() {
        let trimmed = line.trim();
        if depth == 1
            && trimmed
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_uppercase())
        {
            let name: String = trimmed
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric())
                .collect();
            variants.push(name);
        }
        for c in trimmed.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return variants;
                    }
                }
                _ => {}
            }
        }
    }
    variants
}

#[test]
fn every_msg_variant_round_trips() {
    for msg in samples() {
        let name = variant_name(&msg);
        let env = envelope(msg);
        let encoded = encode(&env);
        let decoded =
            decode(&encoded).unwrap_or_else(|e| panic!("decode failed for Msg::{name}: {e:?}"));
        assert_eq!(
            format!("{env:?}"),
            format!("{decoded:?}"),
            "round-trip mismatch for Msg::{name}"
        );
    }
}

#[test]
fn every_msg_variant_round_trips_framed() {
    // All samples through one stream: framing must preserve boundaries.
    let envs: Vec<Envelope> = samples().into_iter().map(envelope).collect();
    let mut stream = Vec::new();
    for env in &envs {
        write_frame(&mut stream, env).expect("write frame");
    }
    let mut cursor = std::io::Cursor::new(stream);
    for env in &envs {
        let name = variant_name(&env.msg);
        let got = read_frame(&mut cursor)
            .unwrap_or_else(|e| panic!("read frame failed for Msg::{name}: {e}"))
            .unwrap_or_else(|| panic!("premature EOF before Msg::{name}"));
        assert_eq!(format!("{env:?}"), format!("{got:?}"), "Msg::{name}");
    }
    assert!(read_frame(&mut cursor).expect("trailing read").is_none());
}

#[test]
fn samples_cover_every_declared_variant() {
    let declared = declared_variants();
    assert!(
        declared.len() >= 18,
        "suspiciously few Msg variants parsed: {declared:?}"
    );
    let covered: std::collections::BTreeSet<&str> = samples().iter().map(variant_name).collect();
    for variant in &declared {
        assert!(
            covered.contains(variant.as_str()),
            "Msg::{variant} is declared in messages.rs but has no round-trip \
             sample in wire_roundtrip.rs — add one (and codec arms if missing)"
        );
    }
}
