//! Concurrency stress for [`ChannelTransport`]: many sender threads hammer
//! the same transport while receivers drain their mailboxes. Asserts that
//! nothing is lost and that per-(sender, receiver) FIFO order survives —
//! both for the direct (no fabric) transport and through the fabric thread.
//!
//! This test is the workload for the ThreadSanitizer CI job: the interesting
//! property is not just the counts but that tsan observes the route-table
//! mutex, the fabric handoff and the atomic drop counter under real
//! contention.

use std::sync::mpsc::{channel, Receiver};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use planet_cluster::node::{Clock, Packet};
use planet_cluster::transport::{Envelope, Transport};
use planet_cluster::ChannelTransport;
use planet_mdcc::Msg;
use planet_sim::{ActorId, NetworkModel, SiteId};

const SENDERS: u32 = 8;
const RECEIVERS: u32 = 4;
const PER_SENDER: u64 = 500;

/// Sender `s` targets receiver `s % RECEIVERS`; each message carries the
/// sender in `kind` and a strictly increasing sequence in `tag`.
fn run_senders(transport: &Arc<ChannelTransport>) {
    let mut handles = Vec::new();
    for s in 0..SENDERS {
        let t = Arc::clone(transport);
        handles.push(thread::spawn(move || {
            for seq in 0..PER_SENDER {
                t.send(Envelope {
                    from: ActorId(100 + s),
                    to: ActorId(s % RECEIVERS),
                    msg: Msg::ClientTimer { kind: s, tag: seq },
                });
            }
        }));
    }
    for h in handles {
        h.join().expect("sender thread");
    }
}

/// Drain `rx` until every sender targeting this receiver has delivered its
/// full quota, asserting per-sender FIFO along the way.
fn drain(rx: Receiver<Packet>, receiver: u32) -> u64 {
    let expected: u64 =
        (0..SENDERS).filter(|s| s % RECEIVERS == receiver).count() as u64 * PER_SENDER;
    let mut next_seq = vec![0u64; SENDERS as usize];
    let mut got = 0u64;
    while got < expected {
        let packet = rx
            .recv_timeout(Duration::from_secs(30))
            .unwrap_or_else(|e| panic!("receiver {receiver} stalled at {got}/{expected}: {e}"));
        let Packet::Env(env) = packet else {
            continue;
        };
        let Msg::ClientTimer { kind, tag } = env.msg else {
            panic!("unexpected message {:?}", env.msg);
        };
        assert_eq!(
            tag, next_seq[kind as usize],
            "FIFO violated: receiver {receiver} saw sender {kind} out of order"
        );
        next_seq[kind as usize] += 1;
        got += 1;
    }
    got
}

fn register_all(transport: &Arc<ChannelTransport>) -> Vec<Receiver<Packet>> {
    let mut rxs = Vec::new();
    for r in 0..RECEIVERS {
        let (tx, rx) = channel();
        transport.register(r, SiteId(0), tx);
        rxs.push(rx);
    }
    // Senders need routes too: the fabric resolves the source site before
    // sampling a delay.
    for s in 0..SENDERS {
        let (tx, _rx_unused) = channel();
        transport.register(100 + s, SiteId(0), tx);
        // Keep the receiving half alive inside the route table only; sends
        // to senders are not part of this test.
        drop(_rx_unused);
    }
    rxs
}

fn run_stress(transport: Arc<ChannelTransport>) {
    let rxs = register_all(&transport);
    let drains: Vec<_> = rxs
        .into_iter()
        .enumerate()
        .map(|(r, rx)| thread::spawn(move || drain(rx, r as u32)))
        .collect();
    run_senders(&transport);
    let mut total = 0;
    for d in drains {
        total += d.join().expect("receiver thread");
    }
    assert_eq!(total, u64::from(SENDERS) * PER_SENDER);
}

#[test]
fn direct_transport_concurrent_senders() {
    let transport = ChannelTransport::direct(Clock::new());
    run_stress(Arc::clone(&transport));
    assert_eq!(transport.dropped(), 0);
}

#[test]
fn fabric_transport_concurrent_senders() {
    // A one-site, zero-RTT, zero-loss model: the fabric thread still paces
    // and re-orders internally, but must deliver everything in pair order.
    let net = NetworkModel::from_rtt_ms(&[vec![0.0]]);
    let transport = ChannelTransport::with_network(Clock::new(), net, 42);
    run_stress(Arc::clone(&transport));
    assert_eq!(transport.dropped(), 0);
    transport.stop();
}
