//! Concurrency stress for [`ChannelTransport`]: many sender threads hammer
//! the same transport while receivers drain their mailboxes. Asserts that
//! nothing is lost and that per-(sender, receiver) FIFO order survives —
//! both for the direct (no fabric) transport and through the sharded
//! fabric, for single sends and for coalesced [`Transport::send_many`]
//! batches, and across a scheduled partition window (where losses are
//! allowed but reordering never is).
//!
//! This test is the workload for the ThreadSanitizer CI job: the interesting
//! property is not just the counts but that tsan observes the sharded route
//! tables, the per-shard fabric handoff, the bounded-mailbox gate and the
//! atomic drop counters under real contention.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use planet_cluster::node::{Clock, Packet};
use planet_cluster::plane::{mailbox, MailboxReceiver};
use planet_cluster::transport::{Envelope, Transport};
use planet_cluster::ChannelTransport;
use planet_mdcc::Msg;
use planet_sim::{ActorId, NetworkModel, Partition, SimTime, SiteId};

const SENDERS: u32 = 8;
const RECEIVERS: u32 = 4;
const PER_SENDER: u64 = 500;
const MAILBOX_CAP: usize = 4096;

fn envelope(s: u32, seq: u64) -> Envelope {
    Envelope {
        from: ActorId(100 + s),
        to: ActorId(s % RECEIVERS),
        msg: Msg::ClientTimer { kind: s, tag: seq },
    }
}

/// Sender `s` targets receiver `s % RECEIVERS`; each message carries the
/// sender in `kind` and a strictly increasing sequence in `tag`. With
/// `batch > 1`, envelopes go out through coalesced `send_many` calls.
fn run_senders(transport: &Arc<ChannelTransport>, batch: usize) {
    let mut handles = Vec::new();
    for s in 0..SENDERS {
        let t = Arc::clone(transport);
        handles.push(thread::spawn(move || {
            let mut outbox = Vec::with_capacity(batch);
            for seq in 0..PER_SENDER {
                if batch <= 1 {
                    t.send(envelope(s, seq));
                } else {
                    outbox.push(envelope(s, seq));
                    if outbox.len() == batch {
                        t.send_many(&mut outbox);
                    }
                }
            }
            if !outbox.is_empty() {
                t.send_many(&mut outbox);
            }
        }));
    }
    for h in handles {
        h.join().expect("sender thread");
    }
}

/// Drain `rx` until every sender targeting this receiver has delivered its
/// full quota, asserting per-sender FIFO along the way.
fn drain(rx: MailboxReceiver, receiver: u32) -> u64 {
    let expected: u64 =
        (0..SENDERS).filter(|s| s % RECEIVERS == receiver).count() as u64 * PER_SENDER;
    let mut next_seq = vec![0u64; SENDERS as usize];
    let mut got = 0u64;
    while got < expected {
        let packet = rx
            .recv_timeout(Duration::from_secs(30))
            .unwrap_or_else(|e| panic!("receiver {receiver} stalled at {got}/{expected}: {e}"));
        let Packet::Env(env) = packet else {
            continue;
        };
        let Msg::ClientTimer { kind, tag } = env.msg else {
            panic!("unexpected message {:?}", env.msg);
        };
        assert_eq!(
            tag, next_seq[kind as usize],
            "FIFO violated: receiver {receiver} saw sender {kind} out of order"
        );
        next_seq[kind as usize] += 1;
        got += 1;
    }
    got
}

fn register_all(transport: &Arc<ChannelTransport>, sender_site: SiteId) -> Vec<MailboxReceiver> {
    let mut rxs = Vec::new();
    for r in 0..RECEIVERS {
        let (tx, rx) = mailbox(MAILBOX_CAP);
        transport.register(r, SiteId(0), tx);
        rxs.push(rx);
    }
    // Senders need routes too: the fabric resolves the source site before
    // sampling a delay. Their receiving halves are parked in a leaked Vec
    // so the mailboxes stay open (sends to senders are not part of this
    // test, but a dropped receiver would mark the mailbox closed).
    for s in 0..SENDERS {
        let (tx, rx_unused) = mailbox(MAILBOX_CAP);
        transport.register(100 + s, sender_site, tx);
        std::mem::forget(rx_unused);
    }
    rxs
}

fn run_stress(transport: Arc<ChannelTransport>, batch: usize) {
    let rxs = register_all(&transport, SiteId(0));
    let drains: Vec<_> = rxs
        .into_iter()
        .enumerate()
        .map(|(r, rx)| thread::spawn(move || drain(rx, r as u32)))
        .collect();
    run_senders(&transport, batch);
    let mut total = 0;
    for d in drains {
        total += d.join().expect("receiver thread");
    }
    assert_eq!(total, u64::from(SENDERS) * PER_SENDER);
}

#[test]
fn direct_transport_concurrent_senders() {
    let transport = ChannelTransport::direct(Clock::new());
    run_stress(Arc::clone(&transport), 1);
    assert_eq!(transport.dropped(), 0);
}

#[test]
fn fabric_transport_concurrent_senders() {
    // A one-site, zero-RTT, zero-loss model: the sharded fabric still paces
    // and re-orders internally, but must deliver everything in pair order.
    let net = NetworkModel::from_rtt_ms(&[vec![0.0]]);
    let transport = ChannelTransport::with_network(Clock::new(), net, 42, 4, 200);
    run_stress(Arc::clone(&transport), 1);
    assert_eq!(transport.dropped(), 0);
    transport.stop();
}

#[test]
fn direct_transport_batched_senders() {
    let transport = ChannelTransport::direct(Clock::new());
    run_stress(Arc::clone(&transport), 32);
    assert_eq!(transport.dropped(), 0);
}

#[test]
fn fabric_transport_batched_senders() {
    let net = NetworkModel::from_rtt_ms(&[vec![0.0]]);
    let transport = ChannelTransport::with_network(Clock::new(), net, 43, 4, 200);
    run_stress(Arc::clone(&transport), 32);
    assert_eq!(transport.dropped(), 0);
    transport.stop();
}

/// Coalesced batches across a partition window: messages sent while the
/// cut is up are lost (never delivered late), and per-pair FIFO holds
/// across the gap — tags arrive strictly increasing, with a hole where the
/// partition was, and traffic resumes after the heal.
#[test]
fn batched_fifo_survives_a_partition_window() {
    // Two sites, 2ms RTT. Site 0 (senders) is cut off from site 1
    // (receivers) for wall-clock [150ms, 450ms).
    let rtt = vec![vec![0.05, 2.0], vec![2.0, 0.05]];
    let mut net = NetworkModel::from_rtt_ms(&rtt);
    net.add_partition(Partition {
        from: SimTime::from_millis(150),
        to: SimTime::from_millis(450),
        a: SiteId(0),
        b: SiteId(1),
    });
    let transport = ChannelTransport::with_network(Clock::new(), net, 44, 2, 200);

    // Receivers at site 0, senders at site 1 — the cut hits exactly the
    // sender→receiver direction.
    let rxs = register_all(&transport, SiteId(1));

    const ROUNDS: u64 = 60;
    const PER_ROUND: u64 = 8;
    let last_tag = ROUNDS * PER_ROUND - 1;

    // Paced senders: one coalesced batch every 10ms, spanning the window.
    let mut handles = Vec::new();
    for s in 0..SENDERS {
        let t = Arc::clone(&transport);
        handles.push(thread::spawn(move || {
            let mut outbox = Vec::with_capacity(PER_ROUND as usize);
            for round in 0..ROUNDS {
                for k in 0..PER_ROUND {
                    outbox.push(envelope(s, round * PER_ROUND + k));
                }
                t.send_many(&mut outbox);
                thread::sleep(Duration::from_millis(10));
            }
        }));
    }

    // Drain until every sender's final tag has arrived, asserting
    // strictly-increasing tags per sender (gaps allowed: the partition
    // loses messages, it must never reorder them).
    let drains: Vec<_> = rxs
        .into_iter()
        .enumerate()
        .map(|(r, rx)| {
            thread::spawn(move || {
                let receiver = r as u32;
                let mine: Vec<u32> = (0..SENDERS).filter(|s| s % RECEIVERS == receiver).collect();
                let mut last = vec![None::<u64>; SENDERS as usize];
                while mine.iter().any(|&s| last[s as usize] != Some(last_tag)) {
                    let packet = rx
                        .recv_timeout(Duration::from_secs(30))
                        .unwrap_or_else(|e| {
                            panic!("receiver {receiver} stalled ({e}); progress: {last:?}")
                        });
                    let Packet::Env(env) = packet else { continue };
                    let Msg::ClientTimer { kind, tag } = env.msg else {
                        panic!("unexpected message {:?}", env.msg);
                    };
                    if let Some(prev) = last[kind as usize] {
                        assert!(
                            tag > prev,
                            "receiver {receiver} saw sender {kind} go {prev} -> {tag}"
                        );
                    }
                    last[kind as usize] = Some(tag);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("sender thread");
    }
    for d in drains {
        d.join().expect("receiver thread");
    }
    assert!(
        transport.dropped() > 0,
        "the partition window should have cost some messages"
    );
    transport.stop();
}
