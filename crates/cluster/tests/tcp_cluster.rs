//! End-to-end commit over the TCP transport.
//!
//! Three "processes" (three `TcpTransport`s with their own listeners, as
//! three `planetd` instances would be) each host one replica and one
//! coordinator. A bare TCP client — no transport at all, just the wire
//! format, exactly what `planet-load` speaks — connects to site 0, submits
//! a transaction and reads its progress and outcome off the same
//! connection, exercising the learned-reply-route path.

use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use planet_cluster::wire;
use planet_cluster::{mailbox, spawn_node, Clock, Envelope, PlaneConfig, TcpTransport, Transport};
use planet_mdcc::{ClusterConfig, CoordinatorActor, Msg, Outcome, Protocol, ReplicaActor, TxnSpec};
use planet_sim::{Actor, ActorId, SiteId};
use planet_storage::{Key, WriteOp};

#[test]
fn commit_round_trips_over_tcp() {
    let n = 3usize;
    let config = ClusterConfig::new(n, Protocol::Fast);
    let clock = Clock::new();
    let replica_ids: Vec<ActorId> = (0..n).map(|i| ActorId(i as u32)).collect();

    // One transport + listener per site.
    let transports: Vec<Arc<TcpTransport>> = (0..n).map(|_| TcpTransport::new()).collect();
    let addrs: Vec<_> = transports
        .iter()
        .map(|t| t.listen("127.0.0.1:0".parse().unwrap()).expect("bind"))
        .collect();
    for t in &transports {
        for (site, addr) in addrs.iter().enumerate() {
            t.add_route(site as u32, *addr);
            t.add_route((n + site) as u32, *addr);
        }
    }

    // Site i hosts replica i and coordinator n+i.
    let plane = PlaneConfig::default();
    let mut nodes = Vec::new();
    for (site, transport) in transports.iter().enumerate() {
        let replica: Box<dyn Actor<Msg>> =
            Box::new(ReplicaActor::new(config.clone(), replica_ids.clone(), 0));
        let coordinator: Box<dyn Actor<Msg>> = Box::new(CoordinatorActor::new(
            config.clone(),
            replica_ids.clone(),
            SiteId(site as u8),
        ));
        for (id, actor) in [(site as u32, replica), ((n + site) as u32, coordinator)] {
            let (tx, rx) = mailbox(plane.mailbox_capacity);
            transport.host(id, tx.clone());
            nodes.push(spawn_node(
                ActorId(id),
                SiteId(site as u8),
                actor,
                tx,
                rx,
                transport.clone() as Arc<dyn Transport>,
                clock,
                7,
                plane,
            ));
        }
    }

    // The bare wire-format client.
    let client_id = ActorId(100);
    let coordinator0 = ActorId(n as u32); // coordinator of site 0
    let mut conn = TcpStream::connect(addrs[0]).expect("connect to site 0");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let spec = TxnSpec::write_one(Key::new("tcp-key"), WriteOp::add(5));
    wire::write_frame(
        &mut conn,
        &Envelope {
            from: client_id,
            to: coordinator0,
            msg: Msg::Submit {
                spec,
                reply_to: client_id,
                tag: 42,
            },
        },
    )
    .expect("submit over tcp");

    let mut outcome = None;
    let mut progress_events = 0;
    while outcome.is_none() {
        let env = wire::read_frame(&mut conn)
            .expect("read reply frame")
            .expect("connection stays open until the outcome");
        assert_eq!(env.to, client_id, "replies are addressed to the client");
        match env.msg {
            Msg::Progress { tag, .. } => {
                assert_eq!(tag, 42);
                progress_events += 1;
            }
            Msg::TxnDone {
                tag, outcome: o, ..
            } => {
                assert_eq!(tag, 42);
                outcome = Some(o);
            }
            other => panic!("unexpected message for client: {other:?}"),
        }
    }
    assert_eq!(outcome, Some(Outcome::Committed), "the write must commit");
    assert!(progress_events > 0, "progress flows before the outcome");

    // The committed value must have propagated to every replica.
    std::thread::sleep(Duration::from_millis(200));
    for node in nodes {
        let (actor, _metrics) = node.stop_and_join();
        let any: &dyn std::any::Any = actor.as_ref();
        if let Some(replica) = any.downcast_ref::<ReplicaActor>() {
            let value = replica.storage().read(&Key::new("tcp-key")).value;
            assert_eq!(
                value.as_int(),
                Some(5),
                "replica converged to the committed value"
            );
        }
    }
    for t in &transports {
        t.stop();
    }
}
