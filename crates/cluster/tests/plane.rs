//! Message-plane behavior through a live node: exact timer wakeups,
//! transport-level backpressure, and submit shedding.

use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use planet_cluster::node::{Clock, Packet};
use planet_cluster::plane::{mailbox, PlaneConfig};
use planet_cluster::transport::{Envelope, Transport};
use planet_cluster::{spawn_node, ChannelTransport};
use planet_mdcc::{Msg, Outcome, TxnSpec};
use planet_sim::{Actor, ActorId, Context, SimDuration, SiteId};
use planet_storage::{Key, WriteOp};

/// Records the wall-clock instant each message reaches it; schedules one
/// long timer at start so the node loop has a distant deadline to sleep
/// toward.
struct Probe {
    started: Instant,
    timer_delay: SimDuration,
    events: Sender<(Duration, u32)>,
}

impl Actor<Msg> for Probe {
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        ctx.schedule(self.timer_delay, Msg::ClientTimer { kind: 0, tag: 0 });
    }

    fn on_message(&mut self, _from: ActorId, msg: Msg, _ctx: &mut Context<'_, Msg>) {
        if let Msg::ClientTimer { kind, .. } = msg {
            let _ = self.events.send((self.started.elapsed(), kind));
        }
    }
}

/// A message arriving while the node sleeps toward a distant timer deadline
/// must be handled immediately — not after the timer, and not on the next
/// tick of some polling interval. Guards the removal of the old 5 ms
/// `recv_timeout` cap (the fix here is that the sleep is *exact*, bounded
/// only by the next deadline, because a mailbox arrival interrupts it).
#[test]
fn message_mid_timer_wait_is_handled_before_the_timer() {
    let clock = Clock::new();
    let transport = ChannelTransport::direct(clock);
    let (events_tx, events_rx) = channel();
    let probe: Box<dyn Actor<Msg>> = Box::new(Probe {
        started: Instant::now(),
        timer_delay: SimDuration::from_millis(400),
        events: events_tx,
    });
    let plane = PlaneConfig::default();
    let (tx, rx) = mailbox(plane.mailbox_capacity);
    transport.register(1, SiteId(0), tx.clone());
    let node = spawn_node(
        ActorId(1),
        SiteId(0),
        probe,
        tx,
        rx,
        Arc::clone(&transport) as Arc<dyn Transport>,
        clock,
        1,
        plane,
    );

    // Let the node settle into its 400 ms sleep, then poke it.
    thread::sleep(Duration::from_millis(100));
    transport.send(Envelope {
        from: ActorId(2),
        to: ActorId(1),
        msg: Msg::ClientTimer { kind: 7, tag: 0 },
    });

    let (env_at, kind) = events_rx
        .recv_timeout(Duration::from_secs(5))
        .expect("the mid-wait message arrives");
    assert_eq!(kind, 7, "the injected message is handled first");
    assert!(
        env_at < Duration::from_millis(300),
        "handled at {env_at:?}, i.e. only after the timer deadline — the node was not woken"
    );

    let (timer_at, kind) = events_rx
        .recv_timeout(Duration::from_secs(5))
        .expect("the timer still fires");
    assert_eq!(kind, 0, "the scheduled timer fires second");
    assert!(
        timer_at >= Duration::from_millis(390),
        "timer fired early at {timer_at:?}"
    );
    node.stop_and_join();
}

/// Protocol (non-`Submit`) traffic into a full mailbox blocks the sender —
/// backpressure, not loss.
#[test]
fn full_mailbox_applies_backpressure_to_protocol_traffic() {
    let transport = ChannelTransport::direct(Clock::new());
    let (tx, rx) = mailbox(1);
    transport.register(1, SiteId(0), tx);

    let env = |tag| Envelope {
        from: ActorId(2),
        to: ActorId(1),
        msg: Msg::ClientTimer { kind: 0, tag },
    };
    transport.send(env(0)); // fills the mailbox
    let t = {
        let transport = Arc::clone(&transport);
        thread::spawn(move || {
            let started = Instant::now();
            transport.send(env(1)); // must block until the drain below
            started.elapsed()
        })
    };
    thread::sleep(Duration::from_millis(80));
    rx.recv_timeout(Duration::from_secs(1)).expect("first");
    let blocked_for = t.join().expect("sender thread");
    assert!(
        blocked_for >= Duration::from_millis(60),
        "sender only blocked {blocked_for:?}"
    );
    rx.recv_timeout(Duration::from_secs(1)).expect("second");
    assert_eq!(transport.dropped(), 0);
    assert_eq!(transport.shed(), 0);
}

/// `Submit`s into a full mailbox are shed, and the shed surfaces to the
/// submitting client as a timed-out `TxnDone` carrying the submit's tag —
/// a closed-loop client keyed on tags keeps running instead of hanging.
#[test]
fn shed_submit_bounces_as_timed_out_txn_done() {
    let transport = ChannelTransport::direct(Clock::new());
    // An overloaded server: capacity 2, nobody draining.
    let (server_tx, _server_rx) = mailbox(2);
    transport.register(1, SiteId(0), server_tx);
    // The client mailbox receives the bounces.
    let (client_tx, client_rx) = mailbox(64);
    transport.register(9, SiteId(0), client_tx);

    let submit = |tag| Envelope {
        from: ActorId(9),
        to: ActorId(1),
        msg: Msg::Submit {
            spec: TxnSpec::write_one(Key::new("shed"), WriteOp::add(1)),
            reply_to: ActorId(9),
            tag,
        },
    };
    for tag in 0..6 {
        transport.send(submit(tag));
    }
    assert_eq!(transport.shed(), 4, "capacity 2 admits 2, sheds the rest");

    for expected_tag in 2..6 {
        let packet = client_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("bounce arrives");
        let Packet::Env(env) = packet else {
            panic!("unexpected packet for client");
        };
        match env.msg {
            Msg::TxnDone { tag, outcome, .. } => {
                assert_eq!(tag, expected_tag, "bounce carries the submit's tag");
                assert_eq!(outcome, Outcome::TimedOut);
            }
            other => panic!("expected a timed-out TxnDone, got {other:?}"),
        }
    }
}
