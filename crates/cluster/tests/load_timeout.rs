//! Regression: a closed-loop [`LoadClient`] must survive a lost reply.
//!
//! The client keeps exactly one transaction in flight and submits the next
//! only when the previous resolves. It used to rely solely on `TxnDone`
//! arriving — one shed submit (full mailbox) or dropped reply wedged the
//! loop forever. Now every submit arms a per-transaction deadline
//! (`ClientTimer { kind: TIMER_RESUBMIT }`): on expiry the transaction is
//! reported as timed out and the loop moves on.

use std::sync::mpsc;

use planet_cluster::load::{LoadClient, DEFAULT_RESUBMIT_TIMEOUT, TIMER_RESUBMIT};
use planet_mdcc::{Msg, Outcome};
use planet_sim::{topology, Actor, ActorId, Context, SimDuration, Simulation};
use planet_storage::Key;

/// A coordinator that swallows every message: the worst network.
struct BlackHole;

impl Actor<Msg> for BlackHole {
    fn on_message(&mut self, _from: ActorId, _msg: Msg, _ctx: &mut Context<'_, Msg>) {}
}

#[test]
fn lost_reply_times_out_and_loop_continues() {
    let mut sim = Simulation::new(topology::three_dc(), 7);
    let hole = sim.add_actor(planet_sim::SiteId(0), Box::new(BlackHole));
    let (tx, rx) = mpsc::channel();
    let client = LoadClient::new(hole, vec![Key::new("k0")], tx)
        .with_resubmit_timeout(SimDuration::from_millis(50));
    let client_id = sim.add_actor(planet_sim::SiteId(1), Box::new(client));

    // Long enough for several deadlines to expire back-to-back.
    sim.run_for(SimDuration::from_millis(400));

    let records: Vec<_> = rx.try_iter().collect();
    assert!(
        records.len() >= 2,
        "client wedged after a lost reply: only {} record(s)",
        records.len()
    );
    assert!(
        records.iter().all(|r| r.outcome == Outcome::TimedOut),
        "black-holed submits must surface as TimedOut"
    );
    assert!(
        records.iter().all(|r| r.client == client_id.0),
        "records carry the submitting client id"
    );
    // Tags advance: each expiry refills the closed loop with a new txn.
    let mut tags: Vec<u64> = records.iter().map(|r| r.tag).collect();
    tags.sort_unstable();
    tags.dedup();
    assert_eq!(tags.len(), records.len(), "each txn reported exactly once");

    // The knobs are part of the public contract.
    assert_eq!(TIMER_RESUBMIT, 1);
    assert!(DEFAULT_RESUBMIT_TIMEOUT > SimDuration::from_millis(100));
}

/// A straggler `TxnDone` arriving after its deadline already reported the
/// transaction must not double-report or double-refill the loop.
struct EchoLate {
    delay: SimDuration,
    pending: Vec<(ActorId, u64)>,
}

impl Actor<Msg> for EchoLate {
    fn on_message(&mut self, from: ActorId, msg: Msg, ctx: &mut Context<'_, Msg>) {
        match msg {
            Msg::Submit { tag, reply_to, .. } => {
                // Hold the reply far past the client's deadline.
                let _ = from;
                self.pending.push((reply_to, tag));
                ctx.schedule(self.delay, Msg::ClientTimer { kind: 9, tag });
            }
            Msg::ClientTimer { kind: 9, tag } => {
                if let Some(pos) = self.pending.iter().position(|(_, t)| *t == tag) {
                    let (reply_to, tag) = self.pending.remove(pos);
                    let now = ctx.now();
                    ctx.send(
                        reply_to,
                        Msg::TxnDone {
                            tag,
                            txn: planet_storage::TxnId::new(0, tag),
                            outcome: Outcome::Committed,
                            stats: planet_mdcc::TxnStats {
                                submitted_at: now,
                                decided_at: now,
                                proposals_sent_at: now,
                                write_keys: 1,
                                votes_received: 0,
                                rejections: 0,
                            },
                        },
                    );
                }
            }
            _ => {}
        }
    }
}

#[test]
fn straggler_reply_after_deadline_is_dropped() {
    let mut sim = Simulation::new(topology::three_dc(), 11);
    let echo = sim.add_actor(
        planet_sim::SiteId(0),
        Box::new(EchoLate {
            delay: SimDuration::from_millis(200),
            pending: Vec::new(),
        }),
    );
    let (tx, rx) = mpsc::channel();
    let client = LoadClient::new(echo, vec![Key::new("k0")], tx)
        .with_resubmit_timeout(SimDuration::from_millis(50));
    sim.add_actor(planet_sim::SiteId(1), Box::new(client));

    sim.run_for(SimDuration::from_millis(500));

    let records: Vec<_> = rx.try_iter().collect();
    let mut tags: Vec<u64> = records.iter().map(|r| r.tag).collect();
    tags.sort_unstable();
    let deduped = {
        let mut t = tags.clone();
        t.dedup();
        t
    };
    assert_eq!(
        tags.len(),
        deduped.len(),
        "a straggler reply double-reported a transaction"
    );
    // Every reported outcome for these is the deadline's verdict.
    assert!(records.iter().all(|r| r.outcome == Outcome::TimedOut));
}
