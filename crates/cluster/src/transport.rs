//! The pluggable message fabric underneath a live cluster.

use planet_mdcc::Msg;
use planet_sim::ActorId;

/// A protocol message in flight between two live actors.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sending actor.
    pub from: ActorId,
    /// Destination actor.
    pub to: ActorId,
    /// The protocol message, identical to what the simulator schedules.
    pub msg: Msg,
}

/// A message fabric: anything that can carry an [`Envelope`] from one live
/// actor to another. Implementations decide delivery latency, loss, and
/// ordering; the node loops above are transport-agnostic.
///
/// Backpressure: a send *may* block while the destination's bounded mailbox
/// is full — that is the mechanism that keeps queues (and therefore queueing
/// latency) bounded. The one exception is `Msg::Submit`, which transports
/// shed rather than block on (see [`ChannelTransport`]), so client load can
/// never wedge the protocol plane.
///
/// [`ChannelTransport`]: crate::ChannelTransport
pub trait Transport: Send + Sync {
    /// Enqueue `env` for delivery.
    fn send(&self, env: Envelope);

    /// Enqueue a batch of envelopes, draining `envs` (the caller keeps the
    /// vector's capacity for reuse). Implementations coalesce: one fabric
    /// handoff per shard, one socket write per destination. Per-(src, dst)
    /// delivery order follows the order within `envs`, exactly as a loop of
    /// [`send`]s would.
    ///
    /// [`send`]: Transport::send
    fn send_many(&self, envs: &mut Vec<Envelope>) {
        for env in envs.drain(..) {
            self.send(env);
        }
    }
}
