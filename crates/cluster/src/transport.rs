//! The pluggable message fabric underneath a live cluster.

use planet_mdcc::Msg;
use planet_sim::ActorId;

/// A protocol message in flight between two live actors.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sending actor.
    pub from: ActorId,
    /// Destination actor.
    pub to: ActorId,
    /// The protocol message, identical to what the simulator schedules.
    pub msg: Msg,
}

/// A message fabric: anything that can carry an [`Envelope`] from one live
/// actor to another. Implementations decide delivery latency, loss, and
/// ordering; the node loops above are transport-agnostic.
pub trait Transport: Send + Sync {
    /// Enqueue `env` for delivery. Must not block on the destination.
    fn send(&self, env: Envelope);
}
