//! The reactor message plane: N workers driving many actors each.
//!
//! Thread-per-actor made every replica shard, coordinator and client an OS
//! thread. At 3 sites x 4 shards plus coordinators and client pools the
//! host scheduler — not the protocol — dominates the profile: tens of
//! runnable threads context-switch and thrash caches on a small machine,
//! and the sharded sweep recorded sharding *overhead*. The reactor inverts
//! the shape: a fixed pool of [`PlaneConfig::workers`] OS threads drives
//! every actor as a schedulable *task* — its mailbox, its `drive` state
//! (actor, RNG, metrics, outbox) and its scheduling word.
//!
//! Scheduling is a sharded run queue with work stealing:
//!
//! * A task is woken by message arrival (the mailbox's wake hook), by a
//!   timer expiring on a worker's [`TimerWheel`], or by a harness call.
//! * Wakes enqueue the task on its home worker's queue; an idle worker
//!   with an empty queue steals from its peers, so a skewed shard cannot
//!   strand runnable tasks behind one busy worker.
//! * The per-task scheduling word (idle / queued / running / running+
//!   notified) guarantees exactly one worker drives a task at a time —
//!   actor state never needs a lock of its own, exactly as in the
//!   thread-per-actor world.
//!
//! Timers go on a per-worker hashed [`TimerWheel`] instead of a per-thread
//! `BinaryHeap` + exact `recv_timeout` sleep: one `advance` per loop fires
//! everything due, and an idle worker parks until the wheel's next
//! deadline. Outbound sends coalesce across tasks driven back-to-back on
//! the same worker and flush as one `send_many` batch, capped by
//! [`PlaneConfig::fabric_slack_us`]: a pending batch is handed to the
//! transport when it fills, when the worker runs out of tasks, or when its
//! oldest envelope has waited a full horizon — whichever comes first — so
//! a flush can never be stranded behind a long run of stolen or busy
//! tasks.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use planet_mdcc::Msg;
use planet_sim::{
    drive_into, drive_start, Actor, ActorId, DetRng, Effect, Metrics, SimTime, SiteId, TurnInputs,
};

use crate::node::{Clock, NodeHandle, Packet, PoolHandle, PoolMembers};
use crate::plane::{MailboxReceiver, MailboxSender, PlaneConfig};
use crate::sync::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Condvar, Mutex, Ordering};
use crate::transport::{Envelope, Transport};
use crate::wheel::{TimerWheel, DEFAULT_SLOTS, DEFAULT_TICK_US};

/// Idle park backstop when no timer is pending (wakes cut it short).
const IDLE_WAIT: Duration = Duration::from_millis(500);

/// Most consecutive `max_batch` rounds one scheduling slot may spend on a
/// backlogged task before it must requeue behind its peers.
const DRIVE_ROUNDS: u32 = 1;

/// Task scheduling states (the per-task scheduling word).
const IDLE: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
const RUNNING_NOTIFIED: u8 = 3;

/// One actor hosted by a task: id, state, and a private RNG seeded exactly
/// as a dedicated node's would be.
struct TaskMember {
    id: ActorId,
    actor: Box<dyn Actor<Msg>>,
    rng: DetRng,
}

/// Everything a worker needs exclusive access to while driving a task.
/// Lives inside the task's slot mutex and is *taken out* for the duration
/// of a drive, so no lock is held while the actor runs or the transport is
/// called.
///
/// A task hosts one *or more* members behind its single mailbox. The
/// multi-member shape exists for the same reason [`spawn_pool`] does on the
/// thread runtime: hundreds of tiny closed-loop clients each completing
/// ~2 messages per wake would pay the full scheduling cost (queue hop,
/// state-word CAS, body checkout, cold task state) per message, where a
/// pool amortizes one drive across a whole batch of its members' traffic.
/// Members keep private ids and RNGs; routing is by envelope destination.
///
/// [`spawn_pool`]: crate::node::spawn_pool
struct TaskBody {
    site: SiteId,
    members: Vec<TaskMember>,
    /// Destination-id routing for multi-member tasks; `None` for the
    /// single-member case (everything goes to member 0, no map lookup).
    by_id: Option<HashMap<u32, usize>>,
    metrics: Metrics,
    rx: MailboxReceiver,
    transport: Arc<dyn Transport>,
    outbox: Vec<Envelope>,
    effects: Vec<Effect<Msg>>,
    started: bool,
}

/// The shared core of a reactor task: its scheduling word, pending timer
/// fires, the drive-state slot, and the finish rendezvous. Synchronization
/// lives in the contained `Mutex`/atomic fields.
pub(crate) struct TaskCore {
    /// The worker whose run queue wakes enqueue this task on.
    home: usize,
    /// IDLE / QUEUED / RUNNING / RUNNING_NOTIFIED.
    sched: AtomicU8,
    /// Set once the task has been finalized; late wakes become no-ops.
    done: AtomicBool,
    /// Timer payloads whose deadline expired, awaiting delivery as
    /// self-sent messages by the next drive, tagged with the member index
    /// that armed them (a wheel on *any* worker may push here — after a
    /// steal, a task's older timers still live on the wheel of the worker
    /// that armed them).
    timer_fires: Mutex<VecDeque<(usize, Msg)>>,
    /// Fast-path mirror of `timer_fires.is_empty()`: lets every drive of a
    /// timer-less task (the common case) skip the fire-queue mutex.
    timer_pending: AtomicBool,
    /// The drive state; `None` while a worker has it out for a drive, or
    /// after finalization.
    body: Mutex<Option<TaskBody>>,
    /// The harvested members and metrics, present after finalization.
    result: Mutex<Option<(PoolMembers, Metrics)>>,
    finished: Condvar,
}

impl TaskCore {
    /// Block until the task has finalized, returning its member actors and
    /// shared metrics. Called by [`NodeHandle::stop_and_join`] and
    /// [`PoolHandle::stop_and_join`].
    pub(crate) fn wait_finished(&self) -> (PoolMembers, Metrics) {
        let mut slot = self.result.lock().expect("lock poisoned");
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.finished.wait(slot).expect("lock poisoned");
        }
    }

    /// Queue a fired timer's message for delivery on the next drive.
    fn push_timer(&self, member: usize, msg: Msg) {
        let mut fires = self.timer_fires.lock().expect("lock poisoned");
        fires.push_back((member, msg));
        self.timer_pending.store(true, Ordering::Release);
    }

    /// Pop the next pending timer fire, maintaining the fast-path flag.
    fn pop_timer(&self) -> Option<(usize, Msg)> {
        if !self.timer_pending.load(Ordering::Acquire) {
            return None;
        }
        let mut fires = self.timer_fires.lock().expect("lock poisoned");
        let fire = fires.pop_front();
        if fires.is_empty() {
            self.timer_pending.store(false, Ordering::Release);
        }
        fire
    }

    fn has_pending_timer_fires(&self) -> bool {
        self.timer_pending.load(Ordering::Acquire)
    }

    /// The wake-side transition of the scheduling word. Collapses
    /// concurrent wakes into at most one queue entry (IDLE → QUEUED) plus
    /// one re-run note (RUNNING → RUNNING_NOTIFIED); wakes of a finalized
    /// task are dead. Extracted so the loom harness can drive the *same*
    /// transition code the reactor runs, not a transliteration.
    fn try_wake(&self) -> WakeVerdict {
        if self.done.load(Ordering::Acquire) {
            return WakeVerdict::Dead;
        }
        loop {
            match self.sched.load(Ordering::Acquire) {
                IDLE => {
                    if self
                        .sched
                        .compare_exchange(IDLE, QUEUED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        return WakeVerdict::Enqueue;
                    }
                }
                QUEUED | RUNNING_NOTIFIED => return WakeVerdict::Coalesced,
                _ => {
                    if self
                        .sched
                        .compare_exchange(
                            RUNNING,
                            RUNNING_NOTIFIED,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        return WakeVerdict::Coalesced;
                    }
                }
            }
        }
    }

    /// The drive-side entry transition: QUEUED → RUNNING. `false` means
    /// the queue entry was stale (the task finalized after being queued)
    /// and there is nothing to drive.
    fn claim_running(&self) -> bool {
        self.sched
            .compare_exchange(QUEUED, RUNNING, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// The drive-side exit transition: RUNNING → IDLE, unless a wake noted
    /// itself mid-drive (RUNNING_NOTIFIED), in which case the word goes
    /// back to QUEUED and the caller must re-enqueue — the note is the
    /// only record of that wake, so dropping it here is a lost drive.
    fn release_running(&self) -> bool {
        if self
            .sched
            .compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            return false;
        }
        self.sched.store(QUEUED, Ordering::Release);
        true
    }
}

/// What [`TaskCore::try_wake`] decided the waker must do.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum WakeVerdict {
    /// The wake won IDLE → QUEUED: the caller owns the queue push.
    Enqueue,
    /// Another wake already queued or noted the task; nothing to do.
    Coalesced,
    /// The task has finalized; wakes are no-ops.
    Dead,
}

/// One worker's shared face: its run queue and its parker.
struct WorkerShared {
    queue: Mutex<VecDeque<Arc<TaskCore>>>,
    parker: Parker,
}

/// The park/notify rendezvous of one worker. `notified` is sticky: a
/// notify that lands while the worker is between its recheck and its wait
/// is consumed by the wait's guard check, so wakes are never lost. The
/// `parked` flag gates the whole notify path: a busy worker costs its
/// wakers nothing but an atomic load — crucial, since every fabric thread
/// funnels through its destination's parker on every delivery.
struct Parker {
    notified: Mutex<bool>,
    cv: Condvar,
    /// True from just before the pre-sleep recheck until wakeup. Paired
    /// with [`Parker::park_unless`]'s flag-then-recheck order (Dekker
    /// style): an enqueuer that reads `parked == false` is guaranteed its
    /// push is visible to the recheck, so skipping the notify is safe.
    parked: AtomicBool,
}

impl Parker {
    fn new() -> Self {
        Parker {
            notified: Mutex::new(false),
            cv: Condvar::new(),
            parked: AtomicBool::new(false),
        }
    }

    fn notify(&self) {
        let mut notified = self.notified.lock().expect("lock poisoned");
        *notified = true;
        self.cv.notify_one();
    }

    /// Park up to `timeout` — unless `has_work` observes runnable work
    /// after the `parked` flag is visible, in which case the call returns
    /// immediately. Enqueuers order push-then-check-`parked`; this orders
    /// set-`parked`-then-recheck. Under SeqCst one side must see the other:
    /// either the enqueuer notifies, or the recheck finds the push.
    fn park_unless(&self, timeout: Duration, has_work: impl FnOnce() -> bool) {
        self.parked.store(true, Ordering::SeqCst);
        if has_work() {
            self.parked.store(false, Ordering::SeqCst);
            return;
        }
        {
            let mut notified = self.notified.lock().expect("lock poisoned");
            if !*notified {
                let (guard, _) = self
                    .cv
                    .wait_timeout(notified, timeout)
                    .expect("lock poisoned");
                notified = guard;
            }
            *notified = false;
        }
        self.parked.store(false, Ordering::SeqCst);
    }
}

/// The shared state of a reactor: worker queues, parkers, and counters.
/// All interior state is synchronized (queues and parkers carry their own
/// locks; the rest is atomic).
struct ReactorInner {
    workers: Vec<WorkerShared>,
    running: AtomicBool,
    clock: Clock,
    plane: PlaneConfig,
    seed: u64,
    next_home: AtomicUsize,
    steals: AtomicU64,
    /// Microseconds workers spent driving tasks (summed across workers).
    busy_us: AtomicU64,
    /// Microseconds workers spent parked waiting for work.
    idle_us: AtomicU64,
    /// Tasks driven (scheduling slots used, not messages).
    drives: AtomicU64,
    /// Times a worker ran out of runnable tasks and entered its parker.
    parks: AtomicU64,
}

impl ReactorInner {
    /// Make `task` runnable (message arrival, timer fire, initial
    /// schedule). Idempotent under any interleaving: the scheduling word
    /// collapses concurrent wakes into at most one queue entry plus one
    /// re-run note.
    fn wake(&self, task: &Arc<TaskCore>) {
        if task.try_wake() == WakeVerdict::Enqueue {
            self.enqueue(task.home, Arc::clone(task));
        }
    }

    /// Push a runnable task onto worker `home`'s queue and rouse a
    /// *sleeper* if there is one: the home worker when it is parked, else
    /// one parked peer (home is mid-drive, and a parked peer can steal the
    /// task immediately instead of it waiting out an idle backstop). Awake
    /// workers need no notify at all — before parking they recheck every
    /// queue under the parked flag, so a push they weren't told about is
    /// still found — which keeps the saturated path free of the parker
    /// mutex and its condvar.
    fn enqueue(&self, home: usize, task: Arc<TaskCore>) {
        {
            let mut queue = self.workers[home].queue.lock().expect("lock poisoned");
            queue.push_back(task);
        }
        if self.workers[home].parker.parked.load(Ordering::SeqCst) {
            self.workers[home].parker.notify();
            return;
        }
        for (w, worker) in self.workers.iter().enumerate() {
            if w != home && worker.parker.parked.load(Ordering::SeqCst) {
                worker.parker.notify();
                return;
            }
        }
    }

    /// Any task queued on any worker? The pre-park recheck: a worker about
    /// to sleep must look at every queue (not just its own), because
    /// enqueuers skip the notify for workers that weren't parked yet.
    fn has_runnable(&self) -> bool {
        self.workers
            .iter()
            .any(|w| !w.queue.lock().expect("lock poisoned").is_empty())
    }

    /// Pop the next runnable task for worker `w`: its own queue first,
    /// then a steal sweep over its peers.
    fn next_task(&self, w: usize) -> Option<(Arc<TaskCore>, bool)> {
        if let Some(task) = self.workers[w]
            .queue
            .lock()
            .expect("lock poisoned")
            .pop_front()
        {
            return Some((task, false));
        }
        let n = self.workers.len();
        for step in 1..n {
            let victim = (w + step) % n;
            let stolen = self.workers[victim]
                .queue
                .lock()
                .expect("lock poisoned")
                .pop_front();
            if let Some(task) = stolen {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some((task, true));
            }
        }
        None
    }
}

/// A payload on a worker's timer wheel: which task to poke with what, on
/// behalf of which member.
struct TimerFire {
    task: Arc<TaskCore>,
    member: usize,
    msg: Msg,
}

/// Outbound envelopes coalesced across the tasks a worker drives
/// back-to-back, flushed as one `send_many` per transport. `since` is the
/// age of the *oldest* pending envelope: the flush horizon
/// ([`PlaneConfig::fabric_slack_us`]) is measured from it, so batching can
/// delay no send by more than one horizon regardless of how many tasks —
/// stolen or home-grown — the worker drives in between.
struct PendingFlush {
    /// One pending batch per transport the worker's tasks send through (a
    /// process hosts a handful at most — linear scan by pointer identity).
    /// Keeping them separate lets sends coalesce across task drives even
    /// when consecutive drives alternate transports, as they do in a
    /// multi-site tcp topology.
    slots: Vec<(Arc<dyn Transport>, Vec<Envelope>, Instant)>,
    max_batch: usize,
    horizon: Duration,
}

impl PendingFlush {
    fn new(plane: &PlaneConfig) -> Self {
        PendingFlush {
            slots: Vec::new(),
            max_batch: plane.max_batch.max(1),
            horizon: Duration::from_micros(plane.fabric_slack_us),
        }
    }

    /// Absorb one task's outbox into its transport's batch. A full batch
    /// flushes inline; otherwise the envelopes wait for the horizon or the
    /// worker's next idle moment.
    fn absorb(&mut self, transport: &Arc<dyn Transport>, outbox: &mut Vec<Envelope>) {
        if outbox.is_empty() {
            return;
        }
        let slot = match self
            .slots
            .iter_mut()
            .find(|(t, _, _)| Arc::ptr_eq(t, transport))
        {
            Some(slot) => slot,
            None => {
                self.slots
                    .push((Arc::clone(transport), Vec::new(), Instant::now()));
                self.slots.last_mut().expect("just pushed")
            }
        };
        if slot.1.is_empty() {
            slot.2 = Instant::now();
        }
        slot.1.append(outbox);
        if slot.1.len() >= self.max_batch || self.horizon.is_zero() {
            slot.0.send_many(&mut slot.1);
            slot.1.clear();
        }
    }

    /// Hand everything pending to its transport.
    fn flush(&mut self) {
        for (transport, envs, _) in &mut self.slots {
            if !envs.is_empty() {
                transport.send_many(envs);
                envs.clear();
            }
        }
    }

    /// Flush every batch whose oldest pending envelope has aged past the
    /// horizon.
    fn flush_if_due(&mut self) {
        for (transport, envs, since) in &mut self.slots {
            if !envs.is_empty() && since.elapsed() >= self.horizon {
                transport.send_many(envs);
                envs.clear();
            }
        }
    }
}

/// The reactor runtime: worker threads, their shared queues, and the spawn
/// surface. One reactor hosts every actor of a process (servers and
/// clients alike) — [`Reactor::spawn`] returns the same [`NodeHandle`] the
/// thread-per-actor runtime does, so harness code is runtime-agnostic.
pub struct Reactor {
    inner: Arc<ReactorInner>,
    joins: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Reactor {
    /// Start a reactor with `plane.workers` workers (at least one) sharing
    /// `clock`. `seed` feeds each task's private deterministic RNG exactly
    /// as `spawn_node` would.
    pub fn new(clock: Clock, plane: PlaneConfig, seed: u64) -> Arc<Reactor> {
        let workers = plane.workers.max(1);
        let inner = Arc::new(ReactorInner {
            workers: (0..workers)
                .map(|_| WorkerShared {
                    queue: Mutex::new(VecDeque::new()),
                    parker: Parker::new(),
                })
                .collect(),
            running: AtomicBool::new(true),
            clock,
            plane,
            seed,
            next_home: AtomicUsize::new(0),
            steals: AtomicU64::new(0),
            busy_us: AtomicU64::new(0),
            idle_us: AtomicU64::new(0),
            drives: AtomicU64::new(0),
            parks: AtomicU64::new(0),
        });
        let joins = (0..workers)
            .map(|w| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("planet-reactor-{w}"))
                    .spawn(move || run_worker(w, inner))
                    .expect("spawn reactor worker")
            })
            .collect();
        Arc::new(Reactor {
            inner,
            joins: Mutex::new(joins),
        })
    }

    /// Worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.inner.workers.len()
    }

    /// Tasks taken off a peer's queue so far.
    pub fn steals(&self) -> u64 {
        self.inner.steals.load(Ordering::Relaxed)
    }

    /// Worker-time accounting: `(busy_us, idle_us, drives, parks)` summed
    /// across workers — microseconds spent driving tasks, microseconds
    /// spent parked, scheduling slots used, and times a worker ran dry and
    /// entered its parker.
    pub fn worker_stats(&self) -> (u64, u64, u64, u64) {
        (
            self.inner.busy_us.load(Ordering::Relaxed),
            self.inner.idle_us.load(Ordering::Relaxed),
            self.inner.drives.load(Ordering::Relaxed),
            self.inner.parks.load(Ordering::Relaxed),
        )
    }

    /// Spawn `actor` as a reactor task, mirroring `spawn_node`'s contract:
    /// the caller registered `mailbox` with the transport already, and the
    /// actor's `on_start` runs on a worker as soon as the task is first
    /// scheduled (which happens before this call returns control flow to
    /// message delivery — the wake hook is installed first, so no arrival
    /// can race past an unscheduled task).
    pub fn spawn(
        self: &Arc<Self>,
        id: ActorId,
        site: SiteId,
        actor: Box<dyn Actor<Msg>>,
        mailbox: MailboxSender,
        rx: MailboxReceiver,
        transport: Arc<dyn Transport>,
    ) -> NodeHandle {
        let core = self.spawn_task(vec![(id, actor)], site, rx, transport);
        NodeHandle::from_task(id, mailbox, core)
    }

    /// Spawn one task driving a *pool* of actors behind a single shared
    /// mailbox, mirroring [`spawn_pool`](crate::node::spawn_pool)'s
    /// contract on the thread runtime: the caller registered each member id
    /// against `mailbox` already, members keep private ids and RNGs, one
    /// drive drains the whole pool's traffic, and `Packet::Call` (which
    /// names no member) is counted and dropped. The pool is one schedulable
    /// task — it migrates between workers like any other, so load
    /// generators stay stealable without paying per-client scheduling.
    pub fn spawn_pool(
        self: &Arc<Self>,
        members: PoolMembers,
        site: SiteId,
        mailbox: MailboxSender,
        rx: MailboxReceiver,
        transport: Arc<dyn Transport>,
    ) -> PoolHandle {
        assert!(!members.is_empty(), "a pool needs at least one member");
        let ids: Vec<ActorId> = members.iter().map(|(id, _)| *id).collect();
        let core = self.spawn_task(members, site, rx, transport);
        PoolHandle::from_task(ids, mailbox, core)
    }

    /// The shared spawn path: build the task core, install the wake hook,
    /// seat the body, and schedule the initial drive (which runs every
    /// member's `on_start`).
    fn spawn_task(
        self: &Arc<Self>,
        members: PoolMembers,
        site: SiteId,
        rx: MailboxReceiver,
        transport: Arc<dyn Transport>,
    ) -> Arc<TaskCore> {
        let inner = &self.inner;
        let home = inner.next_home.fetch_add(1, Ordering::Relaxed) % inner.workers.len();
        let members: Vec<TaskMember> = members
            .into_iter()
            .map(|(id, actor)| TaskMember {
                id,
                actor,
                rng: DetRng::new(
                    inner.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(id.0 as u64 + 1)),
                ),
            })
            .collect();
        let by_id = (members.len() > 1).then(|| {
            members
                .iter()
                .enumerate()
                .map(|(idx, m)| (m.id.0, idx))
                .collect()
        });
        let core = Arc::new(TaskCore {
            home,
            sched: AtomicU8::new(IDLE),
            done: AtomicBool::new(false),
            timer_fires: Mutex::new(VecDeque::new()),
            timer_pending: AtomicBool::new(false),
            body: Mutex::new(None),
            result: Mutex::new(None),
            finished: Condvar::new(),
        });
        // Wake hook first (while the receiver is still ours, no task lock
        // held), initial schedule last: anything enqueued before the hook
        // existed is picked up by the initial drive. The task core must be
        // weak (the receiver lives inside the task body, so a strong ref
        // would cycle), but the reactor itself is safe to hold strongly —
        // one upgrade per delivery instead of two.
        let weak_core = Arc::downgrade(&core);
        let wake_inner = Arc::clone(inner);
        rx.set_waker(Arc::new(move || {
            if let Some(core) = weak_core.upgrade() {
                wake_inner.wake(&core);
            }
        }));
        *core.body.lock().expect("lock poisoned") = Some(TaskBody {
            site,
            members,
            by_id,
            metrics: Metrics::new(),
            rx,
            transport,
            outbox: Vec::new(),
            effects: Vec::new(),
            started: false,
        });
        inner.wake(&core);
        core
    }

    /// Stop the worker pool. Tasks must have been joined first (via their
    /// handles); workers exit at their next idle moment.
    pub fn shutdown(&self) {
        self.inner.running.store(false, Ordering::SeqCst);
        for worker in &self.inner.workers {
            worker.parker.notify();
        }
        let joins: Vec<_> = {
            let mut slot = self.joins.lock().expect("lock poisoned");
            slot.drain(..).collect()
        };
        for join in joins {
            let _ = join.join();
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// True for message classes whose replica-side drive is dominated by
/// validation + WAL append: what the `span.wal_us` histogram times.
pub(crate) fn is_wal_class(msg: &Msg) -> bool {
    matches!(
        msg,
        Msg::Propose { .. } | Msg::FastPropose { .. } | Msg::Replicate { .. }
    )
}

/// The worker main loop: fire timers, drive tasks (own queue first, then
/// steals), coalesce flushes, park on the wheel's next deadline.
fn run_worker(w: usize, inner: Arc<ReactorInner>) {
    let mut wheel: TimerWheel<TimerFire> = TimerWheel::new(DEFAULT_SLOTS, DEFAULT_TICK_US);
    let mut pending = PendingFlush::new(&inner.plane);
    let mut fired: Vec<TimerFire> = Vec::new();
    loop {
        // Deliver every due timer as a pending self-message + wake.
        wheel.advance(inner.clock.now(), |_, fire| fired.push(fire));
        for fire in fired.drain(..) {
            fire.task.push_timer(fire.member, fire.msg);
            inner.wake(&fire.task);
        }
        // The flush horizon is checked between drives, so a batch ages at
        // most one drive past `fabric_slack_us` even on a saturated worker.
        pending.flush_if_due();
        match inner.next_task(w) {
            Some((task, stolen)) => {
                let began = Instant::now();
                drive_task(&inner, w, &task, stolen, &mut wheel, &mut pending);
                inner
                    .busy_us
                    .fetch_add(began.elapsed().as_micros() as u64, Ordering::Relaxed);
                inner.drives.fetch_add(1, Ordering::Relaxed);
            }
            None => {
                pending.flush();
                if !inner.running.load(Ordering::SeqCst) {
                    return;
                }
                let timeout = match wheel.next_deadline() {
                    Some(at) => at.since(inner.clock.now()).to_std().min(IDLE_WAIT),
                    None => IDLE_WAIT,
                };
                let began = Instant::now();
                inner.parks.fetch_add(1, Ordering::Relaxed);
                inner.workers[w]
                    .parker
                    .park_unless(timeout, || inner.has_runnable());
                inner
                    .idle_us
                    .fetch_add(began.elapsed().as_micros() as u64, Ordering::Relaxed);
            }
        }
    }
}

/// Drive one scheduled task: pending timer fires first, then up to
/// `max_batch` mailbox packets, one turn-group, one coalesced flush
/// hand-off. Ends by releasing the scheduling word (re-queueing if traffic
/// arrived mid-drive or the batch cap left the mailbox non-empty).
fn drive_task(
    inner: &Arc<ReactorInner>,
    w: usize,
    task: &Arc<TaskCore>,
    stolen: bool,
    wheel: &mut TimerWheel<TimerFire>,
    pending: &mut PendingFlush,
) {
    if !task.claim_running() {
        return; // finalized under us; nothing to drive
    }
    let taken = task.body.lock().expect("lock poisoned").take();
    let Some(mut body) = taken else {
        // Finalized between the CAS and the take: leave the word as-is,
        // wakes check `done` first.
        return;
    };
    let max_batch = inner.plane.max_batch.max(1);
    let site = body.site;
    let inputs = |id: ActorId, now: SimTime| TurnInputs {
        now,
        self_id: id,
        self_site: site,
    };
    let mut halted = false;
    if stolen {
        body.metrics.counter("plane.steal").add(1);
    }
    if !body.started {
        body.started = true;
        for idx in 0..body.members.len() {
            let now = inner.clock.now();
            let member = &mut body.members[idx];
            let start = drive_start(
                member.actor.as_mut(),
                inputs(member.id, now),
                &mut member.rng,
                &mut body.metrics,
            );
            body.effects.extend(start.effects);
            absorb_effects(task, &mut body, idx, wheel, now, &mut halted);
        }
    }
    // A backlogged task (a coordinator fielding a whole site's clients)
    // gets several batch rounds in one scheduling slot: going to the back
    // of the run queue after every 64 messages would make its backlog age
    // by a full round-robin cycle per batch — exactly the continuous
    // drain a dedicated node thread gets for free. Rounds are bounded so
    // one hot task cannot monopolize its worker, and each round hands its
    // sends to the coalescing buffer (which self-flushes at `max_batch`
    // and is horizon-checked between rounds).
    let mut budget = max_batch;
    let mut rounds = DRIVE_ROUNDS;
    loop {
        // Timer fires queued by any worker's wheel: delivered as self-sends.
        while budget > 0 && !halted {
            let Some((idx, msg)) = task.pop_timer() else {
                break;
            };
            budget -= 1;
            if idx >= body.members.len() {
                continue; // timer for a member that was never pooled
            }
            let now = inner.clock.now();
            let member = &mut body.members[idx];
            drive_into(
                member.actor.as_mut(),
                inputs(member.id, now),
                member.id,
                msg,
                &mut member.rng,
                &mut body.metrics,
                &mut body.effects,
            );
            absorb_effects(task, &mut body, idx, wheel, now, &mut halted);
        }
        // Mailbox packets, batched exactly as the node loop batches.
        let mut drained = 0u64;
        while budget > 0 && !halted {
            let Ok((packet, enqueued)) = body.rx.try_recv_stamped() else {
                break;
            };
            budget -= 1;
            drained += 1;
            body.metrics
                .histogram("span.queue_us")
                .record(enqueued.elapsed().as_micros() as u64);
            match packet {
                Packet::Env(env) => {
                    let idx = match &body.by_id {
                        None => 0,
                        Some(map) => match map.get(&env.to.0) {
                            Some(&idx) => idx,
                            None => {
                                body.metrics.counter("plane.pool.misrouted").add(1);
                                continue;
                            }
                        },
                    };
                    let now = inner.clock.now();
                    let wal = is_wal_class(&env.msg);
                    let before = if wal { Some(Instant::now()) } else { None };
                    let member = &mut body.members[idx];
                    drive_into(
                        member.actor.as_mut(),
                        inputs(member.id, now),
                        env.from,
                        env.msg,
                        &mut member.rng,
                        &mut body.metrics,
                        &mut body.effects,
                    );
                    if let Some(before) = before {
                        body.metrics
                            .histogram("span.wal_us")
                            .record(before.elapsed().as_micros() as u64);
                    }
                    absorb_effects(task, &mut body, idx, wheel, now, &mut halted);
                }
                Packet::Call(f) => {
                    if body.members.len() > 1 {
                        // A call names no member; see `spawn_pool` docs.
                        body.metrics.counter("plane.pool.dropped_call").add(1);
                        continue;
                    }
                    let member = &mut body.members[0];
                    let followups = f(member.actor.as_mut());
                    for msg in followups {
                        let now = inner.clock.now();
                        let member = &mut body.members[0];
                        drive_into(
                            member.actor.as_mut(),
                            inputs(member.id, now),
                            member.id,
                            msg,
                            &mut member.rng,
                            &mut body.metrics,
                            &mut body.effects,
                        );
                        absorb_effects(task, &mut body, 0, wheel, now, &mut halted);
                    }
                }
                Packet::Stop => {
                    halted = true;
                }
            }
        }
        if drained > 0 {
            body.metrics.histogram("plane.batch").record(drained);
            body.metrics
                .histogram("plane.mailbox.depth")
                .record(body.rx.depth() as u64);
        }
        pending.absorb(&body.transport, &mut body.outbox);
        rounds -= 1;
        if halted || rounds == 0 || budget > 0 || body.rx.depth() == 0 {
            break;
        }
        pending.flush_if_due();
        budget = max_batch;
    }
    if halted {
        finalize(task, body);
        return;
    }
    // More work queued behind the batch cap? Treat it as a wake. (With
    // budget left the drain loop already saw the mailbox empty — anything
    // arriving since has flipped the scheduling word to RUNNING_NOTIFIED —
    // so the depth probe and its gate lock are only paid when the cap hit.)
    let more = task.has_pending_timer_fires() || (budget == 0 && body.rx.depth() > 0);
    // Body back before the word is released: a stealer may drive the task
    // the instant it reads QUEUED.
    *task.body.lock().expect("lock poisoned") = Some(body);
    if task.release_running() {
        inner.enqueue(w, Arc::clone(task));
    } else if more {
        inner.wake(task);
    }
}

/// Harvest a stopped/halted task: record the mailbox high-water, publish
/// the member actors and metrics, mark the task done (late wakes no-op),
/// and drop the mailbox receiver so blocked senders unblock.
fn finalize(task: &Arc<TaskCore>, mut body: TaskBody) {
    body.metrics
        .histogram("plane.mailbox.depth")
        .record(body.rx.high_water() as u64);
    task.done.store(true, Ordering::Release);
    let members: PoolMembers = body.members.into_iter().map(|m| (m.id, m.actor)).collect();
    let result = (members, body.metrics);
    drop(body.rx);
    let mut slot = task.result.lock().expect("lock poisoned");
    *slot = Some(result);
    task.finished.notify_all();
}

/// Apply one member's turn effects: sends to the task outbox, timers to
/// the driving worker's wheel (tagged with the arming member), halt to the
/// drive loop.
fn absorb_effects(
    task: &Arc<TaskCore>,
    body: &mut TaskBody,
    member: usize,
    wheel: &mut TimerWheel<TimerFire>,
    now: SimTime,
    halted: &mut bool,
) {
    let id = body.members[member].id;
    for effect in body.effects.drain(..) {
        match effect {
            Effect::Send { dst, msg } => body.outbox.push(Envelope {
                from: id,
                to: dst,
                msg,
            }),
            Effect::Timer { delay, msg } => {
                wheel.insert(
                    now + delay,
                    TimerFire {
                        task: Arc::clone(task),
                        member,
                        msg,
                    },
                );
            }
            Effect::Halt => *halted = true,
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use std::sync::mpsc;
    use std::sync::Mutex;
    use std::time::{Duration, Instant};

    use planet_mdcc::Msg;
    use planet_sim::{Actor, ActorId, Context, SimDuration, SiteId};

    use super::Reactor;
    use crate::node::Clock;
    use crate::plane::{mailbox, PlaneConfig};
    use crate::transport::{Envelope, Transport};

    /// A transport that records when each envelope reached it.
    #[derive(Default)]
    struct RecordingTransport {
        sent: Mutex<Vec<(Instant, Envelope)>>,
    }

    impl RecordingTransport {
        fn sent_times(&self) -> Vec<Instant> {
            self.sent
                .lock()
                .expect("lock poisoned")
                .iter()
                .map(|(at, _)| *at)
                .collect()
        }
    }

    impl Transport for RecordingTransport {
        fn send(&self, env: Envelope) {
            self.sent
                .lock()
                .expect("lock poisoned")
                .push((Instant::now(), env));
        }

        fn send_many(&self, envs: &mut Vec<Envelope>) {
            let now = Instant::now();
            let mut sent = self.sent.lock().expect("lock poisoned");
            sent.extend(envs.drain(..).map(|env| (now, env)));
        }
    }

    /// Occupies its worker by sleeping through `on_start`.
    struct BusyActor(Duration);

    impl Actor<Msg> for BusyActor {
        fn on_start(&mut self, _ctx: &mut Context<'_, Msg>) {
            std::thread::sleep(self.0);
        }
        fn on_message(&mut self, _from: ActorId, _msg: Msg, _ctx: &mut Context<'_, Msg>) {}
    }

    /// Sends one envelope at startup, then goes quiet.
    struct OneShotSender;

    impl Actor<Msg> for OneShotSender {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            ctx.send(ActorId(999), Msg::ClientTimer { kind: 1, tag: 0 });
        }
        fn on_message(&mut self, _from: ActorId, _msg: Msg, _ctx: &mut Context<'_, Msg>) {}
    }

    /// Satellite regression: a task driven away from its busy home worker
    /// (the steal path) hands its outbox to the *stealing* worker's
    /// coalescing buffer, and that buffer must reach the transport no later
    /// than the flush horizon — not sit stranded until the idle backstop or
    /// the home worker's next drive.
    #[test]
    fn stolen_task_flush_is_not_stranded_past_horizon() {
        let horizon_us = 150_000u64;
        let plane = PlaneConfig {
            fabric_slack_us: horizon_us,
            max_batch: 1024, // count-based flush never triggers
            ..PlaneConfig::default()
        }
        .with_workers(2);
        let transport = std::sync::Arc::new(RecordingTransport::default());
        let reactor = Reactor::new(Clock::new(), plane, 7);

        let mut handles = Vec::new();
        let spawn = |actor: Box<dyn Actor<Msg>>, id: u32| {
            let (tx, rx) = mailbox(plane.mailbox_capacity);
            reactor.spawn(
                ActorId(id),
                SiteId(0),
                actor,
                tx,
                rx,
                transport.clone() as std::sync::Arc<dyn Transport>,
            )
        };
        let started = Instant::now();
        // Home assignment round-robins: the busy task pins worker 0 for
        // 100ms, so every sender homed there can only run by being stolen.
        handles.push(spawn(Box::new(BusyActor(Duration::from_millis(100))), 0));
        let senders = 8;
        for i in 0..senders {
            handles.push(spawn(Box::new(OneShotSender), 100 + i));
        }

        let deadline = Instant::now() + Duration::from_secs(5);
        while (transport.sent.lock().expect("lock poisoned").len() as u32) < senders
            && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(5));
        }

        let times = transport.sent_times();
        assert_eq!(times.len() as u32, senders, "every startup send must land");
        assert!(
            reactor.steals() >= 1,
            "senders homed behind the busy worker must have been stolen"
        );
        // Twice the horizon is the generous bound: a stranded flush would
        // wait out the 500ms idle backstop (or the busy task's 100ms sleep
        // plus a full horizon) instead.
        let bound = Duration::from_micros(2 * horizon_us);
        for at in times {
            let waited = at.duration_since(started);
            assert!(
                waited < bound,
                "flush stranded {waited:?} (bound {bound:?})"
            );
        }
        for handle in handles {
            handle.stop_and_join();
        }
        reactor.shutdown();
    }

    /// Re-arms a short timer on every fire while a firehose of external
    /// messages concurrently wakes (and migrates) the task.
    struct RearmActor {
        fires: u64,
        target: u64,
        msgs: u64,
        progress: mpsc::Sender<u64>,
    }

    impl Actor<Msg> for RearmActor {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            ctx.schedule(
                SimDuration::from_micros(500),
                Msg::ClientTimer { kind: 7, tag: 0 },
            );
        }

        fn on_message(&mut self, _from: ActorId, msg: Msg, ctx: &mut Context<'_, Msg>) {
            match msg {
                Msg::ClientTimer { kind: 7, .. } => {
                    self.fires += 1;
                    let _ = self.progress.send(self.fires);
                    if self.fires < self.target {
                        ctx.schedule(
                            SimDuration::from_micros(500),
                            Msg::ClientTimer { kind: 7, tag: 0 },
                        );
                    }
                }
                _ => self.msgs += 1,
            }
        }
    }

    /// Satellite regression: timer re-arm under concurrent wake. Every
    /// re-armed deadline must fire exactly once even while external
    /// messages race the fire into the task's mailbox and drives hop
    /// between workers — a lost re-arm (or a double fire) under the
    /// wake/steal interleaving shows up as a count mismatch.
    #[test]
    fn timer_rearm_survives_concurrent_wakes() {
        let plane = PlaneConfig::default().with_workers(2);
        let transport = std::sync::Arc::new(RecordingTransport::default());
        let reactor = Reactor::new(Clock::new(), plane, 11);
        let target = 40u64;
        let (progress_tx, progress_rx) = mpsc::channel();
        let (tx, rx) = mailbox(plane.mailbox_capacity);
        let handle = reactor.spawn(
            ActorId(1),
            SiteId(0),
            Box::new(RearmActor {
                fires: 0,
                target,
                msgs: 0,
                progress: progress_tx,
            }),
            tx.clone(),
            rx,
            transport.clone() as std::sync::Arc<dyn Transport>,
        );

        // The firehose: concurrent envelopes that keep waking the task
        // while its timers are in flight.
        let noise = 400u64;
        let pump = std::thread::spawn(move || {
            for i in 0..noise {
                let _ = tx.send(crate::node::Packet::Env(Envelope {
                    from: ActorId(77),
                    to: ActorId(1),
                    msg: Msg::ClientTimer { kind: 99, tag: i },
                }));
                if i % 16 == 0 {
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
        });

        let mut last = 0;
        let deadline = Instant::now() + Duration::from_secs(10);
        while last < target && Instant::now() < deadline {
            match progress_rx.recv_timeout(Duration::from_millis(500)) {
                Ok(n) => last = n,
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
        pump.join().expect("pump thread");
        assert_eq!(last, target, "every re-armed timer must fire exactly once");

        let (actor, _metrics) = handle.stop_and_join();
        reactor.shutdown();
        let any: &dyn std::any::Any = actor.as_ref();
        let rearm = any
            .downcast_ref::<RearmActor>()
            .expect("harvested actor downcasts");
        assert_eq!(rearm.fires, target);
        assert_eq!(rearm.msgs, noise, "no external message may be lost");
    }
}

/// Exhaustive weak-memory verification of the reactor's lock-free
/// protocols, run under `RUSTFLAGS="--cfg loom"` (the `crate::sync`
/// facade swaps every primitive above for `planet-loom`'s modeled
/// types). Each model drives the *real* `Parker` / `TaskCore` code —
/// `park_unless`, `try_wake`, `claim_running`, `release_running`,
/// `push_timer`, `pop_timer`, `wait_finished` — under every bounded-
/// preemption interleaving and every C11-visible load value. Broken
/// "twin" variants re-create the protocol with the load-bearing piece
/// removed (a sub-SeqCst Dekker word, a lock-free mailbox with no
/// happens-before bridge) and assert the harness *finds* the lost
/// wakeup, so the clean runs are evidence rather than vacuity.
#[cfg(all(test, loom))]
mod loom_tests {
    use std::collections::VecDeque;
    use std::io::Write as _;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;
    use std::time::Duration;

    use planet_mdcc::Msg;
    use planet_sim::Metrics;

    use super::{Parker, TaskCore, WakeVerdict, IDLE};
    use crate::node::PoolMembers;
    use crate::sync::{AtomicBool, AtomicU64, AtomicU8, Condvar, Mutex, Ordering};

    /// Park backstop passed to `park_unless`; modeled condvars never time
    /// out, so a wait that is only saved by this backstop is reported as
    /// a deadlock — exactly the lost-wakeup semantics we want.
    const TICK: Duration = Duration::from_millis(1);

    fn fresh_core() -> Arc<TaskCore> {
        Arc::new(TaskCore {
            home: 0,
            sched: AtomicU8::new(IDLE),
            done: AtomicBool::new(false),
            timer_fires: Mutex::new(VecDeque::new()),
            timer_pending: AtomicBool::new(false),
            body: Mutex::new(None),
            result: Mutex::new(None),
            finished: Condvar::new(),
        })
    }

    fn timer_msg(tag: u64) -> Msg {
        Msg::ClientTimer { kind: 7, tag }
    }

    /// Run a model expected to FAIL and return the failure message.
    fn fails(f: impl Fn() + Send + Sync + 'static) -> String {
        let Err(err) = catch_unwind(AssertUnwindSafe(|| loom::model(f))) else {
            panic!("model must fail");
        };
        err.downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_default()
    }

    /// Record the exploration report where CI archives it
    /// (`target/loom/*.json`). Best-effort: the assertions, not the
    /// artifact, are the test.
    fn record(name: &str, report: &loom::Report) {
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/loom");
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let Ok(mut f) = std::fs::File::create(format!("{dir}/{name}.json")) else {
            return;
        };
        let _ = writeln!(
            f,
            "{{\"model\":\"{name}\",\"iterations\":{},\"max_depth\":{},\"preemption_bound\":{}}}",
            report.iterations,
            report.max_depth,
            report.preemption_bound.map_or(-1, |b| b as i64),
        );
    }

    /// The worker/enqueuer rendezvous, exactly as the reactor runs it:
    /// the enqueuer pushes under the queue lock then does the
    /// parked-flag-gated notify (`ReactorInner::enqueue`); the worker
    /// loops `park_unless` with the every-queue recheck (`run_worker`).
    /// A lost handoff leaves the worker committed to a wait no one will
    /// notify — the explorer reports that as a deadlock.
    #[test]
    fn parker_enqueue_handoff_is_never_lost() {
        let report = loom::model(|| {
            let queue = Arc::new(Mutex::new(VecDeque::new()));
            let parker = Arc::new(Parker::new());
            let (q2, p2) = (Arc::clone(&queue), Arc::clone(&parker));
            let enqueuer = loom::thread::spawn(move || {
                q2.lock().expect("lock poisoned").push_back(1u32);
                if p2.parked.load(Ordering::SeqCst) {
                    p2.notify();
                }
            });
            loop {
                if queue.lock().expect("lock poisoned").pop_front().is_some() {
                    break;
                }
                parker.park_unless(TICK, || !queue.lock().expect("lock poisoned").is_empty());
            }
            enqueuer.join().expect("enqueuer");
        });
        record("parker_enqueue_handoff", &report);
        assert!(report.iterations >= 2, "explorer must branch");
    }

    /// The same store→load protocol with the queue replaced by a bare
    /// atomic counter and sub-SeqCst orderings: the work publish and the
    /// parked-flag read may now pass each other, and the harness must
    /// find the resulting lost wakeup. This is the exact downgrade
    /// ATOM002 exists to reject statically.
    #[test]
    fn dekker_handoff_below_seqcst_is_found() {
        let msg = fails(|| {
            let work = Arc::new(AtomicU64::new(0));
            let parker = Arc::new(Parker::new());
            let (w2, p2) = (Arc::clone(&work), Arc::clone(&parker));
            let producer = loom::thread::spawn(move || {
                w2.fetch_add(1, Ordering::Release);
                if p2.parked.load(Ordering::SeqCst) {
                    p2.notify();
                }
            });
            loop {
                if work.load(Ordering::Acquire) > 0 {
                    break;
                }
                parker.park_unless(TICK, || work.load(Ordering::Acquire) > 0);
            }
            producer.join().expect("producer");
        });
        assert!(msg.contains("deadlock"), "{msg}");
    }

    /// The sound twin: both sides of the Dekker pair at `SeqCst`. The
    /// single total order forbids the double-stale read, so exploration
    /// completes clean without any lock bridging the two words.
    #[test]
    fn dekker_handoff_at_seqcst_is_sound() {
        let report = loom::model(|| {
            let work = Arc::new(AtomicU64::new(0));
            let parker = Arc::new(Parker::new());
            let (w2, p2) = (Arc::clone(&work), Arc::clone(&parker));
            let producer = loom::thread::spawn(move || {
                w2.fetch_add(1, Ordering::SeqCst);
                if p2.parked.load(Ordering::SeqCst) {
                    p2.notify();
                }
            });
            loop {
                if work.load(Ordering::SeqCst) > 0 {
                    break;
                }
                parker.park_unless(TICK, || work.load(Ordering::SeqCst) > 0);
            }
            producer.join().expect("producer");
        });
        record("dekker_seqcst", &report);
        assert!(report.iterations >= 2, "explorer must branch");
    }

    /// The full scheduling-word protocol under two concurrent wakers:
    /// each producer deposits a message in a mutex-backed mailbox (the
    /// happens-before bridge a real `MailboxSender` provides) and then
    /// runs `try_wake`; the worker claims, drains until empty, and
    /// releases, re-queueing on a mid-drive note — `drive_task`'s exact
    /// shape. The protocol's correctness argument is subtle: a waker
    /// that pushes after the drain's last empty look *must* observe
    /// RUNNING (the mailbox lock forces it) and so leaves the
    /// RUNNING_NOTIFIED note. If any interleaving or stale read loses a
    /// wake, the worker parks forever and the explorer reports the
    /// deadlock.
    #[test]
    fn sched_word_never_loses_a_wake() {
        let report = loom::model(|| {
            let core = fresh_core();
            let mailbox = Arc::new(Mutex::new(0u32));
            let queue = Arc::new(Mutex::new(VecDeque::new()));
            let parker = Arc::new(Parker::new());
            let mut producers = Vec::new();
            for _ in 0..2 {
                let core = Arc::clone(&core);
                let mailbox = Arc::clone(&mailbox);
                let queue = Arc::clone(&queue);
                let parker = Arc::clone(&parker);
                producers.push(loom::thread::spawn(move || {
                    *mailbox.lock().expect("lock poisoned") += 1;
                    if core.try_wake() == WakeVerdict::Enqueue {
                        queue
                            .lock()
                            .expect("lock poisoned")
                            .push_back(Arc::clone(&core));
                        if parker.parked.load(Ordering::SeqCst) {
                            parker.notify();
                        }
                    }
                }));
            }
            let mut seen = 0u32;
            while seen < 2 {
                let task = queue.lock().expect("lock poisoned").pop_front();
                match task {
                    Some(task) => {
                        assert!(task.claim_running(), "queued task must be claimable");
                        // Drain until the mailbox reads empty — the last
                        // empty look is what the release races against.
                        loop {
                            let got = {
                                let mut slot = mailbox.lock().expect("lock poisoned");
                                std::mem::take(&mut *slot)
                            };
                            if got == 0 {
                                break;
                            }
                            seen += got;
                        }
                        if task.release_running() {
                            queue.lock().expect("lock poisoned").push_back(task);
                        }
                    }
                    None => parker
                        .park_unless(TICK, || !queue.lock().expect("lock poisoned").is_empty()),
                }
            }
            for p in producers {
                p.join().expect("producer");
            }
        });
        record("sched_word", &report);
        assert!(report.iterations >= 2, "explorer must branch");
    }

    /// The broken twin: the mailbox's mutex replaced by a relaxed
    /// counter, severing the happens-before bridge. A waker can now read
    /// a stale QUEUED after the drain's last empty look, coalesce into a
    /// queue entry that has already been consumed, and strand its
    /// message — the lost wake the comment in `drive_task` argues cannot
    /// happen *with* the bridge. The harness must find it.
    #[test]
    fn sched_word_without_mailbox_bridge_is_found() {
        let msg = fails(|| {
            let core = fresh_core();
            let mailbox = Arc::new(AtomicU64::new(0));
            let queue = Arc::new(Mutex::new(VecDeque::new()));
            let parker = Arc::new(Parker::new());
            let mut producers = Vec::new();
            for _ in 0..2 {
                let core = Arc::clone(&core);
                let mailbox = Arc::clone(&mailbox);
                let queue = Arc::clone(&queue);
                let parker = Arc::clone(&parker);
                producers.push(loom::thread::spawn(move || {
                    mailbox.fetch_add(1, Ordering::Relaxed);
                    if core.try_wake() == WakeVerdict::Enqueue {
                        queue
                            .lock()
                            .expect("lock poisoned")
                            .push_back(Arc::clone(&core));
                        if parker.parked.load(Ordering::SeqCst) {
                            parker.notify();
                        }
                    }
                }));
            }
            let mut seen = 0u64;
            while seen < 2 {
                let task = queue.lock().expect("lock poisoned").pop_front();
                match task {
                    Some(task) => {
                        assert!(task.claim_running(), "queued task must be claimable");
                        loop {
                            let got = mailbox.swap(0, Ordering::Relaxed);
                            if got == 0 {
                                break;
                            }
                            seen += got;
                        }
                        if task.release_running() {
                            queue.lock().expect("lock poisoned").push_back(task);
                        }
                    }
                    None => parker
                        .park_unless(TICK, || !queue.lock().expect("lock poisoned").is_empty()),
                }
            }
            for p in producers {
                p.join().expect("producer");
            }
        });
        assert!(msg.contains("deadlock"), "{msg}");
    }

    /// The timer fast-path handshake: `push_timer` (queue under lock,
    /// then flag) racing `pop_timer` (flag probe, queue under lock,
    /// flag clear on empty) while the driver re-arms mid-drain — the
    /// wheel re-arm shape `timer_rearm_survives_concurrent_wakes`
    /// stresses on real threads. Every pushed fire must be drained and
    /// the flag may never read false at rest while fires sit queued.
    #[test]
    fn timer_flag_handshake_never_strands_a_fire() {
        let report = loom::model(|| {
            let core = fresh_core();
            let c2 = Arc::clone(&core);
            let pusher = loom::thread::spawn(move || {
                c2.push_timer(0, timer_msg(1));
            });
            let mut seen = 0u32;
            let mut rearmed = false;
            // Race the concurrent push: drain whatever is visible,
            // re-arming once on the first fire exactly as RearmActor does.
            while let Some((member, _msg)) = core.pop_timer() {
                assert_eq!(member, 0);
                seen += 1;
                if !rearmed {
                    rearmed = true;
                    core.push_timer(0, timer_msg(2));
                }
            }
            pusher.join().expect("pusher");
            // Post-join the push is ordered before us: the fast path must
            // expose everything still queued.
            while let Some((member, _msg)) = core.pop_timer() {
                assert_eq!(member, 0);
                seen += 1;
                if !rearmed {
                    rearmed = true;
                    core.push_timer(0, timer_msg(2));
                }
            }
            assert!(rearmed, "the concurrent fire must have been re-armed");
            assert_eq!(seen, 2, "one pushed + one re-armed fire, exactly once each");
            assert!(
                !core.has_pending_timer_fires(),
                "flag must be clean once the queue is drained"
            );
        });
        record("timer_flag_handshake", &report);
        assert!(report.iterations >= 2, "explorer must branch");
    }

    /// The finish rendezvous: `finalize`'s publish (done flag, result
    /// slot, notify_all) against `wait_finished`'s take-loop, plus the
    /// late-wake gate — a wake arriving after finalization must observe
    /// `done` and die.
    #[test]
    fn finalize_rendezvous_never_loses_the_waiter() {
        let report = loom::model(|| {
            let core = fresh_core();
            let c2 = Arc::clone(&core);
            let finalizer = loom::thread::spawn(move || {
                // The tail of `finalize`.
                c2.done.store(true, Ordering::Release);
                let mut slot = c2.result.lock().expect("lock poisoned");
                *slot = Some((PoolMembers::new(), Metrics::new()));
                c2.finished.notify_all();
            });
            let (members, _metrics) = core.wait_finished();
            assert!(members.is_empty());
            assert_eq!(
                core.try_wake(),
                WakeVerdict::Dead,
                "a post-finalize wake must observe done"
            );
            finalizer.join().expect("finalizer");
        });
        record("finalize_rendezvous", &report);
        assert!(report.iterations >= 2, "explorer must branch");
    }
}
