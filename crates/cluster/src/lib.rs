//! # planet-cluster
//!
//! The live deployment mode: every MDCC replica and coordinator runs on its
//! own OS thread, exchanging the exact protocol messages of `planet-mdcc`
//! through a pluggable [`Transport`]:
//!
//! * [`ChannelTransport`] — in-process mailboxes behind a delay-injecting
//!   fabric thread that applies the *same* [`NetworkModel`] the
//!   deterministic simulator uses (jitter, loss, spikes, partitions), with
//!   wall-clock time since cluster start standing in for simulated time.
//! * [`TcpTransport`] — `std::net` sockets with a length-prefixed binary
//!   wire format ([`wire`]), for multi-process deployments: the `planetd`
//!   server binary and the `planet-load` driver.
//!
//! Protocol logic is not duplicated: nodes funnel every delivered message
//! through [`planet_sim::drive`], the same factored step function the
//! simulation engine calls, so a replica behaves identically whether the
//! scheduler is a deterministic event heap or the OS. Live runs are *not*
//! replayable (thread interleaving is real); the simulation remains the
//! ground truth for experiments, and this crate is how the same stack
//! serves real traffic.
//!
//! [`NetworkModel`]: planet_sim::NetworkModel

#![warn(missing_docs)]

pub mod channel;
pub mod load;
pub mod node;
pub mod plane;
pub mod reactor;
mod sync;
pub mod tcp;
pub mod transport;
pub mod wheel;
pub mod wire;

pub use channel::ChannelTransport;
pub use load::{LoadClient, LoadRecord, PlanSource, SpecSource};
pub use node::{
    spawn_node, spawn_pool, CallFn, Clock, NodeHandle, Packet, PoolHandle, PoolMembers,
};
pub use plane::{
    default_workers, mailbox, MailboxReceiver, MailboxSender, PlaneConfig, TrySendError, Waker,
};
pub use reactor::Reactor;
pub use tcp::TcpTransport;
pub use transport::{Envelope, Transport};

use std::collections::HashMap;
use std::sync::Arc;

use planet_mdcc::{ClusterConfig, CoordinatorActor, Msg, ReplicaActor};
use planet_sim::{Actor, ActorId, Metrics, NetworkModel, SiteId};

/// Builder for a [`LiveCluster`].
pub struct LiveClusterBuilder {
    config: ClusterConfig,
    net: Option<NetworkModel>,
    seed: u64,
    plane: PlaneConfig,
}

impl LiveClusterBuilder {
    /// Start from a cluster configuration.
    pub fn new(config: ClusterConfig) -> Self {
        LiveClusterBuilder {
            config,
            net: None,
            seed: 42,
            plane: PlaneConfig::default(),
        }
    }

    /// Tune the message plane (drain batch size, mailbox capacity, fabric
    /// shard count). Defaults to [`PlaneConfig::default`].
    pub fn plane(mut self, plane: PlaneConfig) -> Self {
        self.plane = plane;
        self
    }

    /// Shape deliveries with a network model (default: instant delivery).
    /// The model must cover at least `config.num_sites` sites.
    pub fn network(mut self, net: NetworkModel) -> Self {
        assert!(
            net.num_sites() >= self.config.num_sites,
            "network model too small for cluster"
        );
        self.net = Some(net);
        self
    }

    /// Seed the per-node and fabric RNGs (jitter sampling, workload key
    /// choice). Live runs are not replayable, but sampling stays
    /// well-defined.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Spawn the server nodes: `num_shards` replicas and one coordinator
    /// per site, with the same dense shard-major actor-id layout the
    /// simulated cluster uses (replica `(site, shard)` at `shard*n + site`,
    /// coordinators at `shards*n .. shards*n + n`). With
    /// `plane.workers > 0` (the default) every node runs as a task on the
    /// [`Reactor`]; `workers == 0` selects the legacy thread-per-actor
    /// runtime, one OS thread per node.
    pub fn build(self) -> LiveCluster {
        let clock = Clock::new();
        let reactor = (self.plane.workers > 0).then(|| Reactor::new(clock, self.plane, self.seed));
        let transport = match self.net {
            Some(net) => ChannelTransport::with_network(
                clock,
                net,
                self.seed,
                self.plane.fabric_shards,
                self.plane.fabric_slack_us,
            ),
            None => ChannelTransport::direct(clock),
        };
        let n = self.config.num_sites;
        let shards = self.config.num_shards.max(1);
        let replica_ids: Vec<ActorId> = (0..shards * n).map(|i| ActorId(i as u32)).collect();

        // Build every actor and mailbox first, register them all with the
        // transport, and only then spawn threads: an actor's on_start may
        // send to peers that would otherwise not be routable yet.
        let mut pending = Vec::new();
        for shard in 0..shards {
            let peers: Vec<ActorId> = replica_ids[shard * n..(shard + 1) * n].to_vec();
            for site in 0..n {
                let actor: Box<dyn Actor<Msg>> =
                    Box::new(ReplicaActor::new(self.config.clone(), peers.clone(), shard));
                pending.push((
                    ActorId((shard * n + site) as u32),
                    SiteId(site as u8),
                    actor,
                ));
            }
        }
        for site in 0..n {
            let actor: Box<dyn Actor<Msg>> = Box::new(CoordinatorActor::new(
                self.config.clone(),
                replica_ids.clone(),
                SiteId(site as u8),
            ));
            pending.push((
                ActorId((shards * n + site) as u32),
                SiteId(site as u8),
                actor,
            ));
        }
        let mut channels = Vec::new();
        for (id, site, actor) in pending {
            let (tx, rx) = mailbox(self.plane.mailbox_capacity);
            transport.register(id.0, site, tx.clone());
            channels.push((id, site, actor, tx, rx));
        }
        let nodes = channels
            .into_iter()
            .map(|(id, site, actor, tx, rx)| match &reactor {
                Some(reactor) => reactor.spawn(
                    id,
                    site,
                    actor,
                    tx,
                    rx,
                    transport.clone() as Arc<dyn Transport>,
                ),
                None => spawn_node(
                    id,
                    site,
                    actor,
                    tx,
                    rx,
                    transport.clone() as Arc<dyn Transport>,
                    clock,
                    self.seed,
                    self.plane,
                ),
            })
            .collect();
        LiveCluster {
            transport,
            clock,
            config: self.config,
            nodes,
            clients: Vec::new(),
            pools: Vec::new(),
            next_client: ((shards + 1) * n) as u32,
            seed: self.seed,
            plane: self.plane,
            reactor,
        }
    }
}

/// Everything harvested from a stopped cluster: each actor (downcastable to
/// its concrete type) with the metrics its node collected.
pub struct Harvest {
    /// Actor and metrics by actor id.
    pub actors: HashMap<u32, (Box<dyn Actor<Msg>>, Metrics)>,
    /// Messages the transport dropped (loss model, partitions, or sends to
    /// stopped nodes during shutdown).
    pub dropped: u64,
    /// Client submits the transport shed at full mailboxes (each bounced
    /// back to its client as a timed-out `TxnDone`).
    pub shed: u64,
}

impl Harvest {
    /// Borrow a harvested actor downcast to its concrete type.
    pub fn actor_as<T: Actor<Msg>>(&self, id: ActorId) -> Option<&T> {
        let (actor, _) = self.actors.get(&id.0)?;
        let any: &dyn std::any::Any = actor.as_ref();
        any.downcast_ref::<T>()
    }

    /// All node metrics merged into one registry (histograms merge;
    /// counters add).
    pub fn merged_metrics(&self) -> Metrics {
        let mut merged = Metrics::new();
        for (_, metrics) in self.actors.values() {
            for (name, hist) in metrics.histograms() {
                merged.histogram(name).merge(hist);
            }
            for (name, value) in metrics.counters() {
                merged.counter(name).add(value);
            }
        }
        merged
    }
}

/// A live MDCC cluster on the in-process transport — the deployment-mode
/// counterpart of the simulated cluster built by
/// `planet_mdcc::build_cluster`. Actors run as tasks on the [`Reactor`]
/// (default) or one OS thread each (`plane.workers == 0`).
pub struct LiveCluster {
    transport: Arc<ChannelTransport>,
    clock: Clock,
    config: ClusterConfig,
    /// Server nodes: replicas `0..shards*n` shard-major, then coordinators
    /// `shards*n .. shards*n + n`.
    nodes: Vec<NodeHandle>,
    /// Client nodes, spawned on demand.
    clients: Vec<NodeHandle>,
    /// Pooled client groups (many actors per thread), spawned on demand.
    pools: Vec<PoolHandle>,
    next_client: u32,
    seed: u64,
    plane: PlaneConfig,
    /// The shared reactor runtime, when `plane.workers > 0`.
    reactor: Option<Arc<Reactor>>,
}

impl LiveCluster {
    /// Start building a cluster.
    pub fn builder(config: ClusterConfig) -> LiveClusterBuilder {
        LiveClusterBuilder::new(config)
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The shared wall clock (origin = cluster start).
    pub fn clock(&self) -> Clock {
        self.clock
    }

    /// The replica actor id for `(site, shard)`.
    pub fn replica(&self, site: usize, shard: usize) -> ActorId {
        ActorId((shard * self.config.num_sites + site) as u32)
    }

    /// The coordinator actor id at `site`.
    pub fn coordinator(&self, site: usize) -> ActorId {
        let shards = self.config.num_shards.max(1);
        ActorId((shards * self.config.num_sites + site) as u32)
    }

    /// The transport (drop counters, direct sends from harness code).
    pub fn transport(&self) -> &Arc<ChannelTransport> {
        &self.transport
    }

    /// The reactor hosting this cluster's actors, when the plane selected
    /// the multiplexed runtime (`workers > 0`).
    pub fn reactor(&self) -> Option<&Arc<Reactor>> {
        self.reactor.as_ref()
    }

    /// Spawn a client actor at `site` (a reactor task, or its own thread
    /// under the legacy runtime), returning its id.
    pub fn spawn_client(&mut self, site: usize, actor: Box<dyn Actor<Msg>>) -> ActorId {
        let id = ActorId(self.next_client);
        self.next_client += 1;
        let (tx, rx) = mailbox(self.plane.mailbox_capacity);
        self.transport
            .register(id.0, SiteId(site as u8), tx.clone());
        let transport = self.transport.clone() as Arc<dyn Transport>;
        let handle = match &self.reactor {
            Some(reactor) => reactor.spawn(id, SiteId(site as u8), actor, tx, rx, transport),
            None => spawn_node(
                id,
                SiteId(site as u8),
                actor,
                tx,
                rx,
                transport,
                self.clock,
                self.seed,
                self.plane,
            ),
        };
        self.clients.push(handle);
        id
    }

    /// Spawn a *pool* of client actors at `site` sharing one thread and one
    /// mailbox, returning their ids in order. Load generators use this
    /// instead of [`spawn_client`](Self::spawn_client): hundreds of tiny
    /// closed-loop clients on one thread per site keep a concurrency sweep
    /// measuring the cluster rather than the OS scheduler. Pooled actors
    /// cannot be addressed through [`NodeHandle::call`] / `inject`.
    pub fn spawn_client_pool(
        &mut self,
        site: usize,
        actors: Vec<Box<dyn Actor<Msg>>>,
    ) -> Vec<ActorId> {
        // Under the reactor, the pool becomes one task *per worker* (each
        // hosting a chunk of the site's clients behind a shared mailbox):
        // a task per client would pay the full scheduling cost — queue hop,
        // state-word CAS, body checkout, cold task state — for every ~2
        // messages a closed-loop client moves per wake, so a concurrency
        // sweep would measure the reactor's scheduler instead of the
        // cluster. Chunking keeps the batch amortization of the thread
        // pool while the tasks stay stealable across workers.
        if let Some(reactor) = self.reactor.clone() {
            let chunk = actors.len().div_ceil(reactor.workers()).max(1);
            let mut ids = Vec::new();
            let mut remaining = actors.into_iter();
            loop {
                let group: Vec<Box<dyn Actor<Msg>>> = remaining.by_ref().take(chunk).collect();
                if group.is_empty() {
                    break;
                }
                let (tx, rx) = mailbox(self.plane.mailbox_capacity);
                let members: PoolMembers = group
                    .into_iter()
                    .map(|actor| {
                        let id = ActorId(self.next_client);
                        self.next_client += 1;
                        self.transport
                            .register(id.0, SiteId(site as u8), tx.clone());
                        (id, actor)
                    })
                    .collect();
                let handle = reactor.spawn_pool(
                    members,
                    SiteId(site as u8),
                    tx,
                    rx,
                    self.transport.clone() as Arc<dyn Transport>,
                );
                ids.extend(handle.ids.iter().copied());
                self.pools.push(handle);
            }
            return ids;
        }
        let (tx, rx) = mailbox(self.plane.mailbox_capacity);
        let members: PoolMembers = actors
            .into_iter()
            .map(|actor| {
                let id = ActorId(self.next_client);
                self.next_client += 1;
                self.transport
                    .register(id.0, SiteId(site as u8), tx.clone());
                (id, actor)
            })
            .collect();
        let handle = spawn_pool(
            members,
            SiteId(site as u8),
            tx,
            rx,
            self.transport.clone() as Arc<dyn Transport>,
            self.clock,
            self.seed,
            self.plane,
        );
        let ids = handle.ids.clone();
        self.pools.push(handle);
        ids
    }

    /// The node handle of a spawned client (for [`NodeHandle::call`] /
    /// [`NodeHandle::inject`]).
    pub fn client(&self, id: ActorId) -> Option<&NodeHandle> {
        self.clients.iter().find(|h| h.id == id)
    }

    /// The node handle of a server node (replica or coordinator) by actor
    /// id, for [`NodeHandle::call`] — e.g. installing a compiled plan on a
    /// coordinator's thread.
    pub fn server(&self, id: ActorId) -> Option<&NodeHandle> {
        self.nodes.iter().find(|h| h.id == id)
    }

    /// Stop every node (clients first, then coordinators, then replicas)
    /// and the fabric, returning the harvested actors and metrics.
    pub fn shutdown(self) -> Harvest {
        let mut actors = HashMap::new();
        for handle in self.clients {
            let id = handle.id.0;
            let harvested = handle.stop_and_join();
            actors.insert(id, harvested);
        }
        for pool in self.pools {
            // The pool's shared metrics registry rides on its first member;
            // the rest carry empty registries so merges count it once.
            let (members, metrics) = pool.stop_and_join();
            let mut metrics = Some(metrics);
            for (id, actor) in members {
                actors.insert(id.0, (actor, metrics.take().unwrap_or_else(Metrics::new)));
            }
        }
        // Coordinators before replicas, so in-flight transactions stop
        // generating replica traffic first.
        for handle in self.nodes.into_iter().rev() {
            let id = handle.id.0;
            let harvested = handle.stop_and_join();
            actors.insert(id, harvested);
        }
        self.transport.stop();
        if let Some(reactor) = self.reactor {
            reactor.shutdown();
        }
        Harvest {
            actors,
            dropped: self.transport.dropped(),
            shed: self.transport.shed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planet_mdcc::{Outcome, Protocol};
    use planet_storage::Key;
    use std::sync::mpsc::channel;
    use std::time::{Duration, Instant};

    fn drain_until(
        rx: &std::sync::mpsc::Receiver<LoadRecord>,
        want: usize,
        timeout: Duration,
    ) -> Vec<LoadRecord> {
        let deadline = Instant::now() + timeout;
        let mut got = Vec::new();
        while got.len() < want && Instant::now() < deadline {
            if let Ok(rec) = rx.recv_timeout(Duration::from_millis(100)) {
                got.push(rec);
            }
        }
        got
    }

    #[test]
    fn live_cluster_commits_on_channel_transport() {
        let config = ClusterConfig::new(3, Protocol::Fast);
        let mut cluster = LiveCluster::builder(config).seed(7).build();
        let (tx, rx) = channel();
        let keys: Vec<Key> = (0..8).map(|i| Key::new(format!("k{i}"))).collect();
        let coord = cluster.coordinator(0);
        cluster.spawn_client(0, Box::new(LoadClient::new(coord, keys, tx)));
        let records = drain_until(&rx, 5, Duration::from_secs(10));
        assert!(
            records.len() >= 5,
            "expected 5 completions, got {}",
            records.len()
        );
        assert!(
            records.iter().any(|r| r.outcome == Outcome::Committed),
            "at least one commit expected"
        );
        let harvest = cluster.shutdown();
        // One replica + one coordinator per site were harvested.
        assert!(harvest.actor_as::<ReplicaActor>(ActorId(0)).is_some());
        assert!(harvest.actor_as::<CoordinatorActor>(ActorId(3)).is_some());
    }

    #[test]
    fn pooled_clients_complete_transactions() {
        // A pool drives many closed-loop clients on one thread per site;
        // every member must make progress and be harvested under its own
        // id, with the pool's shared metrics counted exactly once.
        let config = ClusterConfig::new(3, Protocol::Fast);
        let mut cluster = LiveCluster::builder(config).seed(9).build();
        let (tx, rx) = channel();
        let keys: Vec<Key> = (0..8).map(|i| Key::new(format!("k{i}"))).collect();
        let mut all_ids = Vec::new();
        for site in 0..3 {
            let coord = cluster.coordinator(site);
            let actors: Vec<Box<dyn Actor<Msg>>> = (0..4)
                .map(|_| {
                    Box::new(LoadClient::new(coord, keys.clone(), tx.clone()))
                        as Box<dyn Actor<Msg>>
                })
                .collect();
            all_ids.extend(cluster.spawn_client_pool(site, actors));
        }
        drop(tx);
        assert_eq!(all_ids.len(), 12);
        let records = drain_until(&rx, 36, Duration::from_secs(20));
        assert!(
            records.len() >= 36,
            "expected 36 completions from 12 pooled clients, got {}",
            records.len()
        );
        assert!(records.iter().any(|r| r.outcome == Outcome::Committed));
        let harvest = cluster.shutdown();
        for id in all_ids {
            assert!(
                harvest.actor_as::<LoadClient>(id).is_some(),
                "pooled client {id:?} missing from harvest"
            );
        }
    }

    #[test]
    fn replica_nodes_run_on_distinct_threads() {
        // The legacy runtime's claim: thread-per-actor replicas are
        // actually parallel. Ask each replica node for its thread id via a
        // Call and compare. (The reactor deliberately breaks this property
        // — many tasks share few workers.)
        let config = ClusterConfig::new(3, Protocol::Fast);
        let cluster = LiveCluster::builder(config)
            .plane(PlaneConfig::thread_per_actor())
            .build();
        let (tx, rx) = channel();
        for site in 0..3 {
            let handle = &cluster.nodes[site];
            let tx = tx.clone();
            handle.call(move |_actor| {
                let _ = tx.send(std::thread::current().id());
                Vec::new()
            });
        }
        let mut ids = std::collections::HashSet::new();
        for _ in 0..3 {
            ids.insert(rx.recv_timeout(Duration::from_secs(5)).expect("call ran"));
        }
        assert_eq!(ids.len(), 3, "three replicas, three distinct threads");
        cluster.shutdown();
    }

    #[test]
    fn reactor_runtime_commits_and_reports_spans() {
        // The reactor path end-to-end: servers and a client pool all run
        // as tasks on two workers, transactions commit, and the harvested
        // metrics carry the queueing span histogram.
        let config = ClusterConfig::new(3, Protocol::Fast);
        let mut cluster = LiveCluster::builder(config)
            .plane(PlaneConfig::default().with_workers(2))
            .seed(13)
            .build();
        let (tx, rx) = channel();
        let keys: Vec<Key> = (0..8).map(|i| Key::new(format!("k{i}"))).collect();
        let mut all_ids = Vec::new();
        for site in 0..3 {
            let coord = cluster.coordinator(site);
            let actors: Vec<Box<dyn Actor<Msg>>> = (0..4)
                .map(|_| {
                    Box::new(LoadClient::new(coord, keys.clone(), tx.clone()))
                        as Box<dyn Actor<Msg>>
                })
                .collect();
            all_ids.extend(cluster.spawn_client_pool(site, actors));
        }
        drop(tx);
        assert_eq!(all_ids.len(), 12);
        let records = drain_until(&rx, 36, Duration::from_secs(20));
        assert!(
            records.len() >= 36,
            "expected 36 completions from 12 reactor clients, got {}",
            records.len()
        );
        assert!(records.iter().any(|r| r.outcome == Outcome::Committed));
        let harvest = cluster.shutdown();
        for id in &all_ids {
            assert!(
                harvest.actor_as::<LoadClient>(*id).is_some(),
                "reactor client {id:?} missing from harvest"
            );
        }
        let mut merged = harvest.merged_metrics();
        assert!(
            merged.histogram("span.queue_us").count() > 0,
            "queueing span must be recorded"
        );
        assert!(
            merged.histogram("span.wal_us").count() > 0,
            "WAL span must be recorded on replicas"
        );
    }

    #[test]
    fn network_model_shapes_live_latency() {
        // With a symmetric 20ms-RTT model, a fast-path commit needs the
        // proposal fan-out and votes to cross sites, so end-to-end latency
        // must sit well above the intra-site-only floor.
        let config = ClusterConfig::new(3, Protocol::Fast);
        let rtt = vec![
            vec![0.1, 20.0, 20.0],
            vec![20.0, 0.1, 20.0],
            vec![20.0, 20.0, 0.1],
        ];
        let net = NetworkModel::from_rtt_ms(&rtt);
        let mut cluster = LiveCluster::builder(config).network(net).seed(11).build();
        let (tx, rx) = channel();
        let coord = cluster.coordinator(0);
        cluster.spawn_client(
            0,
            Box::new(LoadClient::new(coord, vec![Key::new("hot")], tx)),
        );
        let records = drain_until(&rx, 3, Duration::from_secs(10));
        assert!(
            records.len() >= 3,
            "expected 3 completions, got {}",
            records.len()
        );
        for rec in &records {
            assert!(
                rec.latency_us() >= 10_000,
                "one-way delay is 10ms, commit took only {}us",
                rec.latency_us()
            );
        }
        cluster.shutdown();
    }
}
