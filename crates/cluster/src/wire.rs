//! The TCP wire format: a hand-rolled, length-prefixed binary codec for
//! [`Envelope`]s.
//!
//! Framing: each envelope is one frame — a little-endian `u32` payload
//! length followed by the payload. The payload is `from: u32`, `to: u32`,
//! then the [`Msg`] encoded with one leading tag byte per enum and
//! fixed-width little-endian integers throughout. Strings and byte blobs
//! are length-prefixed (`u32`). There is no external serialization
//! dependency by design: the workspace builds offline, so the codec is
//! written out by hand and covered by round-trip tests over every message
//! variant.
//!
//! The encoder is generic over a byte [`Sink`], which gives three shapes
//! from one set of putters: [`encode_into`] appends to a caller-owned
//! buffer (the batched TCP path reuses pooled buffers via [`BufPool`], so
//! steady-state encoding allocates nothing), [`encoded_len`] runs the same
//! putters against a counting sink to size a frame without materialising
//! it, and [`encode`] is the allocate-a-fresh-`Vec` convenience.
//!
//! The format is symmetric (what `encode` writes, `decode` reads back) and
//! versioned only implicitly by the enum tags — both ends of a connection
//! are expected to run the same build, which is the deployment model of the
//! `planetd` server and `planet-load` driver.

use std::io::{self, Read, Write};
use std::sync::{Arc, Mutex};

use planet_mdcc::{KeyRead, Msg, Outcome, ProgressStage, ReadLevel, TxnSpec, TxnStats};
use planet_plan::{
    DeltaRef, KeyRef, KeyTemplate, OpTemplate, PlanOp, PlanParam, TemplatePart, TxnProgram,
};
use planet_sim::{ActorId, SimTime, SiteId};
use planet_storage::{Bytes, Key, RecordOption, RejectReason, TxnId, Value, WriteOp};

use crate::transport::Envelope;

/// Largest frame either side will accept: guards a malformed or hostile
/// length prefix from triggering a huge allocation.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// A decoding failure (truncated buffer, unknown tag, oversized frame).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

type Result<T> = std::result::Result<T, WireError>;

fn err<T>(what: &str) -> Result<T> {
    Err(WireError(what.to_string()))
}

// ----------------------------------------------------------------- sinks

/// Where encoded bytes go. One implementation appends to a `Vec<u8>`
/// (actual encoding); one just counts ([`encoded_len`]). The putters below
/// are written once against this trait, so the two can never disagree.
trait Sink {
    fn raw(&mut self, bytes: &[u8]);

    fn u8(&mut self, v: u8) {
        self.raw(&[v]);
    }
    fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }
    fn u32(&mut self, v: u32) {
        self.raw(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.raw(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.raw(&v.to_le_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.raw(v);
    }
    fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
    fn opt_i64(&mut self, v: Option<i64>) {
        match v {
            None => self.bool(false),
            Some(x) => {
                self.bool(true);
                self.i64(x);
            }
        }
    }
}

impl Sink for Vec<u8> {
    fn raw(&mut self, bytes: &[u8]) {
        self.extend_from_slice(bytes);
    }
}

/// A sink that discards bytes and keeps only their count.
struct Measure(usize);

impl Sink for Measure {
    fn raw(&mut self, bytes: &[u8]) {
        self.0 += bytes.len();
    }
}

// ---------------------------------------------------------------- reader

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// When decoding off a shared frame buffer: the owning `Arc` and the
    /// offset of `buf[0]` within it. Keys and byte values then decode as
    /// zero-copy views into the frame instead of per-field allocations.
    shared: Option<(&'a Arc<[u8]>, usize)>,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader {
            buf,
            pos: 0,
            shared: None,
        }
    }

    /// A reader over `owner[base..base + len]` that decodes blob fields as
    /// views into `owner`.
    fn new_shared(owner: &'a Arc<[u8]>, base: usize, len: usize) -> Result<Self> {
        if base.checked_add(len).is_none_or(|end| end > owner.len()) {
            return err("shared range out of bounds");
        }
        Ok(Reader {
            buf: &owner[base..base + len],
            pos: 0,
            shared: Some((owner, base)),
        })
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return err("truncated frame");
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => err("bad bool"),
        }
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("take(4) returns 4 bytes"),
        ))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("take(8) returns 8 bytes"),
        ))
    }
    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("take(8) returns 8 bytes"),
        ))
    }
    fn blob(&mut self) -> Result<&'a [u8]> {
        let n = self.u32()? as usize;
        self.take(n)
    }
    /// A length-prefixed blob as [`Bytes`]: a zero-copy view into the
    /// owning frame buffer when one is attached, an owned copy otherwise.
    fn blob_bytes(&mut self) -> Result<Bytes> {
        let n = self.u32()? as usize;
        let start = self.pos;
        let raw = self.take(n)?;
        match self.shared {
            Some((owner, base)) => Ok(Bytes::shared(Arc::clone(owner), base + start, n)),
            None => Ok(Bytes::copy_from_slice(raw)),
        }
    }
    /// A length-prefixed string as [`Key`]: a zero-copy, UTF-8-validated
    /// view into the owning frame buffer when one is attached.
    fn blob_key(&mut self) -> Result<Key> {
        let n = self.u32()? as usize;
        let start = self.pos;
        let raw = self.take(n)?;
        match self.shared {
            Some((owner, base)) => Key::shared(Arc::clone(owner), base + start, n)
                .ok_or_else(|| WireError("bad utf8".into())),
            None => {
                let s = std::str::from_utf8(raw).map_err(|_| WireError("bad utf8".into()))?;
                Ok(Key::new(s))
            }
        }
    }
    fn string(&mut self) -> Result<String> {
        let raw = self.blob()?;
        String::from_utf8(raw.to_vec()).map_err(|_| WireError("bad utf8".into()))
    }
    fn opt_i64(&mut self) -> Result<Option<i64>> {
        Ok(if self.bool()? {
            Some(self.i64()?)
        } else {
            None
        })
    }
    fn finished(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// ------------------------------------------------------------- components

fn put_key(w: &mut impl Sink, k: &Key) {
    w.str(k.as_str());
}
fn get_key(r: &mut Reader) -> Result<Key> {
    r.blob_key()
}

fn put_txn_id(w: &mut impl Sink, t: TxnId) {
    w.u8(t.site);
    w.u64(t.seq);
}
fn get_txn_id(r: &mut Reader) -> Result<TxnId> {
    Ok(TxnId {
        site: r.u8()?,
        seq: r.u64()?,
    })
}

fn put_value(w: &mut impl Sink, v: &Value) {
    match v {
        Value::None => w.u8(0),
        Value::Int(i) => {
            w.u8(1);
            w.i64(*i);
        }
        Value::Bytes(b) => {
            w.u8(2);
            w.bytes(b.as_slice());
        }
    }
}
fn get_value(r: &mut Reader) -> Result<Value> {
    match r.u8()? {
        0 => Ok(Value::None),
        1 => Ok(Value::Int(r.i64()?)),
        2 => Ok(Value::Bytes(r.blob_bytes()?)),
        _ => err("bad Value tag"),
    }
}

fn put_write_op(w: &mut impl Sink, op: &WriteOp) {
    match op {
        WriteOp::Set(v) => {
            w.u8(0);
            put_value(w, v);
        }
        WriteOp::Delete => w.u8(1),
        WriteOp::Add {
            delta,
            lower,
            upper,
        } => {
            w.u8(2);
            w.i64(*delta);
            w.opt_i64(*lower);
            w.opt_i64(*upper);
        }
    }
}
fn get_write_op(r: &mut Reader) -> Result<WriteOp> {
    match r.u8()? {
        0 => Ok(WriteOp::Set(get_value(r)?)),
        1 => Ok(WriteOp::Delete),
        2 => Ok(WriteOp::Add {
            delta: r.i64()?,
            lower: r.opt_i64()?,
            upper: r.opt_i64()?,
        }),
        _ => err("bad WriteOp tag"),
    }
}

fn put_option(w: &mut impl Sink, o: &RecordOption) {
    put_txn_id(w, o.txn);
    w.u64(o.read_version);
    put_write_op(w, &o.op);
}
fn get_option(r: &mut Reader) -> Result<RecordOption> {
    Ok(RecordOption {
        txn: get_txn_id(r)?,
        read_version: r.u64()?,
        op: get_write_op(r)?,
    })
}

fn put_reject(w: &mut impl Sink, reason: &RejectReason) {
    match reason {
        RejectReason::StaleVersion { expected, actual } => {
            w.u8(0);
            w.u64(*expected);
            w.u64(*actual);
        }
        RejectReason::PendingConflict { holder } => {
            w.u8(1);
            put_txn_id(w, *holder);
        }
        RejectReason::BoundViolation => w.u8(2),
        RejectReason::TypeMismatch => w.u8(3),
        RejectReason::DuplicateTxn => w.u8(4),
    }
}
fn get_reject(r: &mut Reader) -> Result<RejectReason> {
    Ok(match r.u8()? {
        0 => RejectReason::StaleVersion {
            expected: r.u64()?,
            actual: r.u64()?,
        },
        1 => RejectReason::PendingConflict {
            holder: get_txn_id(r)?,
        },
        2 => RejectReason::BoundViolation,
        3 => RejectReason::TypeMismatch,
        4 => RejectReason::DuplicateTxn,
        _ => return err("bad RejectReason tag"),
    })
}

fn put_opt_reject(w: &mut impl Sink, reason: &Option<RejectReason>) {
    match reason {
        None => w.bool(false),
        Some(x) => {
            w.bool(true);
            put_reject(w, x);
        }
    }
}
fn get_opt_reject(r: &mut Reader) -> Result<Option<RejectReason>> {
    Ok(if r.bool()? {
        Some(get_reject(r)?)
    } else {
        None
    })
}

fn put_spec(w: &mut impl Sink, spec: &TxnSpec) {
    w.u32(spec.reads.len() as u32);
    for k in &spec.reads {
        put_key(w, k);
    }
    w.u32(spec.writes.len() as u32);
    for (k, op) in &spec.writes {
        put_key(w, k);
        put_write_op(w, op);
    }
    w.u8(match spec.read_level {
        ReadLevel::Local => 0,
        ReadLevel::Quorum => 1,
    });
}
fn get_spec(r: &mut Reader) -> Result<TxnSpec> {
    let n = r.u32()? as usize;
    let mut reads = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        reads.push(get_key(r)?);
    }
    let n = r.u32()? as usize;
    let mut writes = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        writes.push((get_key(r)?, get_write_op(r)?));
    }
    let read_level = match r.u8()? {
        0 => ReadLevel::Local,
        1 => ReadLevel::Quorum,
        _ => return err("bad ReadLevel tag"),
    };
    Ok(TxnSpec {
        reads,
        writes,
        read_level,
    })
}

fn put_key_read(w: &mut impl Sink, kr: &KeyRead) {
    put_key(w, &kr.key);
    w.u64(kr.version);
    put_value(w, &kr.value);
    w.u64(kr.pending as u64);
}
fn get_key_read(r: &mut Reader) -> Result<KeyRead> {
    Ok(KeyRead {
        key: get_key(r)?,
        version: r.u64()?,
        value: get_value(r)?,
        pending: r.u64()? as usize,
    })
}

fn put_stage(w: &mut impl Sink, stage: &ProgressStage) {
    match stage {
        ProgressStage::Started => w.u8(0),
        ProgressStage::ReadsDone { reads } => {
            w.u8(1);
            w.u32(reads.len() as u32);
            for kr in reads {
                put_key_read(w, kr);
            }
        }
        ProgressStage::Vote {
            key,
            site,
            accept,
            reason,
            elapsed_us,
        } => {
            w.u8(2);
            put_key(w, key);
            w.u8(site.0);
            w.bool(*accept);
            put_opt_reject(w, reason);
            w.u64(*elapsed_us);
        }
        ProgressStage::KeyFallback { key } => {
            w.u8(3);
            put_key(w, key);
        }
        ProgressStage::KeyResolved { key, accepted } => {
            w.u8(4);
            put_key(w, key);
            w.bool(*accepted);
        }
    }
}
fn get_stage(r: &mut Reader) -> Result<ProgressStage> {
    Ok(match r.u8()? {
        0 => ProgressStage::Started,
        1 => {
            let n = r.u32()? as usize;
            let mut reads = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                reads.push(get_key_read(r)?);
            }
            ProgressStage::ReadsDone { reads }
        }
        2 => ProgressStage::Vote {
            key: get_key(r)?,
            site: SiteId(r.u8()?),
            accept: r.bool()?,
            reason: get_opt_reject(r)?,
            elapsed_us: r.u64()?,
        },
        3 => ProgressStage::KeyFallback { key: get_key(r)? },
        4 => ProgressStage::KeyResolved {
            key: get_key(r)?,
            accepted: r.bool()?,
        },
        _ => return err("bad ProgressStage tag"),
    })
}

fn put_outcome(w: &mut impl Sink, o: Outcome) {
    w.u8(match o {
        Outcome::Committed => 0,
        Outcome::Aborted => 1,
        Outcome::TimedOut => 2,
    });
}
fn get_outcome(r: &mut Reader) -> Result<Outcome> {
    Ok(match r.u8()? {
        0 => Outcome::Committed,
        1 => Outcome::Aborted,
        2 => Outcome::TimedOut,
        _ => return err("bad Outcome tag"),
    })
}

fn put_stats(w: &mut impl Sink, s: &TxnStats) {
    w.u64(s.submitted_at.as_micros());
    w.u64(s.decided_at.as_micros());
    w.u64(s.proposals_sent_at.as_micros());
    w.u64(s.write_keys as u64);
    w.u64(s.votes_received as u64);
    w.u64(s.rejections as u64);
}
fn get_stats(r: &mut Reader) -> Result<TxnStats> {
    Ok(TxnStats {
        submitted_at: SimTime::from_micros(r.u64()?),
        decided_at: SimTime::from_micros(r.u64()?),
        proposals_sent_at: SimTime::from_micros(r.u64()?),
        write_keys: r.u64()? as usize,
        votes_received: r.u64()? as usize,
        rejections: r.u64()? as usize,
    })
}

// ----------------------------------------------------------------- plans

fn put_key_ref(w: &mut impl Sink, k: &KeyRef) {
    match k {
        KeyRef::Fixed(i) => {
            w.u8(0);
            w.u32(*i);
        }
        KeyRef::Param(p) => {
            w.u8(1);
            w.u8(*p);
        }
        KeyRef::Derived(tmpl) => {
            w.u8(2);
            w.u32(tmpl.parts.len() as u32);
            for part in &tmpl.parts {
                match part {
                    TemplatePart::Lit(s) => {
                        w.u8(0);
                        w.str(s);
                    }
                    TemplatePart::Param(p) => {
                        w.u8(1);
                        w.u8(*p);
                    }
                }
            }
        }
    }
}
fn get_key_ref(r: &mut Reader) -> Result<KeyRef> {
    Ok(match r.u8()? {
        0 => KeyRef::Fixed(r.u32()?),
        1 => KeyRef::Param(r.u8()?),
        2 => {
            let n = r.u32()? as usize;
            let mut parts = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                parts.push(match r.u8()? {
                    0 => TemplatePart::Lit(r.string()?),
                    1 => TemplatePart::Param(r.u8()?),
                    _ => return err("bad TemplatePart tag"),
                });
            }
            KeyRef::Derived(KeyTemplate { parts })
        }
        _ => return err("bad KeyRef tag"),
    })
}

fn put_op_template(w: &mut impl Sink, t: &OpTemplate) {
    match t {
        OpTemplate::Set(v) => {
            w.u8(0);
            put_value(w, v);
        }
        OpTemplate::SetParam(p) => {
            w.u8(1);
            w.u8(*p);
        }
        OpTemplate::Add {
            delta,
            lower,
            upper,
        } => {
            w.u8(2);
            match delta {
                DeltaRef::Const(d) => {
                    w.u8(0);
                    w.i64(*d);
                }
                DeltaRef::Param(p) => {
                    w.u8(1);
                    w.u8(*p);
                }
            }
            w.opt_i64(*lower);
            w.opt_i64(*upper);
        }
        OpTemplate::Delete => w.u8(3),
    }
}
fn get_op_template(r: &mut Reader) -> Result<OpTemplate> {
    Ok(match r.u8()? {
        0 => OpTemplate::Set(get_value(r)?),
        1 => OpTemplate::SetParam(r.u8()?),
        2 => OpTemplate::Add {
            delta: match r.u8()? {
                0 => DeltaRef::Const(r.i64()?),
                1 => DeltaRef::Param(r.u8()?),
                _ => return err("bad DeltaRef tag"),
            },
            lower: r.opt_i64()?,
            upper: r.opt_i64()?,
        },
        3 => OpTemplate::Delete,
        _ => return err("bad OpTemplate tag"),
    })
}

fn put_program(w: &mut impl Sink, p: &TxnProgram) {
    w.str(&p.name);
    w.u32(p.table.len() as u32);
    for k in &p.table {
        put_key(w, k);
    }
    w.u32(p.ops.len() as u32);
    for op in &p.ops {
        match op {
            PlanOp::Read(k) => {
                w.u8(0);
                put_key_ref(w, k);
            }
            PlanOp::Write(k, t) => {
                w.u8(1);
                put_key_ref(w, k);
                put_op_template(w, t);
            }
        }
    }
    w.bool(p.quorum_reads);
}
fn get_program(r: &mut Reader) -> Result<TxnProgram> {
    let name = r.string()?;
    let n = r.u32()? as usize;
    let mut table = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        table.push(get_key(r)?);
    }
    let n = r.u32()? as usize;
    let mut ops = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        ops.push(match r.u8()? {
            0 => PlanOp::Read(get_key_ref(r)?),
            1 => PlanOp::Write(get_key_ref(r)?, get_op_template(r)?),
            _ => return err("bad PlanOp tag"),
        });
    }
    let quorum_reads = r.bool()?;
    Ok(TxnProgram {
        name,
        table,
        ops,
        quorum_reads,
    })
}

fn put_params(w: &mut impl Sink, params: &[PlanParam]) {
    w.u32(params.len() as u32);
    for p in params {
        match p {
            PlanParam::Key(i) => {
                w.u8(0);
                w.u32(*i);
            }
            PlanParam::Int(v) => {
                w.u8(1);
                w.i64(*v);
            }
        }
    }
}
fn get_params(r: &mut Reader) -> Result<Vec<PlanParam>> {
    let n = r.u32()? as usize;
    let mut params = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        params.push(match r.u8()? {
            0 => PlanParam::Key(r.u32()?),
            1 => PlanParam::Int(r.i64()?),
            _ => return err("bad PlanParam tag"),
        });
    }
    Ok(params)
}

// ------------------------------------------------------------------ msg

fn put_msg(w: &mut impl Sink, msg: &Msg) {
    match msg {
        Msg::Submit {
            spec,
            reply_to,
            tag,
        } => {
            w.u8(0);
            put_spec(w, spec);
            w.u32(reply_to.0);
            w.u64(*tag);
        }
        Msg::ReadReq { txn, keys } => {
            w.u8(1);
            put_txn_id(w, *txn);
            w.u32(keys.len() as u32);
            for k in keys {
                put_key(w, k);
            }
        }
        Msg::FastPropose {
            txn,
            key,
            option,
            round,
        } => {
            w.u8(2);
            put_txn_id(w, *txn);
            put_key(w, key);
            put_option(w, option);
            w.u8(*round);
        }
        Msg::Propose {
            txn,
            key,
            option,
            coordinator,
            round,
        } => {
            w.u8(3);
            put_txn_id(w, *txn);
            put_key(w, key);
            put_option(w, option);
            w.u32(coordinator.0);
            w.u8(*round);
        }
        Msg::Replicate {
            txn,
            key,
            option,
            coordinator,
            master,
            round,
        } => {
            w.u8(4);
            put_txn_id(w, *txn);
            put_key(w, key);
            put_option(w, option);
            w.u32(coordinator.0);
            w.u32(master.0);
            w.u8(*round);
        }
        Msg::Decide {
            txn,
            key,
            option,
            commit,
        } => {
            w.u8(5);
            put_txn_id(w, *txn);
            put_key(w, key);
            put_option(w, option);
            w.bool(*commit);
        }
        Msg::ReadResp { txn, results } => {
            w.u8(6);
            put_txn_id(w, *txn);
            w.u32(results.len() as u32);
            for kr in results {
                put_key_read(w, kr);
            }
        }
        Msg::Vote {
            txn,
            key,
            site,
            accept,
            reason,
            round,
        } => {
            w.u8(7);
            put_txn_id(w, *txn);
            put_key(w, key);
            w.u8(site.0);
            w.bool(*accept);
            put_opt_reject(w, reason);
            w.u8(*round);
        }
        Msg::ReplicateAck { txn, key, site } => {
            w.u8(8);
            put_txn_id(w, *txn);
            put_key(w, key);
            w.u8(site.0);
        }
        Msg::Apply {
            key,
            version,
            value,
            txn,
        } => {
            w.u8(9);
            put_key(w, key);
            w.u64(*version);
            put_value(w, value);
            put_txn_id(w, *txn);
        }
        Msg::DropPending { key, txn } => {
            w.u8(10);
            put_key(w, key);
            put_txn_id(w, *txn);
        }
        Msg::Progress { tag, txn, stage } => {
            w.u8(11);
            w.u64(*tag);
            put_txn_id(w, *txn);
            put_stage(w, stage);
        }
        Msg::TxnDone {
            tag,
            txn,
            outcome,
            stats,
        } => {
            w.u8(12);
            w.u64(*tag);
            put_txn_id(w, *txn);
            put_outcome(w, *outcome);
            put_stats(w, stats);
        }
        Msg::Crash => w.u8(13),
        Msg::Recover => w.u8(14),
        Msg::ReplicaServiceDone => w.u8(15),
        Msg::TxnTimeout { txn } => {
            w.u8(16);
            put_txn_id(w, *txn);
        }
        Msg::ClientTimer { kind, tag } => {
            w.u8(17);
            w.u32(*kind);
            w.u64(*tag);
        }
        Msg::RegisterPlan {
            plan,
            program,
            reply_to,
        } => {
            w.u8(18);
            w.u32(*plan);
            put_program(w, program);
            w.u32(reply_to.0);
        }
        Msg::SubmitPlan {
            plan,
            params,
            reply_to,
            tag,
        } => {
            w.u8(19);
            w.u32(*plan);
            put_params(w, params);
            w.u32(reply_to.0);
            w.u64(*tag);
        }
        Msg::PlanReady { plan } => {
            w.u8(20);
            w.u32(*plan);
        }
    }
}

fn get_msg(r: &mut Reader) -> Result<Msg> {
    Ok(match r.u8()? {
        0 => Msg::Submit {
            spec: get_spec(r)?,
            reply_to: ActorId(r.u32()?),
            tag: r.u64()?,
        },
        1 => {
            let txn = get_txn_id(r)?;
            let n = r.u32()? as usize;
            let mut keys = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                keys.push(get_key(r)?);
            }
            Msg::ReadReq { txn, keys }
        }
        2 => Msg::FastPropose {
            txn: get_txn_id(r)?,
            key: get_key(r)?,
            option: get_option(r)?,
            round: r.u8()?,
        },
        3 => Msg::Propose {
            txn: get_txn_id(r)?,
            key: get_key(r)?,
            option: get_option(r)?,
            coordinator: ActorId(r.u32()?),
            round: r.u8()?,
        },
        4 => Msg::Replicate {
            txn: get_txn_id(r)?,
            key: get_key(r)?,
            option: get_option(r)?,
            coordinator: ActorId(r.u32()?),
            master: ActorId(r.u32()?),
            round: r.u8()?,
        },
        5 => Msg::Decide {
            txn: get_txn_id(r)?,
            key: get_key(r)?,
            option: get_option(r)?,
            commit: r.bool()?,
        },
        6 => {
            let txn = get_txn_id(r)?;
            let n = r.u32()? as usize;
            let mut results = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                results.push(get_key_read(r)?);
            }
            Msg::ReadResp { txn, results }
        }
        7 => Msg::Vote {
            txn: get_txn_id(r)?,
            key: get_key(r)?,
            site: SiteId(r.u8()?),
            accept: r.bool()?,
            reason: get_opt_reject(r)?,
            round: r.u8()?,
        },
        8 => Msg::ReplicateAck {
            txn: get_txn_id(r)?,
            key: get_key(r)?,
            site: SiteId(r.u8()?),
        },
        9 => Msg::Apply {
            key: get_key(r)?,
            version: r.u64()?,
            value: get_value(r)?,
            txn: get_txn_id(r)?,
        },
        10 => Msg::DropPending {
            key: get_key(r)?,
            txn: get_txn_id(r)?,
        },
        11 => Msg::Progress {
            tag: r.u64()?,
            txn: get_txn_id(r)?,
            stage: get_stage(r)?,
        },
        12 => Msg::TxnDone {
            tag: r.u64()?,
            txn: get_txn_id(r)?,
            outcome: get_outcome(r)?,
            stats: get_stats(r)?,
        },
        13 => Msg::Crash,
        14 => Msg::Recover,
        15 => Msg::ReplicaServiceDone,
        16 => Msg::TxnTimeout {
            txn: get_txn_id(r)?,
        },
        17 => Msg::ClientTimer {
            kind: r.u32()?,
            tag: r.u64()?,
        },
        18 => Msg::RegisterPlan {
            plan: r.u32()?,
            program: get_program(r)?,
            reply_to: ActorId(r.u32()?),
        },
        19 => Msg::SubmitPlan {
            plan: r.u32()?,
            params: get_params(r)?,
            reply_to: ActorId(r.u32()?),
            tag: r.u64()?,
        },
        20 => Msg::PlanReady { plan: r.u32()? },
        _ => return err("bad Msg tag"),
    })
}

// ------------------------------------------------------------- envelopes

/// Exact payload size [`encode`] would produce for `env`, computed without
/// writing a byte. Lets framing code reserve buffer space ahead of encoding
/// and write the length prefix before the payload exists.
pub fn encoded_len(env: &Envelope) -> usize {
    let mut m = Measure(0);
    m.u32(env.from.0);
    m.u32(env.to.0);
    put_msg(&mut m, &env.msg);
    m.0
}

/// Append the payload encoding of `env` (no frame header) to `buf`.
pub fn encode_into(env: &Envelope, buf: &mut Vec<u8>) {
    buf.u32(env.from.0);
    buf.u32(env.to.0);
    put_msg(buf, &env.msg);
}

/// Append one length-prefixed frame for `env` to `buf`. The batched TCP
/// send path calls this repeatedly on a pooled buffer, then issues a single
/// socket write for the whole batch.
pub fn encode_frame_into(env: &Envelope, buf: &mut Vec<u8>) {
    let len = encoded_len(env);
    buf.reserve(4 + len);
    buf.u32(len as u32);
    let start = buf.len();
    encode_into(env, buf);
    debug_assert_eq!(buf.len() - start, len, "encoded_len disagrees with encode");
}

/// Encode an envelope into a fresh payload `Vec` (no frame header).
pub fn encode(env: &Envelope) -> Vec<u8> {
    let mut buf = Vec::with_capacity(encoded_len(env));
    encode_into(env, &mut buf);
    buf
}

/// Decode a payload produced by [`encode`]. The whole buffer must be
/// consumed — trailing bytes indicate a framing bug.
pub fn decode(buf: &[u8]) -> Result<Envelope> {
    let mut r = Reader::new(buf);
    let from = ActorId(r.u32()?);
    let to = ActorId(r.u32()?);
    let msg = get_msg(&mut r)?;
    if !r.finished() {
        return err("trailing bytes");
    }
    Ok(Envelope { from, to, msg })
}

/// Decode the payload at `buf[start..start + len]` *zero-copy*: every key
/// and byte value in the resulting message is a refcounted view into
/// `buf`, so a frame decodes with no per-field allocation — the buffer
/// stays alive until the last decoded field drops. Semantically identical
/// to [`decode`] of the same range (the round-trip property tests pin
/// this).
pub fn decode_shared(buf: &Arc<[u8]>, start: usize, len: usize) -> Result<Envelope> {
    let mut r = Reader::new_shared(buf, start, len)?;
    let from = ActorId(r.u32()?);
    let to = ActorId(r.u32()?);
    let msg = get_msg(&mut r)?;
    if !r.finished() {
        return err("trailing bytes");
    }
    Ok(Envelope { from, to, msg })
}

/// Write one length-prefixed frame as a single `write_all` (header and
/// payload together — one syscall on an unbuffered stream, and no partial
/// frame is ever observable from another writer's perspective).
pub fn write_frame(w: &mut impl Write, env: &Envelope) -> io::Result<()> {
    let mut frame = Vec::with_capacity(4 + encoded_len(env));
    encode_frame_into(env, &mut frame);
    w.write_all(&frame)?;
    w.flush()
}

/// Read one length-prefixed frame. Returns `Ok(None)` on clean EOF (the
/// peer closed between frames).
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Envelope>> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut header[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof mid-header",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(header);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame too large",
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    decode(&payload)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Read one length-prefixed frame into a pooled shared buffer and decode
/// it zero-copy ([`decode_shared`]): one buffer (re)use per frame, no
/// per-field allocation. Returns `Ok(None)` on clean EOF.
pub fn read_frame_pooled(r: &mut impl Read, pool: &mut FramePool) -> io::Result<Option<Envelope>> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut header[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof mid-header",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(header);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame too large",
        ));
    }
    let len = len as usize;
    let mut buf = pool.get(len);
    {
        let slot = Arc::get_mut(&mut buf).expect("pooled frame buffer is unique");
        r.read_exact(&mut slot[..len])?;
    }
    let env =
        decode_shared(&buf, 0, len).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    // Back into the pool: reusable again once every decoded view drops.
    pool.put(buf);
    Ok(Some(env))
}

/// A small free-list of shared frame buffers for the zero-copy receive
/// path. Decoded messages hold refcounted views into these buffers, so a
/// buffer is only handed out again once the last view from its previous
/// frame has dropped (`strong_count == 1`) — the pool checks, never
/// blocks, and allocates fresh when everything is still pinned.
pub struct FramePool {
    slots: Vec<Arc<[u8]>>,
}

impl FramePool {
    /// An empty pool.
    pub fn new() -> Self {
        FramePool { slots: Vec::new() }
    }

    /// A unique buffer of at least `len` bytes — a recycled frame whose
    /// views have all dropped, or a fresh allocation.
    fn get(&mut self, len: usize) -> Arc<[u8]> {
        for i in 0..self.slots.len() {
            if self.slots[i].len() >= len && Arc::strong_count(&self.slots[i]) == 1 {
                return self.slots.swap_remove(i);
            }
        }
        // Sized allocation (not rounded up): a long-lived decoded value
        // then pins at most its own frame, never a larger slab.
        std::iter::repeat_n(0u8, len).collect()
    }

    /// Track a buffer for future reuse. Buffers still pinned by decoded
    /// views simply stay unavailable until those views drop.
    fn put(&mut self, buf: Arc<[u8]>) {
        if self.slots.len() < POOL_CAP {
            self.slots.push(buf);
        }
    }
}

impl Default for FramePool {
    fn default() -> Self {
        FramePool::new()
    }
}

// ------------------------------------------------------------------ pool

/// A small free-list of encode buffers, shared by every sender thread of a
/// transport. `get` hands out a cleared buffer that keeps its previous
/// capacity, so after warm-up the encode path performs no allocation at
/// all; `put` returns it (the pool keeps at most a handful, dropping the
/// rest so a burst can't pin memory forever).
pub struct BufPool {
    pool: Mutex<Vec<Vec<u8>>>,
}

/// Most buffers the pool retains; beyond this, returned buffers are freed.
const POOL_CAP: usize = 8;

impl BufPool {
    /// An empty pool.
    pub fn new() -> Self {
        BufPool {
            pool: Mutex::new(Vec::new()),
        }
    }

    /// Take a cleared buffer (reusing a pooled allocation when available).
    pub fn get(&self) -> Vec<u8> {
        self.pool
            .lock()
            .expect("buffer pool lock poisoned")
            .pop()
            .unwrap_or_default()
    }

    /// Return a buffer for reuse.
    pub fn put(&self, mut buf: Vec<u8>) {
        buf.clear();
        let mut pool = self.pool.lock().expect("buffer pool lock poisoned");
        if pool.len() < POOL_CAP {
            pool.push(buf);
        }
    }
}

impl Default for BufPool {
    fn default() -> Self {
        BufPool::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planet_sim::DetRng;

    fn round_trip(env: Envelope) {
        let encoded = encode(&env);
        let decoded = decode(&encoded).expect("decode");
        // Msg has no PartialEq (it carries closures-free but heterogeneous
        // payloads); compare via Debug, which prints every field.
        assert_eq!(format!("{env:?}"), format!("{decoded:?}"));
    }

    fn envelope(msg: Msg) -> Envelope {
        Envelope {
            from: ActorId(3),
            to: ActorId(9),
            msg,
        }
    }

    fn sample_option() -> RecordOption {
        RecordOption::new(
            TxnId::new(2, 77),
            5,
            WriteOp::Add {
                delta: -3,
                lower: Some(0),
                upper: Some(100),
            },
        )
    }

    /// One instance of every `Msg` variant (every `ProgressStage` included),
    /// with payloads exercising nested components. Shared by the round-trip
    /// and `encoded_len` tests so new variants are covered by both.
    fn all_variants() -> Vec<Msg> {
        let spec = TxnSpec {
            reads: vec![Key::new("r1"), Key::new("r2")],
            writes: vec![
                (Key::new("w1"), WriteOp::Set(Value::Int(42))),
                (Key::new("w2"), WriteOp::Delete),
                (Key::new("w3"), WriteOp::Set(Value::bytes(&b"blob"[..]))),
            ],
            read_level: ReadLevel::Quorum,
        };
        let reads = vec![
            KeyRead {
                key: Key::new("a"),
                version: 7,
                value: Value::Int(1),
                pending: 3,
            },
            KeyRead {
                key: Key::new("b"),
                version: 0,
                value: Value::None,
                pending: 0,
            },
        ];
        let stats = TxnStats {
            submitted_at: SimTime::from_micros(123),
            decided_at: SimTime::from_micros(456),
            proposals_sent_at: SimTime::from_micros(300),
            write_keys: 2,
            votes_received: 9,
            rejections: 1,
        };
        vec![
            Msg::Submit {
                spec,
                reply_to: ActorId(12),
                tag: 99,
            },
            Msg::ReadReq {
                txn: TxnId::new(1, 5),
                keys: vec![Key::new("x"), Key::new("y")],
            },
            Msg::FastPropose {
                txn: TxnId::new(1, 5),
                key: Key::new("k"),
                option: sample_option(),
                round: 1,
            },
            Msg::Propose {
                txn: TxnId::new(1, 5),
                key: Key::new("k"),
                option: sample_option(),
                coordinator: ActorId(4),
                round: 2,
            },
            Msg::Replicate {
                txn: TxnId::new(1, 5),
                key: Key::new("k"),
                option: sample_option(),
                coordinator: ActorId(4),
                master: ActorId(2),
                round: 0,
            },
            Msg::Decide {
                txn: TxnId::new(1, 5),
                key: Key::new("k"),
                option: sample_option(),
                commit: true,
            },
            Msg::ReadResp {
                txn: TxnId::new(1, 5),
                results: reads.clone(),
            },
            Msg::Vote {
                txn: TxnId::new(1, 5),
                key: Key::new("k"),
                site: SiteId(3),
                accept: false,
                reason: Some(RejectReason::StaleVersion {
                    expected: 4,
                    actual: 6,
                }),
                round: 1,
            },
            Msg::ReplicateAck {
                txn: TxnId::new(1, 5),
                key: Key::new("k"),
                site: SiteId(2),
            },
            Msg::Apply {
                key: Key::new("k"),
                version: 8,
                value: Value::Int(-5),
                txn: TxnId::new(1, 5),
            },
            Msg::DropPending {
                key: Key::new("k"),
                txn: TxnId::new(1, 5),
            },
            Msg::Progress {
                tag: 7,
                txn: TxnId::new(1, 5),
                stage: ProgressStage::Started,
            },
            Msg::Progress {
                tag: 7,
                txn: TxnId::new(1, 5),
                stage: ProgressStage::ReadsDone { reads },
            },
            Msg::Progress {
                tag: 7,
                txn: TxnId::new(1, 5),
                stage: ProgressStage::Vote {
                    key: Key::new("k"),
                    site: SiteId(1),
                    accept: true,
                    reason: None,
                    elapsed_us: 1234,
                },
            },
            Msg::Progress {
                tag: 7,
                txn: TxnId::new(1, 5),
                stage: ProgressStage::KeyFallback { key: Key::new("k") },
            },
            Msg::Progress {
                tag: 7,
                txn: TxnId::new(1, 5),
                stage: ProgressStage::KeyResolved {
                    key: Key::new("k"),
                    accepted: true,
                },
            },
            Msg::TxnDone {
                tag: 7,
                txn: TxnId::new(1, 5),
                outcome: Outcome::Aborted,
                stats,
            },
            Msg::Crash,
            Msg::Recover,
            Msg::ReplicaServiceDone,
            Msg::TxnTimeout {
                txn: TxnId::new(1, 5),
            },
            Msg::ClientTimer { kind: 101, tag: 55 },
            Msg::RegisterPlan {
                plan: 3,
                program: sample_program(),
                reply_to: ActorId(12),
            },
            Msg::SubmitPlan {
                plan: 3,
                params: vec![PlanParam::Key(1), PlanParam::Int(-7)],
                reply_to: ActorId(12),
                tag: 42,
            },
            Msg::PlanReady { plan: 3 },
        ]
    }

    /// A program exercising every `KeyRef`, `OpTemplate` and `DeltaRef`
    /// shape the codec must carry.
    fn sample_program() -> TxnProgram {
        let mut prog = TxnProgram::new("wire-sample");
        let a = prog.intern(Key::new("stock:1"));
        let b = prog.intern(Key::new("event:1"));
        prog.read(KeyRef::Fixed(b))
            .write(
                KeyRef::Param(0),
                OpTemplate::Add {
                    delta: DeltaRef::Const(-1),
                    lower: Some(0),
                    upper: None,
                },
            )
            .write(
                KeyRef::Derived(KeyTemplate::new().lit("order:").param(1)),
                OpTemplate::SetParam(1),
            )
            .write(KeyRef::Fixed(a), OpTemplate::Delete)
            .write(
                KeyRef::Fixed(b),
                OpTemplate::Add {
                    delta: DeltaRef::Param(1),
                    lower: None,
                    upper: Some(100),
                },
            )
            .quorum_reads()
    }

    #[test]
    fn round_trips_every_msg_variant() {
        for msg in all_variants() {
            round_trip(envelope(msg));
        }
    }

    #[test]
    fn encoded_len_matches_encode_for_every_variant() {
        for msg in all_variants() {
            let env = envelope(msg);
            let encoded = encode(&env);
            assert_eq!(
                encoded_len(&env),
                encoded.len(),
                "encoded_len mismatch for {env:?}"
            );
            let mut framed = Vec::new();
            encode_frame_into(&env, &mut framed);
            assert_eq!(framed.len(), 4 + encoded.len());
            assert_eq!(&framed[4..], &encoded[..], "frame body differs");
        }
    }

    /// Property: `encoded_len` matches the materialised encoding for
    /// randomised payloads too — variable-length keys, blobs and
    /// collection sizes, not just the fixed samples above.
    #[test]
    fn encoded_len_matches_encode_for_random_payloads() {
        for trial in 0..200u64 {
            let mut rng = DetRng::new(0x57AB_1E00 + trial);
            let key_of = |r: &mut DetRng| {
                let len = (r.next_u64() % 40) as usize;
                Key::new("k".repeat(len.max(1)))
            };
            let value_of = |r: &mut DetRng| match r.next_u64() % 3 {
                0 => Value::None,
                1 => Value::Int(r.next_u64() as i64),
                _ => {
                    let len = (r.next_u64() % 300) as usize;
                    Value::bytes(vec![0xAB; len])
                }
            };
            let msg = match trial % 4 {
                0 => {
                    let reads = (0..(rng.next_u64() % 8))
                        .map(|_| key_of(&mut rng))
                        .collect();
                    let writes = (0..(rng.next_u64() % 8))
                        .map(|_| (key_of(&mut rng), WriteOp::Set(value_of(&mut rng))))
                        .collect();
                    Msg::Submit {
                        spec: TxnSpec {
                            reads,
                            writes,
                            read_level: ReadLevel::Local,
                        },
                        reply_to: ActorId(rng.next_u64() as u32),
                        tag: rng.next_u64(),
                    }
                }
                1 => Msg::ReadResp {
                    txn: TxnId::new(1, rng.next_u64()),
                    results: (0..(rng.next_u64() % 6))
                        .map(|_| KeyRead {
                            key: key_of(&mut rng),
                            version: rng.next_u64(),
                            value: value_of(&mut rng),
                            pending: (rng.next_u64() % 10) as usize,
                        })
                        .collect(),
                },
                2 => Msg::Apply {
                    key: key_of(&mut rng),
                    version: rng.next_u64(),
                    value: value_of(&mut rng),
                    txn: TxnId::new(2, rng.next_u64()),
                },
                _ => Msg::Vote {
                    txn: TxnId::new(3, rng.next_u64()),
                    key: key_of(&mut rng),
                    site: SiteId((rng.next_u64() % 5) as u8),
                    accept: rng.next_u64().is_multiple_of(2),
                    reason: if rng.next_u64().is_multiple_of(2) {
                        Some(RejectReason::PendingConflict {
                            holder: TxnId::new(0, rng.next_u64()),
                        })
                    } else {
                        None
                    },
                    round: (rng.next_u64() % 4) as u8,
                },
            };
            let env = Envelope {
                from: ActorId(rng.next_u64() as u32),
                to: ActorId(rng.next_u64() as u32),
                msg,
            };
            let encoded = encode(&env);
            assert_eq!(
                encoded_len(&env),
                encoded.len(),
                "encoded_len mismatch for {env:?}"
            );
            round_trip(env);
        }
    }

    /// Property: zero-copy decode off a shared buffer is observably
    /// identical to owned decode, for every variant. Also pins that the
    /// shared path really is zero-copy: decoded byte values are views
    /// into the frame, not copies.
    #[test]
    fn shared_decode_is_equivalent_to_owned_decode() {
        for msg in all_variants() {
            let env = envelope(msg);
            let encoded = encode(&env);
            // Embed the payload at a nonzero offset inside a larger
            // buffer, as a pooled frame would be.
            let mut framed = vec![0xEE; 7];
            framed.extend_from_slice(&encoded);
            framed.extend_from_slice(&[0xEE; 3]);
            let arc: Arc<[u8]> = Arc::from(framed.into_boxed_slice());
            let owned = decode(&encoded).expect("owned decode");
            let shared = decode_shared(&arc, 7, encoded.len()).expect("shared decode");
            assert_eq!(
                format!("{owned:?}"),
                format!("{shared:?}"),
                "owned and shared decode disagree"
            );
            if let Msg::Submit { spec, .. } = &shared.msg {
                for (_, op) in &spec.writes {
                    if let WriteOp::Set(Value::Bytes(b)) = op {
                        assert!(b.is_view(), "shared decode must not copy byte values");
                    }
                }
            }
        }
    }

    /// Property: shared ≡ owned decode under randomized payloads —
    /// variable-length keys, blobs and collection sizes, including empty
    /// ones.
    #[test]
    fn shared_decode_matches_owned_for_random_payloads() {
        for trial in 0..200u64 {
            let mut rng = DetRng::new(0xC0DE_C0DE ^ trial);
            let key_of = |r: &mut DetRng| {
                let len = (r.next_u64() % 40) as usize;
                Key::new("q".repeat(len.max(1)))
            };
            let value_of = |r: &mut DetRng| match r.next_u64() % 4 {
                0 => Value::None,
                1 => Value::Int(r.next_u64() as i64),
                2 => Value::bytes(&b""[..]),
                _ => {
                    let len = (r.next_u64() % 300) as usize;
                    let body: Vec<u8> = (0..len).map(|i| (i as u8) ^ 0x5A).collect();
                    Value::bytes(body)
                }
            };
            let msg = match trial % 3 {
                0 => Msg::Apply {
                    key: key_of(&mut rng),
                    version: rng.next_u64(),
                    value: value_of(&mut rng),
                    txn: TxnId::new(1, rng.next_u64()),
                },
                1 => Msg::ReadResp {
                    txn: TxnId::new(2, rng.next_u64()),
                    results: (0..(rng.next_u64() % 6))
                        .map(|_| KeyRead {
                            key: key_of(&mut rng),
                            version: rng.next_u64(),
                            value: value_of(&mut rng),
                            pending: (rng.next_u64() % 10) as usize,
                        })
                        .collect(),
                },
                _ => Msg::Submit {
                    spec: TxnSpec {
                        reads: (0..(rng.next_u64() % 8))
                            .map(|_| key_of(&mut rng))
                            .collect(),
                        writes: (0..(rng.next_u64() % 8))
                            .map(|_| (key_of(&mut rng), WriteOp::Set(value_of(&mut rng))))
                            .collect(),
                        read_level: ReadLevel::Quorum,
                    },
                    reply_to: ActorId(rng.next_u64() as u32),
                    tag: rng.next_u64(),
                },
            };
            let env = Envelope {
                from: ActorId(rng.next_u64() as u32),
                to: ActorId(rng.next_u64() as u32),
                msg,
            };
            let encoded = encode(&env);
            let arc: Arc<[u8]> = Arc::from(encoded.clone().into_boxed_slice());
            let owned = decode(&encoded).expect("owned decode");
            let shared = decode_shared(&arc, 0, encoded.len()).expect("shared decode");
            assert_eq!(format!("{owned:?}"), format!("{shared:?}"));
        }
    }

    /// A pooled frame buffer is reused once the views of its previous
    /// frame drop, and left alone while any view still pins it.
    #[test]
    fn frame_pool_reuses_only_unpinned_buffers() {
        let mut pool = FramePool::new();
        let env = envelope(Msg::Apply {
            key: Key::new("k"),
            version: 1,
            value: Value::bytes(&b"payload-bytes"[..]),
            txn: TxnId::new(0, 1),
        });
        let mut stream = Vec::new();
        write_frame(&mut stream, &env).unwrap();
        write_frame(&mut stream, &env).unwrap();
        write_frame(&mut stream, &env).unwrap();
        let mut cursor = std::io::Cursor::new(stream);
        let first = read_frame_pooled(&mut cursor, &mut pool)
            .unwrap()
            .expect("first frame");
        // `first`'s key/value views pin the first buffer, so the second
        // read must allocate a distinct one.
        let second = read_frame_pooled(&mut cursor, &mut pool)
            .unwrap()
            .expect("second frame");
        assert_eq!(format!("{first:?}"), format!("{second:?}"));
        assert_eq!(pool.slots.len(), 2, "two buffers in flight");
        // Drop both decoded envelopes: both buffers become reusable, and
        // the third read recycles instead of growing the pool.
        drop(first);
        drop(second);
        let third = read_frame_pooled(&mut cursor, &mut pool)
            .unwrap()
            .expect("third frame");
        assert_eq!(format!("{env:?}"), format!("{third:?}"));
        assert_eq!(pool.slots.len(), 2, "recycled, not grown");
    }

    #[test]
    fn round_trips_every_reject_reason() {
        let reasons = vec![
            RejectReason::StaleVersion {
                expected: 1,
                actual: 2,
            },
            RejectReason::PendingConflict {
                holder: TxnId::new(3, 9),
            },
            RejectReason::BoundViolation,
            RejectReason::TypeMismatch,
            RejectReason::DuplicateTxn,
        ];
        for reason in reasons {
            round_trip(envelope(Msg::Vote {
                txn: TxnId::new(0, 1),
                key: Key::new("k"),
                site: SiteId(0),
                accept: false,
                reason: Some(reason),
                round: 0,
            }));
        }
    }

    #[test]
    fn frame_round_trip_over_a_buffer() {
        let env = envelope(Msg::ClientTimer { kind: 1, tag: 2 });
        let mut buf = Vec::new();
        write_frame(&mut buf, &env).unwrap();
        write_frame(&mut buf, &env).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let a = read_frame(&mut cursor).unwrap().expect("first frame");
        let b = read_frame(&mut cursor).unwrap().expect("second frame");
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
        assert_eq!(format!("{env:?}"), format!("{a:?}"));
        assert_eq!(format!("{env:?}"), format!("{b:?}"));
    }

    /// Steady-state batch encoding is allocation-free: a pooled buffer,
    /// once warmed, is reused in place — same capacity, same allocation.
    #[test]
    fn pooled_frame_encode_reuses_the_allocation() {
        let pool = BufPool::new();
        let batch: Vec<Envelope> = all_variants().into_iter().map(envelope).collect();

        let mut buf = pool.get();
        for env in &batch {
            encode_frame_into(env, &mut buf);
        }
        let warmed_capacity = buf.capacity();
        pool.put(buf);

        let mut buf = pool.get();
        assert_eq!(buf.capacity(), warmed_capacity, "pool returned our buffer");
        let base = buf.as_ptr();
        for env in &batch {
            encode_frame_into(env, &mut buf);
        }
        assert_eq!(buf.capacity(), warmed_capacity, "no regrowth on reuse");
        assert_eq!(buf.as_ptr(), base, "no reallocation on reuse");
        pool.put(buf);
    }

    #[test]
    fn truncated_and_malformed_payloads_are_rejected() {
        let env = envelope(Msg::Recover);
        let encoded = encode(&env);
        assert!(
            decode(&encoded[..encoded.len() - 1]).is_err(),
            "truncation detected"
        );
        let mut trailing = encoded.clone();
        trailing.push(0);
        assert!(decode(&trailing).is_err(), "trailing bytes detected");
        let mut bad_tag = encoded;
        *bad_tag.last_mut().unwrap() = 200;
        assert!(decode(&bad_tag).is_err(), "unknown tag detected");
    }

    #[test]
    fn oversized_frame_header_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        let mut cursor = std::io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }
}
