//! A hashed timer wheel for the reactor runtime.
//!
//! Every reactor worker owns one wheel. Timers armed by the actors it
//! drives land in a slot hashed from their deadline tick; one `advance`
//! call per loop iteration fires everything due, in exact deadline order.
//! This replaces the per-thread `BinaryHeap` + exact `recv_timeout` sleep
//! of the thread-per-actor loop: with hundreds of tasks per worker the
//! wheel keeps insert/cancel O(1) for the short protocol timers that
//! dominate (transaction timeouts, fabric horizons), while deadlines past
//! the wheel's horizon (e.g. the 5 s client resubmit backstop) overflow
//! into a heap that is only consulted when something in it comes due.
//!
//! Entries live in a slab, so a [`TimerId`] is a stable, generation-checked
//! handle: cancelling a fired, reused or already-cancelled timer is a safe
//! no-op, never a misfire of an unrelated entry.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use planet_sim::SimTime;

/// Default number of wheel slots (one rotation = `slots * tick`).
pub const DEFAULT_SLOTS: usize = 256;

/// Default tick width in microseconds. With 256 slots the horizon is
/// ~262 ms: every protocol timer lands in the wheel, client resubmit
/// backstops overflow to the heap.
pub const DEFAULT_TICK_US: u64 = 1024;

/// A stable handle to an armed timer, valid until the timer fires or is
/// cancelled. Generation-checked: a stale id never touches a reused slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerId {
    idx: u32,
    gen: u32,
}

struct Entry<T> {
    gen: u32,
    at: SimTime,
    seq: u64,
    /// `None` once fired or cancelled; the slab index is recycled when the
    /// containing slot (or the overflow heap) next sees the entry.
    item: Option<T>,
}

/// The hashed wheel. `T` is the payload delivered on expiry.
pub struct TimerWheel<T> {
    entries: Vec<Entry<T>>,
    free: Vec<u32>,
    slots: Vec<Vec<u32>>,
    /// Deadlines at least one rotation out, keyed `(due_us, seq, idx)`.
    overflow: BinaryHeap<Reverse<(u64, u64, u32)>>,
    /// The next tick `advance` has not yet processed.
    cursor: u64,
    tick_us: u64,
    seq: u64,
    live: usize,
    /// Scratch for `advance`: reused so steady-state firing allocates
    /// nothing.
    due: Vec<(SimTime, u64, u32)>,
}

impl<T> TimerWheel<T> {
    /// A wheel with `slots` slots of `tick_us` microseconds each.
    pub fn new(slots: usize, tick_us: u64) -> Self {
        assert!(slots > 0 && tick_us > 0, "wheel geometry must be positive");
        TimerWheel {
            entries: Vec::new(),
            free: Vec::new(),
            slots: (0..slots).map(|_| Vec::new()).collect(),
            overflow: BinaryHeap::new(),
            cursor: 0,
            tick_us,
            seq: 0,
            live: 0,
            due: Vec::new(),
        }
    }

    /// Armed timers currently pending.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no timer is pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    fn tick_of(&self, at: SimTime) -> u64 {
        at.as_micros() / self.tick_us
    }

    /// Arm a timer due at `at`. Returns a handle usable with
    /// [`cancel`](Self::cancel) until the timer fires.
    pub fn insert(&mut self, at: SimTime, item: T) -> TimerId {
        let seq = self.seq;
        self.seq += 1;
        let idx = match self.free.pop() {
            Some(idx) => {
                let e = &mut self.entries[idx as usize];
                e.at = at;
                e.seq = seq;
                e.item = Some(item);
                idx
            }
            None => {
                let idx = self.entries.len() as u32;
                self.entries.push(Entry {
                    gen: 0,
                    at,
                    seq,
                    item: Some(item),
                });
                idx
            }
        };
        self.live += 1;
        let tick = self.tick_of(at);
        let n = self.slots.len() as u64;
        if tick < self.cursor + n {
            // Already-due deadlines park in the cursor slot so the next
            // `advance` sees them immediately.
            let slot = (tick.max(self.cursor) % n) as usize;
            self.slots[slot].push(idx);
        } else {
            self.overflow.push(Reverse((at.as_micros(), seq, idx)));
        }
        TimerId {
            idx,
            gen: self.entries[idx as usize].gen,
        }
    }

    /// Cancel an armed timer. Returns `true` if it was still pending (and
    /// is now guaranteed not to fire); stale or repeated cancels are no-ops.
    pub fn cancel(&mut self, id: TimerId) -> bool {
        match self.entries.get_mut(id.idx as usize) {
            Some(e) if e.gen == id.gen && e.item.is_some() => {
                e.item = None;
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    /// Retire a slab entry whose slot (or heap) membership has been
    /// dropped.
    fn retire(&mut self, idx: u32) {
        let e = &mut self.entries[idx as usize];
        e.gen = e.gen.wrapping_add(1);
        self.free.push(idx);
    }

    /// Fire every timer due at or before `now`, in exact `(deadline, arm
    /// order)` order, invoking `f(deadline, item)` for each.
    pub fn advance(&mut self, now: SimTime, mut f: impl FnMut(SimTime, T)) {
        let target = self.tick_of(now);
        let n = self.slots.len() as u64;
        let mut due = std::mem::take(&mut self.due);
        if target >= self.cursor {
            // A long sleep can move the cursor past a full rotation; each
            // slot only needs one scan.
            let steps = ((target - self.cursor) + 1).min(n);
            for s in 0..steps {
                let slot = ((self.cursor + s) % n) as usize;
                let mut kept = 0;
                for k in 0..self.slots[slot].len() {
                    let idx = self.slots[slot][k];
                    let e = &self.entries[idx as usize];
                    if e.item.is_none() {
                        // Cancelled: recycle, drop from the slot.
                        self.retire(idx);
                    } else if e.at <= now {
                        due.push((e.at, e.seq, idx));
                    } else {
                        // A later rotation's entry: keep it in place.
                        self.slots[slot][kept] = idx;
                        kept += 1;
                    }
                }
                self.slots[slot].truncate(kept);
            }
            self.cursor = target + 1;
        }
        while let Some(&Reverse((at_us, seq, idx))) = self.overflow.peek() {
            if at_us > now.as_micros() {
                break;
            }
            self.overflow.pop();
            let e = &self.entries[idx as usize];
            if e.item.is_none() || e.seq != seq {
                self.retire(idx);
            } else {
                due.push((SimTime::from_micros(at_us), seq, idx));
            }
        }
        due.sort_unstable_by_key(|&(at, seq, _)| (at, seq));
        for (at, _, idx) in due.drain(..) {
            let item = self.entries[idx as usize].item.take();
            self.retire(idx);
            self.live -= 1;
            if let Some(item) = item {
                f(at, item);
            }
        }
        self.due = due;
    }

    /// The earliest pending deadline, if any — what bounds a worker's park.
    pub fn next_deadline(&self) -> Option<SimTime> {
        let mut min: Option<SimTime> = None;
        for e in &self.entries {
            if e.item.is_some() && min.is_none_or(|m| e.at < m) {
                min = Some(e.at);
            }
        }
        min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimTime {
        SimTime::from_micros(v)
    }

    #[test]
    fn fires_in_exact_deadline_order() {
        let mut wheel: TimerWheel<u32> = TimerWheel::new(8, 100);
        // Insert out of order, spanning multiple slots and a same-deadline
        // tie (broken by arm order).
        wheel.insert(us(750), 3);
        wheel.insert(us(120), 0);
        wheel.insert(us(500), 1);
        wheel.insert(us(500), 2);
        let mut fired = Vec::new();
        wheel.advance(us(1000), |at, v| fired.push((at.as_micros(), v)));
        assert_eq!(fired, vec![(120, 0), (500, 1), (500, 2), (750, 3)]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn partial_advance_leaves_future_timers_armed() {
        let mut wheel: TimerWheel<&str> = TimerWheel::new(4, 100);
        wheel.insert(us(150), "early");
        wheel.insert(us(350), "late");
        let mut fired = Vec::new();
        wheel.advance(us(200), |_, v| fired.push(v));
        assert_eq!(fired, vec!["early"]);
        assert_eq!(wheel.len(), 1);
        assert_eq!(wheel.next_deadline(), Some(us(350)));
        wheel.advance(us(400), |_, v| fired.push(v));
        assert_eq!(fired, vec!["early", "late"]);
    }

    #[test]
    fn same_slot_different_rotations_fire_at_their_own_deadlines() {
        // Slot hash collision: 100us and 500us share slot 1 on a 4x100us
        // wheel. The first rotation must fire only the first.
        let mut wheel: TimerWheel<u32> = TimerWheel::new(4, 100);
        wheel.insert(us(100), 1);
        wheel.insert(us(500), 5);
        let mut fired = Vec::new();
        wheel.advance(us(250), |_, v| fired.push(v));
        assert_eq!(fired, vec![1]);
        wheel.advance(us(600), |_, v| fired.push(v));
        assert_eq!(fired, vec![1, 5]);
    }

    #[test]
    fn cancellation_prevents_fire_and_recycles_the_slab() {
        let mut wheel: TimerWheel<u32> = TimerWheel::new(8, 100);
        let keep = wheel.insert(us(300), 1);
        let kill = wheel.insert(us(200), 2);
        assert!(wheel.cancel(kill), "pending timer cancels");
        assert!(!wheel.cancel(kill), "second cancel is a no-op");
        assert_eq!(wheel.len(), 1);
        let mut fired = Vec::new();
        wheel.advance(us(1000), |_, v| fired.push(v));
        assert_eq!(fired, vec![1], "cancelled timer never fires");
        assert!(!wheel.cancel(keep), "fired timer's id is stale");
        // The freed slab entry is reused with a bumped generation: the old
        // id must not cancel the new timer.
        let renew = wheel.insert(us(400), 3);
        assert!(!wheel.cancel(kill), "stale id cannot touch a reused entry");
        assert!(wheel.cancel(renew));
    }

    #[test]
    fn overflow_deadlines_past_the_horizon_still_fire() {
        // 4 slots x 100us = 400us horizon; 5ms lands in the overflow heap.
        let mut wheel: TimerWheel<&str> = TimerWheel::new(4, 100);
        wheel.insert(us(5_000), "backstop");
        wheel.insert(us(50), "quick");
        assert_eq!(wheel.next_deadline(), Some(us(50)));
        let mut fired = Vec::new();
        wheel.advance(us(300), |_, v| fired.push(v));
        assert_eq!(fired, vec!["quick"]);
        assert_eq!(wheel.next_deadline(), Some(us(5_000)));
        wheel.advance(us(6_000), |_, v| fired.push(v));
        assert_eq!(fired, vec!["quick", "backstop"]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn re_arm_after_fire_keeps_exact_ordering() {
        // The closed-loop client pattern: every fire re-arms the next
        // deadline. Ordering must hold across generations of the same slab
        // entry.
        let mut wheel: TimerWheel<u64> = TimerWheel::new(8, 100);
        wheel.insert(us(100), 0);
        let mut fired = Vec::new();
        for round in 1..=5u64 {
            let mut due = Vec::new();
            wheel.advance(us(round * 100), |at, v| due.push((at, v)));
            for (at, v) in due {
                fired.push(v);
                wheel.insert(at + planet_sim::SimDuration::from_micros(100), v + 1);
            }
        }
        assert_eq!(fired, vec![0, 1, 2, 3, 4]);
        assert_eq!(wheel.len(), 1, "the re-armed tail stays pending");
    }
}
