//! The batched message plane: tuning knobs and bounded mailboxes.
//!
//! Every live node receives packets through a bounded [`MailboxSender`] /
//! [`MailboxReceiver`] pair. The bound is the backpressure mechanism of the
//! live cluster: a sender that would overflow a peer's mailbox *blocks*
//! until the peer drains (protocol traffic must never be silently lost to
//! queueing), except for client `Submit`s, which the transports *shed* —
//! bounced straight back as a timed-out `TxnDone` so the admission story
//! stays end-to-end (see [`ChannelTransport`]). Unbounded mailboxes are
//! exactly the >64-client latency collapse: queues grow without limit, and
//! every queued message ages before it is even looked at.
//!
//! [`PlaneConfig`] carries the two knobs ([`max_batch`], the mailbox
//! capacity) plus the fabric shard count, and travels from
//! `LiveClusterBuilder` / `LivePlanetBuilder` down to the node loops.
//!
//! [`max_batch`]: PlaneConfig::max_batch
//! [`ChannelTransport`]: crate::ChannelTransport

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::node::Packet;

/// A hook invoked after every successful mailbox enqueue: how the reactor
/// learns a task has traffic. Set once (before the task goes live) via
/// [`MailboxReceiver::set_waker`].
pub type Waker = Arc<dyn Fn() + Send + Sync>;

/// Tuning knobs for the batched message plane. One value configures every
/// node and the transport fabric of a cluster.
#[derive(Debug, Clone, Copy)]
pub struct PlaneConfig {
    /// Most packets a node drains (and drives) per mailbox wakeup before
    /// flushing its accumulated sends as one coalesced transport batch.
    pub max_batch: usize,
    /// Mailbox capacity. Senders of protocol traffic block when the
    /// destination is full; client `Submit`s are shed instead (bounced as a
    /// timed-out `TxnDone`). Must comfortably exceed the worst-case
    /// instantaneous fan-in of the protocol or backpressure degenerates
    /// into lock-step.
    pub mailbox_capacity: usize,
    /// Number of fabric threads the in-process [`ChannelTransport`] shards
    /// deliveries over (by destination actor, preserving per-pair FIFO).
    ///
    /// [`ChannelTransport`]: crate::ChannelTransport
    pub fabric_shards: usize,
    /// Delivery coalescing horizon of the fabric, in microseconds. When a
    /// fabric thread wakes it delivers every held message due within the
    /// next `fabric_slack_us`, not just the one whose timer fired — one
    /// futex sleep/wake cycle then covers a whole window of deliveries, and
    /// destinations receive bursts their node loop drains in one wakeup.
    /// Messages may arrive up to this much *early*; keep it well under the
    /// smallest modelled cross-site delay (per-pair FIFO is unaffected).
    /// The same horizon caps how long a reactor worker may hold a pending
    /// coalesced flush before handing it to the transport.
    pub fabric_slack_us: u64,
    /// Reactor worker threads driving the cluster's actors. `0` selects the
    /// legacy thread-per-actor runtime (one OS thread per node, pools for
    /// clients); any positive count runs every actor as a schedulable task
    /// on a sharded-run-queue reactor with work stealing. Defaults to the
    /// host's available parallelism.
    pub workers: usize,
}

impl Default for PlaneConfig {
    fn default() -> Self {
        PlaneConfig {
            max_batch: 64,
            mailbox_capacity: 4096,
            // Sharding the fabric past the host's parallelism buys no
            // concurrency and costs a futex wake per extra shard on every
            // coalesced flush that spans destinations, so the default
            // tracks the core count (capped at 4 — delivery is cheap).
            fabric_shards: default_workers().min(4),
            fabric_slack_us: 200,
            workers: default_workers(),
        }
    }
}

impl PlaneConfig {
    /// The pre-batching plane, for A/B comparison in benches: one packet per
    /// wakeup, one fabric thread delivering at exact due times, a mailbox
    /// deep enough that backpressure never engages, and the thread-per-actor
    /// runtime.
    pub fn unbatched() -> Self {
        PlaneConfig {
            max_batch: 1,
            mailbox_capacity: 65_536,
            fabric_shards: 1,
            fabric_slack_us: 0,
            workers: 0,
        }
    }

    /// The thread-per-actor runtime with otherwise-default knobs: the A/B
    /// baseline the reactor is measured against.
    pub fn thread_per_actor() -> Self {
        PlaneConfig {
            workers: 0,
            ..PlaneConfig::default()
        }
    }

    /// Override the reactor worker count (`0` = thread-per-actor).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }
}

/// The host's available parallelism: the default reactor width.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Shared admission gate of one mailbox: depth and high-water tracking plus
/// the condition senders block on.
struct Gate {
    state: Mutex<GateState>,
    drained: Condvar,
}

struct GateState {
    depth: usize,
    closed: bool,
    /// Invoked (outside the gate lock) after every successful enqueue.
    waker: Option<Waker>,
}

/// A failed [`MailboxSender::try_send`].
pub enum TrySendError {
    /// The mailbox is at capacity; the packet is handed back.
    Full(Packet),
    /// The receiving node is gone; the packet is handed back.
    Closed(Packet),
}

impl std::fmt::Debug for TrySendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // `Packet` holds a boxed call closure, so only the variant is shown.
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Closed(_) => f.write_str("Closed(..)"),
        }
    }
}

/// The sending half of a bounded mailbox. Cloneable; every clone shares the
/// same capacity gate.
#[derive(Clone)]
pub struct MailboxSender {
    tx: Sender<(Instant, Packet)>,
    gate: Arc<Gate>,
    // Depth watermark for stats; the gate mutex carries the real
    // synchronization. check:allow(atomics)
    high_water: Arc<AtomicUsize>,
    capacity: usize,
}

impl MailboxSender {
    /// Enqueue `packet`, blocking while the mailbox is full (backpressure).
    /// Returns the packet if the receiving node is gone.
    // The Err variant hands the undelivered packet back (as std's
    // SendError does); its size is the price of not dropping messages.
    #[allow(clippy::result_large_err)]
    pub fn send(&self, packet: Packet) -> Result<(), Packet> {
        let waker = {
            let mut state = self.gate.state.lock().expect("lock poisoned");
            loop {
                if state.closed {
                    return Err(packet);
                }
                if state.depth < self.capacity {
                    break;
                }
                state = self.gate.drained.wait(state).expect("lock poisoned");
            }
            state.depth += 1;
            self.high_water.fetch_max(state.depth, Ordering::Relaxed);
            state.waker.clone()
        };
        self.tx.send((Instant::now(), packet)).map_err(|e| {
            self.on_send_failed();
            e.0 .1
        })?;
        if let Some(waker) = waker {
            waker();
        }
        Ok(())
    }

    /// Enqueue `packet` without blocking; a full mailbox hands the packet
    /// back so the caller can shed it.
    #[allow(clippy::result_large_err)]
    pub fn try_send(&self, packet: Packet) -> Result<(), TrySendError> {
        let waker = {
            let mut state = self.gate.state.lock().expect("lock poisoned");
            if state.closed {
                return Err(TrySendError::Closed(packet));
            }
            if state.depth >= self.capacity {
                return Err(TrySendError::Full(packet));
            }
            state.depth += 1;
            self.high_water.fetch_max(state.depth, Ordering::Relaxed);
            state.waker.clone()
        };
        self.tx.send((Instant::now(), packet)).map_err(|e| {
            self.on_send_failed();
            TrySendError::Closed(e.0 .1)
        })?;
        if let Some(waker) = waker {
            waker();
        }
        Ok(())
    }

    /// Undo the depth reservation after a failed channel send (receiver
    /// dropped between the gate check and the send).
    fn on_send_failed(&self) {
        let mut state = self.gate.state.lock().expect("lock poisoned");
        state.depth -= 1;
        state.closed = true;
        self.gate.drained.notify_all();
    }
}

/// The receiving half of a bounded mailbox, owned by the node loop. Dropping
/// it marks the mailbox closed and unblocks every waiting sender.
pub struct MailboxReceiver {
    rx: Receiver<(Instant, Packet)>,
    gate: Arc<Gate>,
    high_water: Arc<AtomicUsize>, // check:allow(atomics)
}

impl MailboxReceiver {
    /// Receive one packet, waiting up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Packet, RecvTimeoutError> {
        self.recv_timeout_stamped(timeout).map(|(p, _)| p)
    }

    /// Receive one packet if one is already queued.
    pub fn try_recv(&self) -> Result<Packet, TryRecvError> {
        self.try_recv_stamped().map(|(p, _)| p)
    }

    /// [`recv_timeout`](Self::recv_timeout), also yielding when the packet
    /// was enqueued — the base of the `span.queue` measurement.
    pub fn recv_timeout_stamped(
        &self,
        timeout: Duration,
    ) -> Result<(Packet, Instant), RecvTimeoutError> {
        let (at, packet) = self.rx.recv_timeout(timeout)?;
        self.note_dequeue();
        Ok((packet, at))
    }

    /// [`try_recv`](Self::try_recv), also yielding the enqueue instant.
    pub fn try_recv_stamped(&self) -> Result<(Packet, Instant), TryRecvError> {
        let (at, packet) = self.rx.try_recv()?;
        self.note_dequeue();
        Ok((packet, at))
    }

    /// Install the wake hook invoked after every successful enqueue. The
    /// reactor sets this before a task goes live (and schedules the task
    /// once right after), so no arrival can slip through unobserved.
    pub fn set_waker(&self, waker: Waker) {
        self.gate.state.lock().expect("lock poisoned").waker = Some(waker);
    }

    /// Packets currently queued (including any a blocked sender is about to
    /// enqueue).
    pub fn depth(&self) -> usize {
        self.gate.state.lock().expect("lock poisoned").depth
    }

    /// Deepest the mailbox has ever been.
    pub fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }

    fn note_dequeue(&self) {
        let mut state = self.gate.state.lock().expect("lock poisoned");
        state.depth -= 1;
        self.gate.drained.notify_one();
    }
}

impl Drop for MailboxReceiver {
    fn drop(&mut self) {
        let mut state = self.gate.state.lock().expect("lock poisoned");
        state.closed = true;
        self.gate.drained.notify_all();
    }
}

/// Create a bounded mailbox holding at most `capacity` packets.
pub fn mailbox(capacity: usize) -> (MailboxSender, MailboxReceiver) {
    assert!(capacity > 0, "mailbox capacity must be positive");
    let (tx, rx) = channel();
    let gate = Arc::new(Gate {
        state: Mutex::new(GateState {
            depth: 0,
            closed: false,
            waker: None,
        }),
        drained: Condvar::new(),
    });
    let high_water = Arc::new(AtomicUsize::new(0));
    (
        MailboxSender {
            tx,
            gate: gate.clone(),
            high_water: high_water.clone(),
            capacity,
        },
        MailboxReceiver {
            rx,
            gate,
            high_water,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use planet_mdcc::Msg;
    use std::time::Instant;

    fn packet(tag: u64) -> Packet {
        Packet::Env(crate::transport::Envelope {
            from: planet_sim::ActorId(0),
            to: planet_sim::ActorId(1),
            msg: Msg::ClientTimer { kind: 0, tag },
        })
    }

    #[test]
    fn try_send_sheds_at_capacity() {
        let (tx, rx) = mailbox(2);
        tx.try_send(packet(0)).expect("first fits");
        tx.try_send(packet(1)).expect("second fits");
        assert!(matches!(tx.try_send(packet(2)), Err(TrySendError::Full(_))));
        assert_eq!(rx.depth(), 2);
        assert_eq!(rx.high_water(), 2);
        rx.try_recv().expect("drains");
        tx.try_send(packet(3)).expect("space freed");
    }

    #[test]
    fn blocking_send_waits_for_drain() {
        let (tx, rx) = mailbox(1);
        assert!(tx.send(packet(0)).is_ok());
        let t = std::thread::spawn(move || {
            let started = Instant::now();
            assert!(tx.send(packet(1)).is_ok(), "eventually fits");
            started.elapsed()
        });
        std::thread::sleep(Duration::from_millis(50));
        rx.recv_timeout(Duration::from_secs(1)).expect("first");
        let blocked_for = t.join().expect("sender thread");
        assert!(
            blocked_for >= Duration::from_millis(40),
            "sender should have blocked, only waited {blocked_for:?}"
        );
        rx.recv_timeout(Duration::from_secs(1)).expect("second");
    }

    #[test]
    fn dropping_receiver_unblocks_senders() {
        let (tx, rx) = mailbox(1);
        assert!(tx.send(packet(0)).is_ok());
        #[allow(clippy::result_large_err)]
        let t = std::thread::spawn(move || tx.send(packet(1)));
        std::thread::sleep(Duration::from_millis(50));
        drop(rx);
        assert!(t.join().expect("sender thread").is_err(), "send errors out");
    }
}
