//! `planetd` — one live PLANET server process.
//!
//! Hosts one site's replica and coordinator on their own threads, speaking
//! the length-prefixed wire format over TCP. Every `planetd` in a
//! deployment is started with the same `--addrs` list (the topology) and
//! its own `--site` index:
//!
//! ```text
//! planetd --site 0 --addrs 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002
//! planetd --site 1 --addrs 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002
//! planetd --site 2 --addrs 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002
//! ```
//!
//! Drive it with `planet-load`. Actor ids follow the cluster convention:
//! replica shard `s` of site `i` is `s*n + i` and coordinator `shards*n + i`,
//! all living at `addrs[i]`. Every process must be started with the same
//! `--shards` (defaults to `min(4, cores)`) or routing ids disagree.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use planet_cluster::{mailbox, spawn_node, Clock, PlaneConfig, Reactor, TcpTransport, Transport};
use planet_mdcc::{ClusterConfig, CoordinatorActor, FileSink, Msg, Protocol, ReplicaActor, Trace};
use planet_sim::{Actor, ActorId, SiteId};

struct Args {
    site: usize,
    addrs: Vec<SocketAddr>,
    protocol: Protocol,
    shards: usize,
    workers: usize,
    run_secs: Option<u64>,
    trace: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: planetd --site <i> --addrs <a0,a1,...> [--protocol fast|classic|twopc] [--shards <s>] [--workers <w>] [--run-secs <s>] [--trace <path>]\n\
         \x20 --workers: reactor worker threads driving this site's actors\n\
         \x20            (default: host parallelism; 0 = thread per actor)\n\
         \x20 --trace: record this site's reads/commits/applies for planet-audit\n\
         \x20          (flushed on shutdown; use --run-secs for complete traces)"
    );
    std::process::exit(2);
}

/// Default shard count: one per core up to 4 (the point of diminishing
/// returns for a single site's validation work).
fn default_shards() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get().min(4))
        .unwrap_or(1)
}

fn parse_args() -> Args {
    let mut site = None;
    let mut addrs = Vec::new();
    let mut protocol = Protocol::Fast;
    let mut shards = default_shards();
    let mut workers = planet_cluster::default_workers();
    let mut run_secs = None;
    let mut trace = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--site" => site = args.next().and_then(|v| v.parse().ok()),
            "--addrs" => {
                let Some(list) = args.next() else { usage() };
                addrs = list
                    .split(',')
                    .map(|a| a.parse().unwrap_or_else(|_| usage()))
                    .collect();
            }
            "--protocol" => {
                protocol = match args.next().as_deref() {
                    Some("fast") => Protocol::Fast,
                    Some("classic") => Protocol::Classic,
                    Some("twopc") => Protocol::TwoPc,
                    _ => usage(),
                }
            }
            "--shards" => {
                shards = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&s| s >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--run-secs" => run_secs = args.next().and_then(|v| v.parse().ok()),
            "--trace" => match args.next() {
                Some(p) => trace = Some(p),
                None => usage(),
            },
            _ => usage(),
        }
    }
    let Some(site) = site else { usage() };
    if addrs.is_empty() || site >= addrs.len() {
        usage();
    }
    Args {
        site,
        addrs,
        protocol,
        shards,
        workers,
        run_secs,
        trace,
    }
}

fn main() {
    let args = parse_args();
    let n = args.addrs.len();
    let shards = args.shards;
    let mut config = ClusterConfig::new(n, args.protocol).with_shards(shards);
    let trace_sink = match &args.trace {
        Some(path) => match FileSink::create(std::path::Path::new(path)) {
            Ok(sink) => {
                let sink = Arc::new(sink);
                config.trace = Trace::to(sink.clone());
                Some(sink)
            }
            Err(e) => {
                eprintln!("planetd: cannot create trace file {path}: {e}");
                std::process::exit(1);
            }
        },
        None => None,
    };
    let clock = Clock::new();
    let replica_ids: Vec<ActorId> = (0..shards * n).map(|i| ActorId(i as u32)).collect();

    let transport = TcpTransport::new();
    for (site, addr) in args.addrs.iter().enumerate() {
        for shard in 0..shards {
            transport.add_route((shard * n + site) as u32, *addr);
        }
        transport.add_route((shards * n + site) as u32, *addr);
    }

    // This site's actors: one replica per shard (each its own thread, with
    // the shard's cross-site replication group as peers), plus the
    // coordinator.
    let mut local: Vec<(u32, Box<dyn Actor<Msg>>)> = Vec::new();
    for shard in 0..shards {
        let peers: Vec<ActorId> = replica_ids[shard * n..(shard + 1) * n].to_vec();
        let replica: Box<dyn Actor<Msg>> =
            Box::new(ReplicaActor::new(config.clone(), peers, shard));
        local.push(((shard * n + args.site) as u32, replica));
    }
    let coordinator: Box<dyn Actor<Msg>> = Box::new(CoordinatorActor::new(
        config.clone(),
        replica_ids,
        SiteId(args.site as u8),
    ));
    local.push(((shards * n + args.site) as u32, coordinator));
    let plane = PlaneConfig::default().with_workers(args.workers);
    let seed = 0x5EED ^ args.site as u64;
    // Reactor mode (workers > 0) multiplexes every actor as a task over the
    // worker pool; workers == 0 keeps the thread-per-actor runtime.
    let reactor = (plane.workers > 0).then(|| Reactor::new(clock, plane, seed));
    let mut nodes = Vec::new();
    for (id, actor) in local {
        let (tx, rx) = mailbox(plane.mailbox_capacity);
        transport.host(id, tx.clone());
        nodes.push(match &reactor {
            Some(reactor) => reactor.spawn(
                ActorId(id),
                SiteId(args.site as u8),
                actor,
                tx,
                rx,
                transport.clone() as Arc<dyn Transport>,
            ),
            None => spawn_node(
                ActorId(id),
                SiteId(args.site as u8),
                actor,
                tx,
                rx,
                transport.clone() as Arc<dyn Transport>,
                clock,
                seed,
                plane,
            ),
        });
    }

    let bound = match transport.listen(args.addrs[args.site]) {
        Ok(addr) => addr,
        Err(e) => {
            eprintln!("planetd: cannot bind {}: {e}", args.addrs[args.site]);
            std::process::exit(1);
        }
    };
    println!(
        "planetd: site {} of {n} serving {shards} replica shard(s) and coordinator {} on {bound} ({:?}, {})",
        args.site,
        shards * n + args.site,
        args.protocol,
        match &reactor {
            Some(r) => format!("reactor x{}", r.workers()),
            None => "thread-per-actor".to_string(),
        }
    );

    match args.run_secs {
        Some(secs) => std::thread::sleep(Duration::from_secs(secs)),
        None => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
    }
    println!("planetd: run window elapsed, shutting down");
    for node in nodes {
        let (_, metrics) = node.stop_and_join();
        for (name, value) in metrics.counters() {
            println!("planetd: {name} = {value}");
        }
        for (name, hist) in metrics.histograms() {
            if let (Some(mean), Some(max)) = (hist.mean(), hist.max()) {
                println!("planetd: {name} mean {mean:.1}, max {max}");
            }
        }
    }
    if let Some(reactor) = &reactor {
        println!("planetd: {} task steals", reactor.steals());
        reactor.shutdown();
    }
    let (flushes, bytes) = transport.io_stats();
    if flushes > 0 {
        println!(
            "planetd: {flushes} socket flushes, {bytes} bytes ({:.1} bytes/flush), {} submits shed",
            bytes as f64 / flushes as f64,
            transport.shed(),
        );
    }
    if let Some(sink) = &trace_sink {
        if let Err(e) = sink.flush() {
            eprintln!("planetd: trace flush failed: {e}");
        }
    }
    transport.stop();
}
