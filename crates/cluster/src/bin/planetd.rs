//! `planetd` — one live PLANET server process.
//!
//! Hosts one site's replica and coordinator on their own threads, speaking
//! the length-prefixed wire format over TCP. Every `planetd` in a
//! deployment is started with the same `--addrs` list (the topology) and
//! its own `--site` index:
//!
//! ```text
//! planetd --site 0 --addrs 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002
//! planetd --site 1 --addrs 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002
//! planetd --site 2 --addrs 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002
//! ```
//!
//! Drive it with `planet-load`. Actor ids follow the cluster convention:
//! replica `i` and coordinator `n + i` live at `addrs[i]`.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use planet_cluster::{mailbox, spawn_node, Clock, PlaneConfig, TcpTransport, Transport};
use planet_mdcc::{ClusterConfig, CoordinatorActor, Msg, Protocol, ReplicaActor};
use planet_sim::{Actor, ActorId, SiteId};

struct Args {
    site: usize,
    addrs: Vec<SocketAddr>,
    protocol: Protocol,
    run_secs: Option<u64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: planetd --site <i> --addrs <a0,a1,...> [--protocol fast|classic|twopc] [--run-secs <s>]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut site = None;
    let mut addrs = Vec::new();
    let mut protocol = Protocol::Fast;
    let mut run_secs = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--site" => site = args.next().and_then(|v| v.parse().ok()),
            "--addrs" => {
                let Some(list) = args.next() else { usage() };
                addrs = list
                    .split(',')
                    .map(|a| a.parse().unwrap_or_else(|_| usage()))
                    .collect();
            }
            "--protocol" => {
                protocol = match args.next().as_deref() {
                    Some("fast") => Protocol::Fast,
                    Some("classic") => Protocol::Classic,
                    Some("twopc") => Protocol::TwoPc,
                    _ => usage(),
                }
            }
            "--run-secs" => run_secs = args.next().and_then(|v| v.parse().ok()),
            _ => usage(),
        }
    }
    let Some(site) = site else { usage() };
    if addrs.is_empty() || site >= addrs.len() {
        usage();
    }
    Args {
        site,
        addrs,
        protocol,
        run_secs,
    }
}

fn main() {
    let args = parse_args();
    let n = args.addrs.len();
    let config = ClusterConfig::new(n, args.protocol);
    let clock = Clock::new();
    let replica_ids: Vec<ActorId> = (0..n).map(|i| ActorId(i as u32)).collect();

    let transport = TcpTransport::new();
    for (site, addr) in args.addrs.iter().enumerate() {
        transport.add_route(site as u32, *addr);
        transport.add_route((n + site) as u32, *addr);
    }

    let replica: Box<dyn Actor<Msg>> =
        Box::new(ReplicaActor::new(config.clone(), replica_ids.clone()));
    let coordinator: Box<dyn Actor<Msg>> = Box::new(CoordinatorActor::new(
        config.clone(),
        replica_ids,
        SiteId(args.site as u8),
    ));
    let plane = PlaneConfig::default();
    let mut nodes = Vec::new();
    for (id, actor) in [
        (args.site as u32, replica),
        ((n + args.site) as u32, coordinator),
    ] {
        let (tx, rx) = mailbox(plane.mailbox_capacity);
        transport.host(id, tx.clone());
        nodes.push(spawn_node(
            ActorId(id),
            SiteId(args.site as u8),
            actor,
            tx,
            rx,
            transport.clone() as Arc<dyn Transport>,
            clock,
            0x5EED ^ args.site as u64,
            plane,
        ));
    }

    let bound = match transport.listen(args.addrs[args.site]) {
        Ok(addr) => addr,
        Err(e) => {
            eprintln!("planetd: cannot bind {}: {e}", args.addrs[args.site]);
            std::process::exit(1);
        }
    };
    println!(
        "planetd: site {} of {n} serving replica {} and coordinator {} on {bound} ({:?})",
        args.site,
        args.site,
        n + args.site,
        args.protocol
    );

    match args.run_secs {
        Some(secs) => std::thread::sleep(Duration::from_secs(secs)),
        None => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
    }
    println!("planetd: run window elapsed, shutting down");
    for node in nodes {
        let (_, metrics) = node.stop_and_join();
        for (name, value) in metrics.counters() {
            println!("planetd: {name} = {value}");
        }
        for (name, hist) in metrics.histograms() {
            if let (Some(mean), Some(max)) = (hist.mean(), hist.max()) {
                println!("planetd: {name} mean {mean:.1}, max {max}");
            }
        }
    }
    let (flushes, bytes) = transport.io_stats();
    if flushes > 0 {
        println!(
            "planetd: {flushes} socket flushes, {bytes} bytes ({:.1} bytes/flush), {} submits shed",
            bytes as f64 / flushes as f64,
            transport.shed(),
        );
    }
    transport.stop();
}
