//! A closed-loop load-generator client for live clusters.
//!
//! One [`LoadClient`] models one virtual user: it keeps exactly one
//! transaction in flight, submitting the next the moment the previous one
//! finishes. Completions stream to the driver over a channel, so the driver
//! (the `throughput` experiment, or the `planet-load` binary) can compute
//! ops/sec and latency percentiles over a measurement window without ever
//! touching the actor's thread.

use std::collections::HashMap;
use std::sync::mpsc::Sender;

use planet_mdcc::{Msg, Outcome, Trace, TraceEvent, TxnSpec};
use planet_plan::{PlanId, PlanParam, TxnProgram};
use planet_sim::{Actor, ActorId, Context, DetRng, SimDuration, SimTime};
use planet_storage::{Key, WriteOp};

/// `ClientTimer.kind` for the per-transaction resubmit deadline.
pub const TIMER_RESUBMIT: u32 = 1;

/// `ClientTimer.kind` for the plan-registration retry deadline.
pub const TIMER_REGISTER: u32 = 2;

/// Default per-transaction deadline before a reply is written off as lost.
/// Generous: an in-flight transaction on a healthy cluster finishes in
/// milliseconds, so this only fires when the reply (or the submit itself)
/// was genuinely dropped — e.g. shed by a full mailbox.
pub const DEFAULT_RESUBMIT_TIMEOUT: SimDuration = SimDuration::from_secs(5);

/// A pluggable transaction source for [`LoadClient`]: called with the
/// client's deterministic RNG, returns the next spec to submit.
pub type SpecSource = Box<dyn FnMut(&mut DetRng) -> TxnSpec + Send>;

/// The compiled-path twin of [`SpecSource`]: returns the next execution's
/// parameters for the client's registered plan.
pub type PlanSource = Box<dyn FnMut(&mut DetRng) -> Vec<PlanParam> + Send>;

/// Compiled-path state for a [`LoadClient`] driving `SubmitPlan` instead of
/// `Submit`: the program registers once at startup and the closed loop
/// starts when `PlanReady` lands.
struct PlanMode {
    plan: PlanId,
    program: TxnProgram,
    params: PlanSource,
    ready: bool,
}

/// One finished transaction, as reported to the driver.
#[derive(Debug, Clone, Copy)]
pub struct LoadRecord {
    /// The submitting client.
    pub client: u32,
    /// Client-local transaction tag.
    pub tag: u64,
    /// Commit / abort / timeout.
    pub outcome: Outcome,
    /// When the client sent the submit (cluster clock).
    pub submitted: SimTime,
    /// When the outcome arrived back (cluster clock).
    pub decided: SimTime,
    /// Server-side hold time the coordinator reported (its submit-to-decide
    /// interval, in µs); 0 when the reply never arrived (client timeout).
    pub server_us: u64,
    /// Of `server_us`, the µs the coordinator spent waiting on replica
    /// votes (proposal dispatch to decision).
    pub quorum_wait_us: u64,
}

impl LoadRecord {
    /// Submit-to-decision latency in microseconds.
    pub fn latency_us(&self) -> u64 {
        self.decided.since(self.submitted).as_micros()
    }

    /// Microseconds the transaction spent outside the coordinator: total
    /// client-observed latency minus the coordinator's reported hold time —
    /// the wire, the fabric's coalescing slack, and both mailboxes.
    pub fn network_us(&self) -> u64 {
        self.latency_us().saturating_sub(self.server_us)
    }
}

/// The closed-loop client actor.
pub struct LoadClient {
    coordinator: ActorId,
    keys: Vec<Key>,
    results: Sender<LoadRecord>,
    inflight: HashMap<u64, SimTime>,
    next_tag: u64,
    submitted: u64,
    /// Overrides the default single-key-increment mix when set.
    spec_source: Option<SpecSource>,
    /// Drives the compiled `SubmitPlan` path when set (wins over
    /// `spec_source`).
    plan_mode: Option<PlanMode>,
    /// Per-transaction deadline: if no `TxnDone` arrives in time, the
    /// transaction is reported as timed out and the loop moves on. Without
    /// it, one shed submit or lost reply wedges the closed loop forever.
    resubmit_timeout: SimDuration,
    /// Client-side trace: records the `Finish` the coordinator reported,
    /// stamped with the client's clock. Complements the server-side trace
    /// (which has the reads and commits); off by default.
    trace: Trace,
}

impl LoadClient {
    /// A client submitting commutative single-key increments to `coordinator`,
    /// choosing keys uniformly from `keys`, reporting completions on
    /// `results`.
    pub fn new(coordinator: ActorId, keys: Vec<Key>, results: Sender<LoadRecord>) -> Self {
        assert!(!keys.is_empty(), "load client needs at least one key");
        LoadClient {
            coordinator,
            keys,
            results,
            inflight: HashMap::new(),
            next_tag: 0,
            submitted: 0,
            spec_source: None,
            plan_mode: None,
            resubmit_timeout: DEFAULT_RESUBMIT_TIMEOUT,
            trace: Trace::off(),
        }
    }

    /// Override the per-transaction resubmit deadline.
    pub fn with_resubmit_timeout(mut self, timeout: SimDuration) -> Self {
        self.resubmit_timeout = timeout;
        self
    }

    /// Replace the default increment mix with a custom transaction source
    /// (e.g. one of `planet-workload`'s anomaly generators).
    pub fn with_spec_source(mut self, source: SpecSource) -> Self {
        self.spec_source = Some(source);
        self
    }

    /// Drive the compiled path: register `program` under `plan` at startup,
    /// then submit `(plan, params)` executions instead of full specs.
    pub fn with_plan(mut self, plan: PlanId, program: TxnProgram, params: PlanSource) -> Self {
        self.plan_mode = Some(PlanMode {
            plan,
            program,
            params,
            ready: false,
        });
        self
    }

    /// Record client-observed transaction outcomes to `trace`.
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.trace = trace;
        self
    }

    /// Transactions submitted so far.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Send (or resend) the plan registration and arm its retry timer.
    fn register_plan(&mut self, ctx: &mut Context<'_, Msg>) {
        if let Some(mode) = &self.plan_mode {
            let me = ctx.self_id();
            ctx.send(
                self.coordinator,
                Msg::RegisterPlan {
                    plan: mode.plan,
                    program: mode.program.clone(),
                    reply_to: me,
                },
            );
            ctx.schedule(
                self.resubmit_timeout,
                Msg::ClientTimer {
                    kind: TIMER_REGISTER,
                    tag: 0,
                },
            );
        }
    }

    fn submit_next(&mut self, ctx: &mut Context<'_, Msg>) {
        let tag = self.next_tag;
        self.next_tag += 1;
        self.submitted += 1;
        self.inflight.insert(tag, ctx.now());
        let me = ctx.self_id();
        match &mut self.plan_mode {
            Some(mode) => {
                let params = (mode.params)(ctx.rng());
                ctx.send(
                    self.coordinator,
                    Msg::SubmitPlan {
                        plan: mode.plan,
                        params,
                        reply_to: me,
                        tag,
                    },
                );
            }
            None => {
                let spec = match &mut self.spec_source {
                    Some(source) => source(ctx.rng()),
                    None => {
                        let key = self.keys[ctx.rng().index(self.keys.len())].clone();
                        TxnSpec::write_one(key, WriteOp::add(1))
                    }
                };
                ctx.send(
                    self.coordinator,
                    Msg::Submit {
                        spec,
                        reply_to: me,
                        tag,
                    },
                );
            }
        }
        ctx.schedule(
            self.resubmit_timeout,
            Msg::ClientTimer {
                kind: TIMER_RESUBMIT,
                tag,
            },
        );
    }

    /// Report one finished transaction to the driver, attributing its
    /// latency: the coordinator's reported spans pass through, and the
    /// remainder — client-observed latency minus server hold time — is
    /// recorded as this client's `span.network_us`.
    fn report(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        tag: u64,
        outcome: Outcome,
        submitted: SimTime,
        server_us: u64,
        quorum_wait_us: u64,
    ) {
        let record = LoadRecord {
            client: ctx.self_id().0,
            tag,
            outcome,
            submitted,
            decided: ctx.now(),
            server_us,
            quorum_wait_us,
        };
        if server_us > 0 || outcome != Outcome::TimedOut {
            ctx.metrics()
                .histogram("span.network_us")
                .record(record.network_us());
        }
        let _ = self.results.send(record);
    }
}

impl Actor<Msg> for LoadClient {
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        if self.plan_mode.is_some() {
            self.register_plan(ctx);
        } else {
            self.submit_next(ctx);
        }
    }

    fn on_message(&mut self, _from: ActorId, msg: Msg, ctx: &mut Context<'_, Msg>) {
        match msg {
            Msg::TxnDone {
                tag,
                txn,
                outcome,
                stats,
            } => {
                if self.trace.is_on() {
                    self.trace.emit(TraceEvent::Finish {
                        txn,
                        outcome,
                        at: ctx.now(),
                    });
                }
                // Only the first resolution of a tag (reply or deadline)
                // reports and refills the loop; a straggler reply landing
                // after its deadline already moved on is dropped here.
                if let Some(submitted) = self.inflight.remove(&tag) {
                    self.report(
                        ctx,
                        tag,
                        outcome,
                        submitted,
                        stats.server_us(),
                        stats.quorum_wait_us(),
                    );
                    self.submit_next(ctx);
                }
            }
            Msg::PlanReady { plan } => {
                if let Some(mode) = &mut self.plan_mode {
                    if plan == mode.plan && !mode.ready {
                        mode.ready = true;
                        self.submit_next(ctx);
                    }
                }
            }
            Msg::ClientTimer {
                kind: TIMER_RESUBMIT,
                tag,
            } => {
                if let Some(submitted) = self.inflight.remove(&tag) {
                    self.report(ctx, tag, Outcome::TimedOut, submitted, 0, 0);
                    self.submit_next(ctx);
                }
            }
            // The registration (or its ack) was lost: try again. Once
            // `PlanReady` lands this timer becomes a no-op (guard is false).
            Msg::ClientTimer {
                kind: TIMER_REGISTER,
                ..
            } if self.plan_mode.as_ref().is_some_and(|m| !m.ready) => {
                self.register_plan(ctx);
            }
            _ => {}
        }
    }
}
