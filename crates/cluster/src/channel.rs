//! In-process transport: mailboxes wired through a delay-injecting fabric.
//!
//! [`ChannelTransport`] routes [`Envelope`]s between node mailboxes in one
//! process. With no network model attached it delivers immediately (useful
//! for tests); with a [`NetworkModel`] every send passes through a *fabric*
//! thread that samples the exact same delay/loss/partition model the
//! deterministic simulator uses — base-delay matrix, log-normal jitter,
//! heavy tails, scheduled spikes and partitions — and holds the message
//! until its wall-clock delivery time. One configuration therefore shapes
//! both worlds: a `NetworkModel` built for a simulation drops into a live
//! cluster unchanged, with [`SimTime`] re-read as microseconds since cluster
//! start.
//!
//! [`SimTime`]: planet_sim::SimTime

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Mutex;
use std::thread::JoinHandle;
use std::time::Duration;

use planet_sim::{DetRng, NetworkModel, SimTime, SiteId};

use crate::node::{Clock, Packet};
use crate::transport::{Envelope, Transport};

enum FabricCmd {
    Env(Envelope),
    Stop,
}

struct HeldMsg {
    at: SimTime,
    seq: u64,
    env: Envelope,
}

impl PartialEq for HeldMsg {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for HeldMsg {}
impl PartialOrd for HeldMsg {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeldMsg {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

struct Routes {
    mailboxes: HashMap<u32, Sender<Packet>>,
    sites: HashMap<u32, SiteId>,
}

/// The in-process transport.
pub struct ChannelTransport {
    routes: Mutex<Routes>,
    clock: Clock,
    fabric_tx: Option<Sender<FabricCmd>>,
    fabric_join: Mutex<Option<JoinHandle<()>>>,
    dropped: AtomicU64,
}

impl ChannelTransport {
    /// A transport that delivers instantly (no delay model). `clock` should
    /// be the same clock the nodes run on.
    pub fn direct(clock: Clock) -> std::sync::Arc<Self> {
        std::sync::Arc::new(ChannelTransport {
            routes: Mutex::new(Routes {
                mailboxes: HashMap::new(),
                sites: HashMap::new(),
            }),
            clock,
            fabric_tx: None,
            fabric_join: Mutex::new(None),
            dropped: AtomicU64::new(0),
        })
    }

    /// A transport whose deliveries are shaped by `net`: each send is held
    /// on a fabric thread for a sampled delay (or dropped, per the model's
    /// loss and partition rules) before reaching the destination mailbox.
    /// `seed` feeds the fabric's deterministic jitter sampler.
    pub fn with_network(clock: Clock, net: NetworkModel, seed: u64) -> std::sync::Arc<Self> {
        let (tx, rx) = channel::<FabricCmd>();
        let transport = std::sync::Arc::new(ChannelTransport {
            routes: Mutex::new(Routes {
                mailboxes: HashMap::new(),
                sites: HashMap::new(),
            }),
            clock,
            fabric_tx: Some(tx),
            fabric_join: Mutex::new(None),
            dropped: AtomicU64::new(0),
        });
        let fabric = transport.clone();
        let join = std::thread::Builder::new()
            .name("planet-fabric".into())
            .spawn(move || fabric.run_fabric(rx, net, seed))
            .expect("spawn fabric thread");
        *transport.fabric_join.lock().expect("lock poisoned") = Some(join);
        transport
    }

    /// Register an actor's mailbox and site. Must happen before traffic for
    /// that actor flows; sends to unregistered actors are counted as drops.
    pub fn register(&self, id: u32, site: SiteId, mailbox: Sender<Packet>) {
        let mut routes = self.routes.lock().expect("lock poisoned");
        routes.mailboxes.insert(id, mailbox);
        routes.sites.insert(id, site);
    }

    /// Messages lost so far — to the model's loss/partition rules, or to
    /// unregistered destinations.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Stop the fabric thread, discarding messages still in flight. Called
    /// by the cluster at shutdown, after the nodes have stopped.
    pub fn stop(&self) {
        if let Some(tx) = &self.fabric_tx {
            let _ = tx.send(FabricCmd::Stop);
        }
        if let Some(join) = self.fabric_join.lock().expect("lock poisoned").take() {
            let _ = join.join();
        }
    }

    fn site_of(&self, id: u32) -> Option<SiteId> {
        self.routes
            .lock()
            .expect("lock poisoned")
            .sites
            .get(&id)
            .copied()
    }

    fn deliver(&self, env: Envelope) {
        let sender = {
            let routes = self.routes.lock().expect("lock poisoned");
            routes.mailboxes.get(&env.to.0).cloned()
        };
        match sender {
            Some(tx) => {
                if tx.send(Packet::Env(env)).is_err() {
                    // Destination node already stopped.
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
            None => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The fabric loop: hold each envelope for its sampled delay, then
    /// deliver. Per-(src, dst) delivery order is preserved the same way the
    /// engine preserves it: a message never overtakes an earlier one on the
    /// same directed pair (TCP gives this for free; the in-process fabric
    /// must enforce it).
    fn run_fabric(&self, rx: Receiver<FabricCmd>, net: NetworkModel, seed: u64) {
        let mut rng = DetRng::new(seed ^ 0xFAB0_5EED_0000_0001);
        let mut heap: BinaryHeap<Reverse<HeldMsg>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut fifo_high: HashMap<(u32, u32), SimTime> = HashMap::new();
        loop {
            // Deliver everything that is due.
            loop {
                let now = self.clock.now();
                match heap.peek() {
                    Some(Reverse(held)) if held.at <= now => {
                        let Reverse(held) = heap.pop().expect("peeked");
                        self.deliver(held.env);
                    }
                    _ => break,
                }
            }
            let wait = match heap.peek() {
                Some(Reverse(held)) => held
                    .at
                    .since(self.clock.now())
                    .to_std()
                    .min(Duration::from_millis(5)),
                None => Duration::from_millis(50),
            };
            match rx.recv_timeout(wait) {
                Ok(FabricCmd::Env(env)) => {
                    let now = self.clock.now();
                    let (src, dst) = match (self.site_of(env.from.0), self.site_of(env.to.0)) {
                        (Some(s), Some(d)) => (s, d),
                        _ => {
                            self.dropped.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                    };
                    match net.sample_delay(src, dst, now, &mut rng) {
                        None => {
                            self.dropped.fetch_add(1, Ordering::Relaxed);
                        }
                        Some(delay) => {
                            let pair = (env.from.0, env.to.0);
                            let mut at = now + delay;
                            if let Some(&high) = fifo_high.get(&pair) {
                                if at <= high {
                                    at = high + planet_sim::SimDuration::from_micros(1);
                                }
                            }
                            fifo_high.insert(pair, at);
                            heap.push(Reverse(HeldMsg { at, seq, env }));
                            seq += 1;
                        }
                    }
                }
                Ok(FabricCmd::Stop) | Err(RecvTimeoutError::Disconnected) => return,
                Err(RecvTimeoutError::Timeout) => {}
            }
        }
    }
}

impl Transport for ChannelTransport {
    fn send(&self, env: Envelope) {
        match &self.fabric_tx {
            Some(tx) => {
                if tx.send(FabricCmd::Env(env)).is_err() {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
            None => self.deliver(env),
        }
    }
}
