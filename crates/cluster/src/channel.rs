//! In-process transport: mailboxes wired through a delay-injecting fabric.
//!
//! [`ChannelTransport`] routes [`Envelope`]s between node mailboxes in one
//! process. With no network model attached it delivers immediately (useful
//! for tests); with a [`NetworkModel`] every send passes through a *fabric*
//! thread that samples the exact same delay/loss/partition model the
//! deterministic simulator uses — base-delay matrix, log-normal jitter,
//! heavy tails, scheduled spikes and partitions — and holds the message
//! until its wall-clock delivery time. One configuration therefore shapes
//! both worlds: a `NetworkModel` built for a simulation drops into a live
//! cluster unchanged, with [`SimTime`] re-read as microseconds since cluster
//! start.
//!
//! The fabric is *sharded*: deliveries are spread over
//! [`PlaneConfig::fabric_shards`] threads by destination actor, so one
//! overloaded thread is not the serialization point of the whole cluster.
//! Sharding by destination keeps per-(src, dst) FIFO intact — a directed
//! pair always lands on the same shard, whose delivery heap enforces
//! no-overtaking exactly as the single-threaded fabric did. Batches handed
//! over via [`Transport::send_many`] reach each shard as one channel send,
//! and each shard wakeup delivers every message due within the next
//! [`PlaneConfig::fabric_slack_us`] (the *coalescing horizon*) rather than
//! exactly one — messages arrive at most that much early, in exchange for
//! one sleep/wake cycle per window instead of per message.
//!
//! Backpressure and shedding: destination mailboxes are bounded
//! ([`PlaneConfig::mailbox_capacity`]). Protocol traffic *blocks* at a full
//! mailbox — loss is confined to the network model, never to queueing. A
//! client `Msg::Submit`, however, is *shed*: bounced straight back to its
//! `reply_to` as a `TxnDone { outcome: TimedOut }`, so an overdriven
//! coordinator pushes load back to clients (who count it like any other
//! timeout) instead of wedging the plane. [`ChannelTransport::shed`] counts
//! the bounces.
//!
//! [`SimTime`]: planet_sim::SimTime
//! [`PlaneConfig::fabric_shards`]: crate::plane::PlaneConfig::fabric_shards
//! [`PlaneConfig::fabric_slack_us`]: crate::plane::PlaneConfig::fabric_slack_us
//! [`PlaneConfig::mailbox_capacity`]: crate::plane::PlaneConfig::mailbox_capacity

use std::cmp::Reverse;
use std::collections::hash_map::Entry;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Mutex;
use std::thread::JoinHandle;
use std::time::Duration;

use planet_mdcc::{Msg, Outcome, TxnStats};
use planet_sim::{DetRng, NetworkModel, SimTime, SiteId};
use planet_storage::TxnId;

use crate::node::{Clock, Packet};
use crate::plane::{MailboxSender, TrySendError};
use crate::transport::{Envelope, Transport};

enum FabricCmd {
    Env(Envelope),
    Batch(Vec<Envelope>),
    Stop,
}

struct HeldMsg {
    at: SimTime,
    seq: u64,
    env: Envelope,
    /// Destination mailbox, resolved at admission so the delivery path
    /// touches no shared route lock. If the node stops before delivery the
    /// send fails on the closed gate and counts as a drop, exactly as a
    /// delivery-time lookup would have.
    tx: MailboxSender,
}

impl PartialEq for HeldMsg {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for HeldMsg {}
impl PartialOrd for HeldMsg {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeldMsg {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Route table shards: actor id → (site, mailbox). Sharded so the hot
/// delivery path never funnels every thread through one mutex.
const ROUTE_SHARDS: usize = 16;

struct RouteEntry {
    site: SiteId,
    mailbox: MailboxSender,
}

/// The in-process transport.
pub struct ChannelTransport {
    routes: Vec<Mutex<HashMap<u32, RouteEntry>>>,
    clock: Clock,
    fabric_txs: Vec<Sender<FabricCmd>>,
    fabric_joins: Mutex<Vec<JoinHandle<()>>>,
    // Loss accounting only — never synchronizes. check:allow(atomics)
    dropped: AtomicU64,
    shed: AtomicU64, // check:allow(atomics)
}

fn route_shards() -> Vec<Mutex<HashMap<u32, RouteEntry>>> {
    (0..ROUTE_SHARDS)
        .map(|_| Mutex::new(HashMap::new()))
        .collect()
}

impl ChannelTransport {
    /// A transport that delivers instantly (no delay model). `clock` should
    /// be the same clock the nodes run on.
    pub fn direct(clock: Clock) -> std::sync::Arc<Self> {
        std::sync::Arc::new(ChannelTransport {
            routes: route_shards(),
            clock,
            fabric_txs: Vec::new(),
            fabric_joins: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        })
    }

    /// A transport whose deliveries are shaped by `net`: each send is held
    /// on a fabric thread for a sampled delay (or dropped, per the model's
    /// loss and partition rules) before reaching the destination mailbox.
    /// `seed` feeds the fabric's deterministic jitter sampler. Deliveries
    /// are sharded over `shards` fabric threads by destination actor
    /// (per-(src, dst) FIFO is preserved; see the module docs).
    ///
    /// `slack_us` is the delivery coalescing horizon: each fabric wakeup
    /// delivers everything due within the next `slack_us` microseconds, so
    /// a sleep/wake cycle covers a window of messages instead of one.
    /// Messages may arrive up to `slack_us` early; pass 0 for exact-time
    /// delivery.
    pub fn with_network(
        clock: Clock,
        net: NetworkModel,
        seed: u64,
        shards: usize,
        slack_us: u64,
    ) -> std::sync::Arc<Self> {
        let shards = shards.max(1);
        let mut txs = Vec::with_capacity(shards);
        let mut rxs = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = channel::<FabricCmd>();
            txs.push(tx);
            rxs.push(rx);
        }
        let transport = std::sync::Arc::new(ChannelTransport {
            routes: route_shards(),
            clock,
            fabric_txs: txs,
            fabric_joins: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        });
        let mut joins = Vec::with_capacity(shards);
        for (shard, rx) in rxs.into_iter().enumerate() {
            let fabric = transport.clone();
            let net = net.clone();
            let join = std::thread::Builder::new()
                .name(format!("planet-fabric-{shard}"))
                .spawn(move || fabric.run_fabric(rx, net, seed ^ (shard as u64), slack_us))
                .expect("spawn fabric thread");
            joins.push(join);
        }
        *transport.fabric_joins.lock().expect("lock poisoned") = joins;
        transport
    }

    /// Register an actor's mailbox and site. Must happen before traffic for
    /// that actor flows; sends to unregistered actors are counted as drops.
    pub fn register(&self, id: u32, site: SiteId, mailbox: MailboxSender) {
        let shard = id as usize % ROUTE_SHARDS;
        self.routes[shard]
            .lock()
            .expect("lock poisoned")
            .insert(id, RouteEntry { site, mailbox });
    }

    /// Messages lost so far — to the model's loss/partition rules, to
    /// unregistered destinations, or to already-stopped nodes.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Client submits shed so far: bounced back as timed-out `TxnDone`s
    /// because the destination mailbox was full.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Stop the fabric threads, discarding messages still in flight. Called
    /// by the cluster at shutdown, after the nodes have stopped.
    pub fn stop(&self) {
        for tx in &self.fabric_txs {
            let _ = tx.send(FabricCmd::Stop);
        }
        // Take the handles out of the lock before joining: a fabric thread
        // that touches this registry on its way out would deadlock against
        // a join performed with the guard still held.
        let joins: Vec<_> = self
            .fabric_joins
            .lock()
            .expect("lock poisoned")
            .drain(..)
            .collect();
        for join in joins {
            let _ = join.join();
        }
    }

    fn mailbox_of(&self, id: u32) -> Option<MailboxSender> {
        let shard = id as usize % ROUTE_SHARDS;
        self.routes[shard]
            .lock()
            .expect("lock poisoned")
            .get(&id)
            .map(|entry| entry.mailbox.clone())
    }

    /// Resolve a route through a fabric-thread-local cache, falling back to
    /// the shared (locked) table on a miss. Registration happens before
    /// traffic for an actor flows and routes are never replaced, so a
    /// cached entry stays valid for the life of the cluster; misses are not
    /// cached, so an actor registered later (clients) is still found.
    fn route_cached<'a>(
        &self,
        cache: &'a mut HashMap<u32, (SiteId, MailboxSender)>,
        id: u32,
    ) -> Option<&'a (SiteId, MailboxSender)> {
        match cache.entry(id) {
            Entry::Occupied(e) => Some(e.into_mut()),
            Entry::Vacant(v) => {
                let shard = id as usize % ROUTE_SHARDS;
                let found = self.routes[shard]
                    .lock()
                    .expect("lock poisoned")
                    .get(&id)
                    .map(|entry| (entry.site, entry.mailbox.clone()))?;
                Some(v.insert(found))
            }
        }
    }

    /// Hand an envelope to its destination mailbox, applying the plane's
    /// backpressure policy. The route lock is released before any mailbox
    /// operation (sends may block).
    fn deliver(&self, env: Envelope) {
        let Some(tx) = self.mailbox_of(env.to.0) else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        self.deliver_to(&tx, env);
    }

    /// [`deliver`](Self::deliver) with the destination mailbox already in
    /// hand (the fabric resolves routes once, at admission).
    fn deliver_to(&self, tx: &MailboxSender, env: Envelope) {
        if matches!(env.msg, Msg::Submit { .. }) {
            // Client load: shed rather than block — a full coordinator
            // bounces the submit back as a timeout.
            match tx.try_send(Packet::Env(env)) {
                Ok(()) => {}
                Err(TrySendError::Full(Packet::Env(env))) => {
                    self.shed.fetch_add(1, Ordering::Relaxed);
                    self.bounce_submit(env);
                }
                Err(_) => {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
        } else if tx.send(Packet::Env(env)).is_err() {
            // Destination node already stopped.
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Turn a shed `Submit` into a synthetic timed-out `TxnDone` to its
    /// `reply_to`, so closed-loop clients observe the shed the same way
    /// they observe any other timeout.
    fn bounce_submit(&self, env: Envelope) {
        let Msg::Submit { reply_to, tag, .. } = env.msg else {
            return;
        };
        let now = self.clock.now();
        let bounce = Envelope {
            from: env.to,
            to: reply_to,
            msg: Msg::TxnDone {
                tag,
                txn: TxnId::new(0, 0),
                outcome: Outcome::TimedOut,
                stats: TxnStats {
                    submitted_at: now,
                    decided_at: now,
                    proposals_sent_at: SimTime::ZERO,
                    write_keys: 0,
                    votes_received: 0,
                    rejections: 0,
                },
            },
        };
        self.deliver(bounce);
    }

    /// The fabric loop: hold each envelope for its sampled delay, then
    /// deliver. Per-(src, dst) delivery order is preserved the same way the
    /// engine preserves it: a message never overtakes an earlier one on the
    /// same directed pair (TCP gives this for free; the in-process fabric
    /// must enforce it). Each shard owns its heap, RNG and FIFO map — no
    /// state is shared between fabric threads.
    fn run_fabric(&self, rx: Receiver<FabricCmd>, net: NetworkModel, seed: u64, slack_us: u64) {
        let slack = planet_sim::SimDuration::from_micros(slack_us);
        let mut rng = DetRng::new(seed ^ 0xFAB0_5EED_0000_0001);
        let mut heap: BinaryHeap<Reverse<HeldMsg>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut fifo_high: HashMap<(u32, u32), SimTime> = HashMap::new();
        let mut routes: HashMap<u32, (SiteId, MailboxSender)> = HashMap::new();
        let mut admit =
            |env: Envelope,
             heap: &mut BinaryHeap<Reverse<HeldMsg>>,
             fifo_high: &mut HashMap<(u32, u32), SimTime>,
             routes: &mut HashMap<u32, (SiteId, MailboxSender)>| {
                let now = self.clock.now();
                let src = match self.route_cached(routes, env.from.0) {
                    Some(&(site, _)) => site,
                    None => {
                        self.dropped.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                };
                let (dst, tx) = match self.route_cached(routes, env.to.0) {
                    Some(&(site, ref mailbox)) => (site, mailbox.clone()),
                    None => {
                        self.dropped.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                };
                match net.sample_delay(src, dst, now, &mut rng) {
                    None => {
                        self.dropped.fetch_add(1, Ordering::Relaxed);
                    }
                    Some(delay) => {
                        let pair = (env.from.0, env.to.0);
                        let mut at = now + delay;
                        if let Some(&high) = fifo_high.get(&pair) {
                            if at <= high {
                                at = high + planet_sim::SimDuration::from_micros(1);
                            }
                        }
                        fifo_high.insert(pair, at);
                        heap.push(Reverse(HeldMsg { at, seq, env, tx }));
                        seq += 1;
                    }
                }
            };
        loop {
            // Deliver everything due within the coalescing horizon. Without
            // the horizon each µs-distinct due time costs its own futex
            // sleep/wake (~the whole per-message fabric budget at scale);
            // with it one wakeup clears a `slack`-wide window and the
            // destination mailboxes receive bursts their node loop drains
            // in a single wakeup. Heap order is due-time order, so early
            // delivery cannot reorder a (src, dst) pair.
            let horizon = self.clock.now() + slack;
            loop {
                match heap.peek() {
                    Some(Reverse(held)) if held.at <= horizon => {
                        let Reverse(held) = heap.pop().expect("peeked");
                        self.deliver_to(&held.tx, held.env);
                    }
                    _ => break,
                }
            }
            // Sleep exactly until the next held message is due (it is, by
            // construction, more than `slack` away); a new command wakes
            // the channel immediately, so no polling cap is needed.
            let wait = match heap.peek() {
                Some(Reverse(held)) => held.at.since(self.clock.now()).to_std(),
                None => Duration::from_millis(500),
            };
            match rx.recv_timeout(wait) {
                Ok(FabricCmd::Env(env)) => admit(env, &mut heap, &mut fifo_high, &mut routes),
                Ok(FabricCmd::Batch(envs)) => {
                    for env in envs {
                        admit(env, &mut heap, &mut fifo_high, &mut routes);
                    }
                }
                Ok(FabricCmd::Stop) | Err(RecvTimeoutError::Disconnected) => return,
                Err(RecvTimeoutError::Timeout) => {}
            }
        }
    }

    fn fabric_shard(&self, dst: u32) -> &Sender<FabricCmd> {
        &self.fabric_txs[dst as usize % self.fabric_txs.len()]
    }
}

impl Transport for ChannelTransport {
    fn send(&self, env: Envelope) {
        if self.fabric_txs.is_empty() {
            self.deliver(env);
        } else if self
            .fabric_shard(env.to.0)
            .send(FabricCmd::Env(env))
            .is_err()
        {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn send_many(&self, envs: &mut Vec<Envelope>) {
        if self.fabric_txs.is_empty() {
            for env in envs.drain(..) {
                self.deliver(env);
            }
            return;
        }
        if self.fabric_txs.len() == 1 {
            // One shard: the whole batch is one channel handoff. Drain
            // rather than `mem::take` so the caller keeps its outbox
            // allocation for the next batch.
            #[allow(clippy::drain_collect)]
            let batch: Vec<Envelope> = envs.drain(..).collect();
            if self.fabric_txs[0].send(FabricCmd::Batch(batch)).is_err() {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
            return;
        }
        // Group by destination shard, preserving within-shard order, then
        // hand each shard its sub-batch in one send.
        let n = self.fabric_txs.len();
        let mut per_shard: Vec<Vec<Envelope>> = (0..n).map(|_| Vec::new()).collect();
        for env in envs.drain(..) {
            per_shard[env.to.0 as usize % n].push(env);
        }
        for (shard, batch) in per_shard.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            if self.fabric_txs[shard]
                .send(FabricCmd::Batch(batch))
                .is_err()
            {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}
