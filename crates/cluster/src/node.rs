//! The thread-per-actor mailbox loop.
//!
//! A live node owns one protocol actor (replica, coordinator or client) and
//! runs it on its own OS thread. Events reach the node as [`Packet`]s
//! through an in-process mailbox; every delivered message is funnelled
//! through [`planet_sim::drive`], the same factored step function the
//! deterministic engine uses, so the protocol logic is byte-for-byte shared
//! between the simulated and live worlds. Only the interpretation of the
//! emitted [`Effect`]s differs: sends go to the node's [`Transport`], timers
//! go on a local wall-clock heap.
//!
//! [`Effect`]: planet_sim::Effect

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use planet_mdcc::Msg;
use planet_sim::{
    drive, drive_start, Actor, ActorId, DetRng, Effect, Metrics, SimTime, SiteId, TurnInputs,
};

use crate::transport::{Envelope, Transport};

/// A shared wall-clock epoch. Every node and the delay fabric of a cluster
/// share one clock, so "now" is consistent across threads and maps directly
/// onto [`SimTime`] (microseconds since cluster start) — the same timeline
/// the network model's spike and partition windows are expressed in.
#[derive(Debug, Clone, Copy)]
pub struct Clock {
    epoch: Instant,
}

impl Clock {
    /// A clock whose origin is now.
    pub fn new() -> Self {
        Clock {
            epoch: Instant::now(),
        }
    }

    /// Wall time since the epoch, as a [`SimTime`].
    pub fn now(&self) -> SimTime {
        SimTime::from_micros(self.epoch.elapsed().as_micros() as u64)
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::new()
    }
}

/// A closure executed on the node's thread with exclusive access to its
/// actor. The returned messages are delivered to the actor immediately
/// afterwards (as if self-sent), which is how facade-level operations such
/// as staging a transaction and firing its submit timer stay atomic with
/// respect to protocol traffic.
pub type CallFn = Box<dyn FnOnce(&mut dyn Actor<Msg>) -> Vec<Msg> + Send>;

/// What a node's mailbox carries.
pub enum Packet {
    /// A protocol message from another actor.
    Env(Envelope),
    /// Run a closure against the actor on its own thread.
    Call(CallFn),
    /// Drain and stop; the thread returns its actor for harvesting.
    Stop,
}

/// A timer pending on a node's local heap.
struct TimerEntry {
    at: SimTime,
    seq: u64,
    msg: Msg,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// How long an idle node sleeps between mailbox polls when it has no timer
/// due sooner. Bounds timer-firing latency; protocol timeouts in this
/// workspace are tens of milliseconds and up, so a few milliseconds of slack
/// is invisible.
const IDLE_WAIT: Duration = Duration::from_millis(5);

/// A handle to a spawned node: its id, its mailbox, and the join handle
/// through which the actor (and the node's private metrics registry) is
/// recovered at shutdown.
pub struct NodeHandle {
    /// The actor this node runs.
    pub id: ActorId,
    /// The node's mailbox.
    pub mailbox: Sender<Packet>,
    join: JoinHandle<(Box<dyn Actor<Msg>>, Metrics)>,
}

impl NodeHandle {
    /// Run `f` on the node's thread with exclusive access to the actor;
    /// messages it returns are delivered to the actor immediately after.
    pub fn call(&self, f: impl FnOnce(&mut dyn Actor<Msg>) -> Vec<Msg> + Send + 'static) {
        let _ = self.mailbox.send(Packet::Call(Box::new(f)));
    }

    /// Deliver a message to the actor directly (bypassing any transport
    /// delay model), as if self-sent. Mirrors `Simulation::inject_at`.
    pub fn inject(&self, msg: Msg) {
        let _ = self.mailbox.send(Packet::Env(Envelope {
            from: self.id,
            to: self.id,
            msg,
        }));
    }

    /// Stop the node and recover its actor and metrics.
    pub fn stop_and_join(self) -> (Box<dyn Actor<Msg>>, Metrics) {
        let _ = self.mailbox.send(Packet::Stop);
        self.join.join().expect("node thread panicked")
    }
}

/// Spawn a node thread running `actor` as `id` at `site`.
///
/// The caller supplies the mailbox receiver (so it can register the matching
/// sender with the transport *before* any thread starts — actors may emit
/// sends from `on_start`). `seed` feeds the node's private deterministic
/// RNG; live runs are not replayable (the OS scheduler orders events), but
/// per-node jitter sampling stays well-defined.
#[allow(clippy::too_many_arguments)] // a node's full wiring, spelled out
pub fn spawn_node(
    id: ActorId,
    site: SiteId,
    actor: Box<dyn Actor<Msg>>,
    mailbox: Sender<Packet>,
    rx: Receiver<Packet>,
    transport: Arc<dyn Transport>,
    clock: Clock,
    seed: u64,
) -> NodeHandle {
    let join = std::thread::Builder::new()
        .name(format!("planet-node-{}", id.0))
        .spawn(move || run_node(id, site, actor, rx, transport, clock, seed))
        .expect("spawn node thread");
    NodeHandle { id, mailbox, join }
}

fn run_node(
    id: ActorId,
    site: SiteId,
    mut actor: Box<dyn Actor<Msg>>,
    rx: Receiver<Packet>,
    transport: Arc<dyn Transport>,
    clock: Clock,
    seed: u64,
) -> (Box<dyn Actor<Msg>>, Metrics) {
    let mut rng = DetRng::new(seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(id.0 as u64 + 1)));
    let mut metrics = Metrics::new();
    let mut timers: BinaryHeap<Reverse<TimerEntry>> = BinaryHeap::new();
    let mut timer_seq = 0u64;
    let mut running = true;

    let inputs = |now: SimTime| TurnInputs {
        now,
        self_id: id,
        self_site: site,
    };

    // Apply one turn's effects to the live fabric.
    let apply = |effects: Vec<Effect<Msg>>,
                 now: SimTime,
                 timers: &mut BinaryHeap<Reverse<TimerEntry>>,
                 timer_seq: &mut u64,
                 running: &mut bool| {
        for effect in effects {
            match effect {
                Effect::Send { dst, msg } => {
                    transport.send(Envelope {
                        from: id,
                        to: dst,
                        msg,
                    });
                }
                Effect::Timer { delay, msg } => {
                    timers.push(Reverse(TimerEntry {
                        at: now + delay,
                        seq: *timer_seq,
                        msg,
                    }));
                    *timer_seq += 1;
                }
                Effect::Halt => *running = false,
            }
        }
    };

    let start = drive_start(actor.as_mut(), inputs(clock.now()), &mut rng, &mut metrics);
    apply(
        start.effects,
        clock.now(),
        &mut timers,
        &mut timer_seq,
        &mut running,
    );

    while running {
        // Fire every due timer (self-sent, like the engine's timer path).
        loop {
            let now = clock.now();
            match timers.peek() {
                Some(Reverse(entry)) if entry.at <= now => {
                    let Reverse(entry) = timers.pop().expect("peeked");
                    let turn = drive(
                        actor.as_mut(),
                        inputs(now),
                        id,
                        entry.msg,
                        &mut rng,
                        &mut metrics,
                    );
                    apply(turn.effects, now, &mut timers, &mut timer_seq, &mut running);
                }
                _ => break,
            }
        }
        if !running {
            break;
        }
        let wait = match timers.peek() {
            Some(Reverse(entry)) => entry.at.since(clock.now()).to_std().min(IDLE_WAIT),
            None => IDLE_WAIT,
        };
        match rx.recv_timeout(wait) {
            Ok(Packet::Env(env)) => {
                let now = clock.now();
                let turn = drive(
                    actor.as_mut(),
                    inputs(now),
                    env.from,
                    env.msg,
                    &mut rng,
                    &mut metrics,
                );
                apply(turn.effects, now, &mut timers, &mut timer_seq, &mut running);
            }
            Ok(Packet::Call(f)) => {
                let followups = f(actor.as_mut());
                for msg in followups {
                    let now = clock.now();
                    let turn = drive(actor.as_mut(), inputs(now), id, msg, &mut rng, &mut metrics);
                    apply(turn.effects, now, &mut timers, &mut timer_seq, &mut running);
                }
            }
            Ok(Packet::Stop) | Err(RecvTimeoutError::Disconnected) => break,
            Err(RecvTimeoutError::Timeout) => {}
        }
    }
    (actor, metrics)
}
