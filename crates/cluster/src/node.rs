//! The thread-per-actor mailbox loop.
//!
//! A live node owns one protocol actor (replica, coordinator or client) and
//! runs it on its own OS thread. Events reach the node as [`Packet`]s
//! through a bounded in-process mailbox; every delivered message is
//! funnelled through [`planet_sim::drive_into`], the same factored step
//! function the deterministic engine uses, so the protocol logic is
//! byte-for-byte shared between the simulated and live worlds. Only the
//! interpretation of the emitted [`Effect`]s differs: sends go to the
//! node's [`Transport`], timers go on a local wall-clock heap.
//!
//! The loop is *batched*: one wakeup drains every ready packet (bounded by
//! [`PlaneConfig::max_batch`]), drives the whole batch as one turn-group
//! into a reused effect buffer, and flushes the accumulated sends with a
//! single [`Transport::send_many`] call — one wakeup, zero steady-state
//! allocations and one coalesced transport handoff per batch instead of one
//! of each per message. Sleeps are exact: because a mailbox arrival wakes
//! `recv_timeout` immediately, the node sleeps all the way to its next
//! timer deadline instead of polling on a fixed tick (at 256 clients the
//! old 5 ms tick alone cost tens of thousands of wakeups per second).
//!
//! [`Effect`]: planet_sim::Effect

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::mpsc::RecvTimeoutError;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use planet_mdcc::Msg;
use planet_sim::{
    drive_into, drive_start, Actor, ActorId, DetRng, Effect, Metrics, SimTime, SiteId, TurnInputs,
};

use crate::plane::{MailboxReceiver, MailboxSender, PlaneConfig};
use crate::transport::{Envelope, Transport};

/// A shared wall-clock epoch. Every node and the delay fabric of a cluster
/// share one clock, so "now" is consistent across threads and maps directly
/// onto [`SimTime`] (microseconds since cluster start) — the same timeline
/// the network model's spike and partition windows are expressed in.
#[derive(Debug, Clone, Copy)]
pub struct Clock {
    epoch: Instant,
}

impl Clock {
    /// A clock whose origin is now.
    pub fn new() -> Self {
        Clock {
            epoch: Instant::now(),
        }
    }

    /// Wall time since the epoch, as a [`SimTime`].
    pub fn now(&self) -> SimTime {
        SimTime::from_micros(self.epoch.elapsed().as_micros() as u64)
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::new()
    }
}

/// A closure executed on the node's thread with exclusive access to its
/// actor. The returned messages are delivered to the actor immediately
/// afterwards (as if self-sent), which is how facade-level operations such
/// as staging a transaction and firing its submit timer stay atomic with
/// respect to protocol traffic.
pub type CallFn = Box<dyn FnOnce(&mut dyn Actor<Msg>) -> Vec<Msg> + Send>;

/// What a node's mailbox carries.
pub enum Packet {
    /// A protocol message from another actor.
    Env(Envelope),
    /// Run a closure against the actor on its own thread.
    Call(CallFn),
    /// Drain and stop; the thread returns its actor for harvesting.
    Stop,
}

/// A timer pending on a node's local heap.
struct TimerEntry {
    at: SimTime,
    seq: u64,
    msg: Msg,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// How long a node with no pending timer sleeps before re-checking its
/// world. Purely a liveness backstop: packets (including `Stop`) wake the
/// blocked `recv_timeout` immediately, and a pending timer always bounds
/// the sleep by its exact deadline, so this tick does no latency work.
const IDLE_WAIT: Duration = Duration::from_millis(500);

/// How a spawned node is hosted: a dedicated OS thread (the legacy
/// runtime) or a schedulable task on the reactor.
enum NodeBackend {
    Thread(JoinHandle<(Box<dyn Actor<Msg>>, Metrics)>),
    Task(Arc<crate::reactor::TaskCore>),
}

/// A handle to a spawned node: its id, its mailbox, and the backend
/// through which the actor (and the node's private metrics registry) is
/// recovered at shutdown. The handle's API is runtime-agnostic: `call`,
/// `inject` and `stop_and_join` behave identically whether the actor owns
/// an OS thread or is one task among many on a reactor worker.
pub struct NodeHandle {
    /// The actor this node runs.
    pub id: ActorId,
    /// The node's mailbox.
    pub mailbox: MailboxSender,
    backend: NodeBackend,
}

impl NodeHandle {
    /// Wrap a reactor task in the node-handle API. Used by
    /// [`Reactor::spawn`](crate::reactor::Reactor::spawn).
    pub(crate) fn from_task(
        id: ActorId,
        mailbox: MailboxSender,
        core: Arc<crate::reactor::TaskCore>,
    ) -> Self {
        NodeHandle {
            id,
            mailbox,
            backend: NodeBackend::Task(core),
        }
    }

    /// Run `f` with exclusive access to the actor (on its node thread, or
    /// on whichever reactor worker drives the task next); messages it
    /// returns are delivered to the actor immediately after.
    pub fn call(&self, f: impl FnOnce(&mut dyn Actor<Msg>) -> Vec<Msg> + Send + 'static) {
        let _ = self.mailbox.send(Packet::Call(Box::new(f)));
    }

    /// Deliver a message to the actor directly (bypassing any transport
    /// delay model), as if self-sent. Mirrors `Simulation::inject_at`.
    pub fn inject(&self, msg: Msg) {
        let _ = self.mailbox.send(Packet::Env(Envelope {
            from: self.id,
            to: self.id,
            msg,
        }));
    }

    /// Stop the node and recover its actor and metrics.
    pub fn stop_and_join(self) -> (Box<dyn Actor<Msg>>, Metrics) {
        let _ = self.mailbox.send(Packet::Stop);
        match self.backend {
            NodeBackend::Thread(join) => join.join().expect("node thread panicked"),
            NodeBackend::Task(core) => {
                let (mut members, metrics) = core.wait_finished();
                let (_, actor) = members
                    .pop()
                    .expect("single-actor task harvests one member");
                (actor, metrics)
            }
        }
    }
}

/// Spawn a node thread running `actor` as `id` at `site`.
///
/// The caller supplies the mailbox receiver (so it can register the matching
/// sender with the transport *before* any thread starts — actors may emit
/// sends from `on_start`). `seed` feeds the node's private deterministic
/// RNG; live runs are not replayable (the OS scheduler orders events), but
/// per-node jitter sampling stays well-defined. `plane` sets the drain
/// batch bound.
#[allow(clippy::too_many_arguments)] // a node's full wiring, spelled out
pub fn spawn_node(
    id: ActorId,
    site: SiteId,
    actor: Box<dyn Actor<Msg>>,
    mailbox: MailboxSender,
    rx: MailboxReceiver,
    transport: Arc<dyn Transport>,
    clock: Clock,
    seed: u64,
    plane: PlaneConfig,
) -> NodeHandle {
    let join = std::thread::Builder::new()
        .name(format!("planet-node-{}", id.0))
        .spawn(move || run_node(id, site, actor, rx, transport, clock, seed, plane))
        .expect("spawn node thread");
    NodeHandle {
        id,
        mailbox,
        backend: NodeBackend::Thread(join),
    }
}

/// A pool's member list: each actor with its id. What [`spawn_pool`]
/// consumes and [`PoolHandle::stop_and_join`] gives back.
pub type PoolMembers = Vec<(ActorId, Box<dyn Actor<Msg>>)>;

/// How a spawned pool is hosted: a dedicated OS thread or one schedulable
/// task on the reactor.
enum PoolBackend {
    Thread(JoinHandle<(PoolMembers, Metrics)>),
    Task(Arc<crate::reactor::TaskCore>),
}

/// A handle to a spawned actor pool: the member ids, the shared mailbox,
/// and the backend through which the actors (and the pool's metrics
/// registry) are recovered at shutdown.
pub struct PoolHandle {
    /// Ids of the pooled actors, in spawn order.
    pub ids: Vec<ActorId>,
    /// The pool's shared mailbox (every member id routes here).
    pub mailbox: MailboxSender,
    backend: PoolBackend,
}

impl PoolHandle {
    /// Wrap a pooled reactor task in the pool-handle API. Used by
    /// [`Reactor::spawn_pool`](crate::reactor::Reactor::spawn_pool).
    pub(crate) fn from_task(
        ids: Vec<ActorId>,
        mailbox: MailboxSender,
        core: Arc<crate::reactor::TaskCore>,
    ) -> Self {
        PoolHandle {
            ids,
            mailbox,
            backend: PoolBackend::Task(core),
        }
    }

    /// Stop the pool and recover every member actor plus the pool's shared
    /// metrics registry.
    pub fn stop_and_join(self) -> (PoolMembers, Metrics) {
        let _ = self.mailbox.send(Packet::Stop);
        match self.backend {
            PoolBackend::Thread(join) => join.join().expect("pool thread panicked"),
            PoolBackend::Task(core) => core.wait_finished(),
        }
    }
}

/// Spawn one thread driving a *pool* of actors at `site` behind a single
/// shared mailbox.
///
/// Thread-per-actor is the right shape for the handful of stateful server
/// nodes, but a load generator wants hundreds of tiny closed-loop clients —
/// and one OS thread per client makes a concurrency sweep measure the
/// kernel scheduler instead of the system (256 runnable threads on a small
/// host is all context-switch and cache churn). A pool keeps the actor
/// model intact — every member keeps its own id, RNG and mailbox-ordered
/// delivery — while one wakeup drains the whole pool's traffic and flushes
/// every member's sends as one coalesced transport batch.
///
/// The caller registers each member id against the shared mailbox before
/// any traffic flows. `Packet::Call` is not routable to a member (it names
/// no addressee) and is counted and dropped — pools are for headless load
/// actors; facade clients that need `call`/`inject` get their own node via
/// [`spawn_node`].
#[allow(clippy::too_many_arguments)] // a pool's full wiring, spelled out
pub fn spawn_pool(
    members: PoolMembers,
    site: SiteId,
    mailbox: MailboxSender,
    rx: MailboxReceiver,
    transport: Arc<dyn Transport>,
    clock: Clock,
    seed: u64,
    plane: PlaneConfig,
) -> PoolHandle {
    assert!(!members.is_empty(), "a pool needs at least one member");
    let ids: Vec<ActorId> = members.iter().map(|(id, _)| *id).collect();
    let first = ids[0].0;
    let join = std::thread::Builder::new()
        .name(format!("planet-pool-{first}"))
        .spawn(move || run_pool(site, members, rx, transport, clock, seed, plane))
        .expect("spawn pool thread");
    PoolHandle {
        ids,
        mailbox,
        backend: PoolBackend::Thread(join),
    }
}

/// Everything one turn-group mutates: the timer heap, the pending send
/// batch, and the run flag. Effects drain into it after every drive.
struct NodeState {
    timers: BinaryHeap<Reverse<TimerEntry>>,
    timer_seq: u64,
    outbox: Vec<Envelope>,
    running: bool,
}

impl NodeState {
    /// Apply one turn's effects: sends accumulate in the outbox for the
    /// next coalesced flush, timers go on the local heap.
    fn absorb(&mut self, effects: &mut Vec<Effect<Msg>>, id: ActorId, now: SimTime) {
        for effect in effects.drain(..) {
            match effect {
                Effect::Send { dst, msg } => self.outbox.push(Envelope {
                    from: id,
                    to: dst,
                    msg,
                }),
                Effect::Timer { delay, msg } => {
                    self.timers.push(Reverse(TimerEntry {
                        at: now + delay,
                        seq: self.timer_seq,
                        msg,
                    }));
                    self.timer_seq += 1;
                }
                Effect::Halt => self.running = false,
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_node(
    id: ActorId,
    site: SiteId,
    mut actor: Box<dyn Actor<Msg>>,
    rx: MailboxReceiver,
    transport: Arc<dyn Transport>,
    clock: Clock,
    seed: u64,
    plane: PlaneConfig,
) -> (Box<dyn Actor<Msg>>, Metrics) {
    let mut rng = DetRng::new(seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(id.0 as u64 + 1)));
    let mut metrics = Metrics::new();
    let max_batch = plane.max_batch.max(1);
    let mut state = NodeState {
        timers: BinaryHeap::new(),
        timer_seq: 0,
        outbox: Vec::new(),
        running: true,
    };
    // Reused across every turn: zero steady-state allocation per message.
    let mut effects: Vec<Effect<Msg>> = Vec::new();
    let mut batch: Vec<(Packet, Instant)> = Vec::with_capacity(max_batch);

    let inputs = |now: SimTime| TurnInputs {
        now,
        self_id: id,
        self_site: site,
    };

    let start = drive_start(actor.as_mut(), inputs(clock.now()), &mut rng, &mut metrics);
    effects.extend(start.effects);
    state.absorb(&mut effects, id, clock.now());

    while state.running {
        // Fire every due timer (self-sent, like the engine's timer path).
        loop {
            let now = clock.now();
            match state.timers.peek() {
                Some(Reverse(entry)) if entry.at <= now => {
                    let Some(Reverse(entry)) = state.timers.pop() else {
                        break;
                    };
                    drive_into(
                        actor.as_mut(),
                        inputs(now),
                        id,
                        entry.msg,
                        &mut rng,
                        &mut metrics,
                        &mut effects,
                    );
                    state.absorb(&mut effects, id, now);
                }
                _ => break,
            }
        }
        // Flush the turn-group's sends as one coalesced transport batch.
        if !state.outbox.is_empty() {
            transport.send_many(&mut state.outbox);
        }
        if !state.running {
            break;
        }
        // Sleep exactly until the next timer deadline (a packet arrival
        // wakes the channel immediately, so long waits are safe), or the
        // idle backstop when no timer is pending.
        let wait = match state.timers.peek() {
            Some(Reverse(entry)) => entry.at.since(clock.now()).to_std(),
            None => IDLE_WAIT,
        };
        match rx.recv_timeout_stamped(wait) {
            Ok(first) => {
                batch.push(first);
                while batch.len() < max_batch {
                    match rx.try_recv_stamped() {
                        Ok(packet) => batch.push(packet),
                        Err(_) => break,
                    }
                }
                metrics.histogram("plane.batch").record(batch.len() as u64);
                metrics
                    .histogram("plane.mailbox.depth")
                    .record(rx.depth() as u64);
                let drained_at = Instant::now();
                for (packet, enqueued) in batch.drain(..) {
                    metrics
                        .histogram("span.queue_us")
                        .record(drained_at.saturating_duration_since(enqueued).as_micros() as u64);
                    match packet {
                        Packet::Env(env) => {
                            let now = clock.now();
                            let wal = crate::reactor::is_wal_class(&env.msg);
                            let before = if wal { Some(Instant::now()) } else { None };
                            drive_into(
                                actor.as_mut(),
                                inputs(now),
                                env.from,
                                env.msg,
                                &mut rng,
                                &mut metrics,
                                &mut effects,
                            );
                            if let Some(before) = before {
                                metrics
                                    .histogram("span.wal_us")
                                    .record(before.elapsed().as_micros() as u64);
                            }
                            state.absorb(&mut effects, id, now);
                        }
                        Packet::Call(f) => {
                            let followups = f(actor.as_mut());
                            for msg in followups {
                                let now = clock.now();
                                drive_into(
                                    actor.as_mut(),
                                    inputs(now),
                                    id,
                                    msg,
                                    &mut rng,
                                    &mut metrics,
                                    &mut effects,
                                );
                                state.absorb(&mut effects, id, now);
                            }
                        }
                        Packet::Stop => {
                            state.running = false;
                        }
                    }
                    if !state.running {
                        break;
                    }
                }
                if !state.outbox.is_empty() {
                    transport.send_many(&mut state.outbox);
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
            Err(RecvTimeoutError::Timeout) => {}
        }
    }
    // The mailbox's deepest point, preserved as the histogram max so merged
    // registries report a cluster-wide high-water mark.
    metrics
        .histogram("plane.mailbox.depth")
        .record(rx.high_water() as u64);
    (actor, metrics)
}

/// A timer pending on a pool's shared heap, tagged with the member it
/// belongs to.
struct PoolTimer {
    at: SimTime,
    seq: u64,
    member: usize,
    msg: Msg,
}

impl PartialEq for PoolTimer {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for PoolTimer {}
impl PartialOrd for PoolTimer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PoolTimer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// One pooled actor: id, state, and a private RNG seeded exactly as a
/// dedicated node's would be.
struct PoolMember {
    id: ActorId,
    actor: Box<dyn Actor<Msg>>,
    rng: DetRng,
}

/// Apply one pooled turn's effects: sends accumulate in the shared outbox,
/// timers go on the shared heap tagged with the member index.
#[allow(clippy::too_many_arguments)]
fn absorb_pool(
    effects: &mut Vec<Effect<Msg>>,
    outbox: &mut Vec<Envelope>,
    timers: &mut BinaryHeap<Reverse<PoolTimer>>,
    timer_seq: &mut u64,
    member: usize,
    id: ActorId,
    now: SimTime,
    running: &mut bool,
) {
    for effect in effects.drain(..) {
        match effect {
            Effect::Send { dst, msg } => outbox.push(Envelope {
                from: id,
                to: dst,
                msg,
            }),
            Effect::Timer { delay, msg } => {
                timers.push(Reverse(PoolTimer {
                    at: now + delay,
                    seq: *timer_seq,
                    member,
                    msg,
                }));
                *timer_seq += 1;
            }
            Effect::Halt => *running = false,
        }
    }
}

fn run_pool(
    site: SiteId,
    members: PoolMembers,
    rx: MailboxReceiver,
    transport: Arc<dyn Transport>,
    clock: Clock,
    seed: u64,
    plane: PlaneConfig,
) -> (PoolMembers, Metrics) {
    let mut metrics = Metrics::new();
    let max_batch = plane.max_batch.max(1);
    let mut pool: Vec<PoolMember> = members
        .into_iter()
        .map(|(id, actor)| PoolMember {
            id,
            actor,
            rng: DetRng::new(seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(id.0 as u64 + 1))),
        })
        .collect();
    let by_id: std::collections::HashMap<u32, usize> = pool
        .iter()
        .enumerate()
        .map(|(idx, m)| (m.id.0, idx))
        .collect();
    let mut timers: BinaryHeap<Reverse<PoolTimer>> = BinaryHeap::new();
    let mut timer_seq = 0u64;
    let mut outbox: Vec<Envelope> = Vec::new();
    let mut running = true;
    // Reused across every turn: zero steady-state allocation per message.
    let mut effects: Vec<Effect<Msg>> = Vec::new();
    let mut batch: Vec<(Packet, Instant)> = Vec::with_capacity(max_batch);

    let inputs = |id: ActorId, now: SimTime| TurnInputs {
        now,
        self_id: id,
        self_site: site,
    };

    for (idx, member) in pool.iter_mut().enumerate() {
        let now = clock.now();
        let start = drive_start(
            member.actor.as_mut(),
            inputs(member.id, now),
            &mut member.rng,
            &mut metrics,
        );
        effects.extend(start.effects);
        absorb_pool(
            &mut effects,
            &mut outbox,
            &mut timers,
            &mut timer_seq,
            idx,
            member.id,
            now,
            &mut running,
        );
    }

    while running {
        // Fire every due timer across the pool.
        loop {
            let now = clock.now();
            match timers.peek() {
                Some(Reverse(entry)) if entry.at <= now => {
                    let Some(Reverse(entry)) = timers.pop() else {
                        break;
                    };
                    let Some(member) = pool.get_mut(entry.member) else {
                        break; // timer for a member that was never pooled
                    };
                    drive_into(
                        member.actor.as_mut(),
                        inputs(member.id, now),
                        member.id,
                        entry.msg,
                        &mut member.rng,
                        &mut metrics,
                        &mut effects,
                    );
                    absorb_pool(
                        &mut effects,
                        &mut outbox,
                        &mut timers,
                        &mut timer_seq,
                        entry.member,
                        member.id,
                        now,
                        &mut running,
                    );
                }
                _ => break,
            }
        }
        // One coalesced flush for the whole pool's turn-group.
        if !outbox.is_empty() {
            transport.send_many(&mut outbox);
        }
        if !running {
            break;
        }
        let wait = match timers.peek() {
            Some(Reverse(entry)) => entry.at.since(clock.now()).to_std(),
            None => IDLE_WAIT,
        };
        match rx.recv_timeout_stamped(wait) {
            Ok(first) => {
                batch.push(first);
                while batch.len() < max_batch {
                    match rx.try_recv_stamped() {
                        Ok(packet) => batch.push(packet),
                        Err(_) => break,
                    }
                }
                metrics.histogram("plane.batch").record(batch.len() as u64);
                metrics
                    .histogram("plane.mailbox.depth")
                    .record(rx.depth() as u64);
                let drained_at = Instant::now();
                for (packet, enqueued) in batch.drain(..) {
                    metrics
                        .histogram("span.queue_us")
                        .record(drained_at.saturating_duration_since(enqueued).as_micros() as u64);
                    match packet {
                        Packet::Env(env) => {
                            let Some(&idx) = by_id.get(&env.to.0) else {
                                metrics.counter("plane.pool.misrouted").add(1);
                                continue;
                            };
                            let now = clock.now();
                            let Some(member) = pool.get_mut(idx) else {
                                metrics.counter("plane.pool.misrouted").add(1);
                                continue;
                            };
                            drive_into(
                                member.actor.as_mut(),
                                inputs(member.id, now),
                                env.from,
                                env.msg,
                                &mut member.rng,
                                &mut metrics,
                                &mut effects,
                            );
                            absorb_pool(
                                &mut effects,
                                &mut outbox,
                                &mut timers,
                                &mut timer_seq,
                                idx,
                                member.id,
                                now,
                                &mut running,
                            );
                        }
                        Packet::Call(_) => {
                            // A call names no member; see `spawn_pool` docs.
                            metrics.counter("plane.pool.dropped_call").add(1);
                        }
                        Packet::Stop => {
                            running = false;
                        }
                    }
                    if !running {
                        break;
                    }
                }
                if !outbox.is_empty() {
                    transport.send_many(&mut outbox);
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
            Err(RecvTimeoutError::Timeout) => {}
        }
    }
    metrics
        .histogram("plane.mailbox.depth")
        .record(rx.high_water() as u64);
    (pool.into_iter().map(|m| (m.id, m.actor)).collect(), metrics)
}
