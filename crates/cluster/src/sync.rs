//! Swappable synchronization facade for the reactor's lock-free core.
//!
//! Default builds re-export `std::sync` — zero cost, the real primitives.
//! Under `RUSTFLAGS="--cfg loom"` the same names resolve to the
//! `planet-loom` model checker's types, so the reactor's *actual*
//! `Parker`, scheduling-word, and timer-handshake code (not a
//! transliteration of it) runs under exhaustive interleaving and
//! weak-memory exploration in `reactor.rs`'s `loom_tests` module.
//!
//! Only `reactor.rs` imports from here: the rest of the crate is either
//! mutex-protected (already covered by planet-check's lock passes) or
//! never runs inside a model.

#[cfg(not(loom))]
pub(crate) use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
#[cfg(not(loom))]
pub(crate) use std::sync::{Condvar, Mutex};

#[cfg(loom)]
pub(crate) use loom::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
#[cfg(loom)]
pub(crate) use loom::sync::{Condvar, Mutex};
