//! TCP transport: the wire-format codec over `std::net`, one process per
//! deployment unit.
//!
//! A [`TcpTransport`] plays both server and client:
//!
//! * **Hosted actors** (registered with [`TcpTransport::host`]) receive
//!   envelopes addressed to them from any accepted or outbound connection.
//! * **Static routes** ([`TcpTransport::add_route`]) say which remote
//!   address serves a given actor id — the deployment topology, identical
//!   on every `planetd`.
//! * **Learned routes**: when an envelope arrives from an actor with no
//!   static route (a load-driver client behind NAT, say), the transport
//!   remembers the connection it came in on and sends replies back down it.
//!   This is how coordinators answer clients that never [`listen`].
//!
//! Frames never overtake each other on a connection (TCP is FIFO), which
//! preserves the same per-(src, dst) ordering guarantee the simulator's
//! scheduler and the in-process fabric enforce.
//!
//! [`listen`]: TcpTransport::listen

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::node::Packet;
use crate::transport::{Envelope, Transport};
use crate::wire;

/// A write handle to one connection, shared by everyone routing to it.
type Conn = Arc<Mutex<TcpStream>>;

struct TcpInner {
    /// Static actor → address routes (the deployment topology).
    routes: Mutex<HashMap<u32, SocketAddr>>,
    /// Open outbound connections by remote address.
    conns: Mutex<HashMap<SocketAddr, Conn>>,
    /// Learned actor → connection routes (reply paths for clients).
    peers: Mutex<HashMap<u32, Conn>>,
    /// Locally hosted actors' mailboxes.
    local: Mutex<HashMap<u32, Sender<Packet>>>,
    /// Raw clones of every stream, so `stop` can unblock reader threads.
    streams: Mutex<Vec<TcpStream>>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    listen_addr: Mutex<Option<SocketAddr>>,
    closed: AtomicBool,
    dropped: AtomicU64,
}

/// The TCP transport.
pub struct TcpTransport {
    inner: Arc<TcpInner>,
}

impl TcpTransport {
    /// A transport with no routes and no listener yet.
    pub fn new() -> Arc<Self> {
        Arc::new(TcpTransport {
            inner: Arc::new(TcpInner {
                routes: Mutex::new(HashMap::new()),
                conns: Mutex::new(HashMap::new()),
                peers: Mutex::new(HashMap::new()),
                local: Mutex::new(HashMap::new()),
                streams: Mutex::new(Vec::new()),
                threads: Mutex::new(Vec::new()),
                listen_addr: Mutex::new(None),
                closed: AtomicBool::new(false),
                dropped: AtomicU64::new(0),
            }),
        })
    }

    /// Declare that `actor` is served at `addr` (may be this process).
    pub fn add_route(&self, actor: u32, addr: SocketAddr) {
        self.inner
            .routes
            .lock()
            .expect("lock poisoned")
            .insert(actor, addr);
    }

    /// Register a locally hosted actor's mailbox.
    pub fn host(&self, actor: u32, mailbox: Sender<Packet>) {
        self.inner
            .local
            .lock()
            .expect("lock poisoned")
            .insert(actor, mailbox);
    }

    /// Bind `addr` (port 0 allowed) and start accepting connections.
    /// Returns the bound address.
    pub fn listen(&self, addr: SocketAddr) -> io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        let bound = listener.local_addr()?;
        *self.inner.listen_addr.lock().expect("lock poisoned") = Some(bound);
        let inner = self.inner.clone();
        let handle = std::thread::Builder::new()
            .name("planet-tcp-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if inner.closed.load(Ordering::SeqCst) {
                        break;
                    }
                    match stream {
                        Ok(stream) => {
                            let _ = TcpInner::adopt(&inner, stream);
                        }
                        Err(_) => break,
                    }
                }
            })?;
        self.inner
            .threads
            .lock()
            .expect("lock poisoned")
            .push(handle);
        Ok(bound)
    }

    /// Messages that could not be delivered (connect/write failures,
    /// unroutable destinations).
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Close every connection and stop the acceptor and reader threads.
    pub fn stop(&self) {
        self.inner.closed.store(true, Ordering::SeqCst);
        for stream in self.inner.streams.lock().expect("lock poisoned").drain(..) {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        // Unblock the acceptor with a throwaway connection.
        if let Some(addr) = *self.inner.listen_addr.lock().expect("lock poisoned") {
            let _ = TcpStream::connect(addr);
        }
        let threads: Vec<_> = self
            .inner
            .threads
            .lock()
            .expect("lock poisoned")
            .drain(..)
            .collect();
        for handle in threads {
            let _ = handle.join();
        }
    }
}

impl TcpInner {
    /// Wire up a new connection: keep a write handle, spawn a reader.
    fn adopt(inner: &Arc<TcpInner>, stream: TcpStream) -> Option<Conn> {
        if inner.closed.load(Ordering::SeqCst) {
            return None;
        }
        let _ = stream.set_nodelay(true);
        let reader = match stream.try_clone() {
            Ok(r) => r,
            Err(_) => return None,
        };
        inner
            .streams
            .lock()
            .expect("lock poisoned")
            .push(match stream.try_clone() {
                Ok(raw) => raw,
                Err(_) => return None,
            });
        let conn: Conn = Arc::new(Mutex::new(stream));
        let inner2 = inner.clone();
        let conn2 = conn.clone();
        let handle = std::thread::Builder::new()
            .name("planet-tcp-read".into())
            .spawn(move || inner2.read_loop(reader, conn2))
            .ok()?;
        inner.threads.lock().expect("lock poisoned").push(handle);
        Some(conn)
    }

    /// Decode frames off one connection until EOF, delivering locally and
    /// learning reply routes.
    fn read_loop(&self, mut stream: TcpStream, conn: Conn) {
        loop {
            match wire::read_frame(&mut stream) {
                Ok(Some(env)) => {
                    // Learn the reply path: the sender is reachable down
                    // this connection (unless a static route exists).
                    let has_route = self
                        .routes
                        .lock()
                        .expect("lock poisoned")
                        .contains_key(&env.from.0);
                    if !has_route {
                        self.peers
                            .lock()
                            .expect("lock poisoned")
                            .insert(env.from.0, conn.clone());
                    }
                    self.deliver_local(env);
                }
                Ok(None) | Err(_) => return,
            }
        }
    }

    fn deliver_local(&self, env: Envelope) {
        let mailbox = self
            .local
            .lock()
            .expect("lock poisoned")
            .get(&env.to.0)
            .cloned();
        match mailbox {
            Some(tx) if tx.send(Packet::Env(env)).is_ok() => {}
            _ => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn write_to(&self, conn: &Conn, env: &Envelope) -> bool {
        let mut stream = conn.lock().expect("lock poisoned");
        wire::write_frame(&mut *stream, env).is_ok()
    }
}

impl Transport for TcpTransport {
    fn send(&self, env: Envelope) {
        let inner = &self.inner;
        // 1. Hosted locally?
        if inner
            .local
            .lock()
            .expect("lock poisoned")
            .contains_key(&env.to.0)
        {
            inner.deliver_local(env);
            return;
        }
        // 2. A learned reply route?
        let peer = inner
            .peers
            .lock()
            .expect("lock poisoned")
            .get(&env.to.0)
            .cloned();
        if let Some(conn) = peer {
            if inner.write_to(&conn, &env) {
                return;
            }
            inner.peers.lock().expect("lock poisoned").remove(&env.to.0);
            inner.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // 3. A static route: reuse or open the connection to that address.
        let addr = inner
            .routes
            .lock()
            .expect("lock poisoned")
            .get(&env.to.0)
            .copied();
        let Some(addr) = addr else {
            inner.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let existing = inner
            .conns
            .lock()
            .expect("lock poisoned")
            .get(&addr)
            .cloned();
        let conn = match existing {
            Some(conn) => Some(conn),
            None => match TcpStream::connect(addr) {
                Ok(stream) => {
                    let conn = TcpInner::adopt(inner, stream);
                    if let Some(conn) = &conn {
                        inner
                            .conns
                            .lock()
                            .expect("lock poisoned")
                            .insert(addr, conn.clone());
                    }
                    conn
                }
                Err(_) => None,
            },
        };
        match conn {
            Some(conn) if inner.write_to(&conn, &env) => {}
            Some(_) => {
                inner.conns.lock().expect("lock poisoned").remove(&addr);
                inner.dropped.fetch_add(1, Ordering::Relaxed);
            }
            None => {
                inner.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}
