//! TCP transport: the wire-format codec over `std::net`, one process per
//! deployment unit.
//!
//! A [`TcpTransport`] plays both server and client:
//!
//! * **Hosted actors** (registered with [`TcpTransport::host`]) receive
//!   envelopes addressed to them from any accepted or outbound connection.
//! * **Static routes** ([`TcpTransport::add_route`]) say which remote
//!   address serves a given actor id — the deployment topology, identical
//!   on every `planetd`.
//! * **Learned routes**: when an envelope arrives from an actor with no
//!   static route (a load-driver client behind NAT, say), the transport
//!   remembers the connection it came in on and sends replies back down it.
//!   This is how coordinators answer clients that never [`listen`].
//!
//! Frames never overtake each other on a connection (TCP is FIFO), which
//! preserves the same per-(src, dst) ordering guarantee the simulator's
//! scheduler and the in-process fabric enforce.
//!
//! Writes are *coalesced*: a batch handed over via
//! [`Transport::send_many`] is grouped by destination connection, each
//! group is encoded back-to-back into one pooled buffer
//! ([`wire::BufPool`] — no allocation once warm), and the whole group goes
//! out as a single `write_all` under a single stream lock. One syscall and
//! one lock acquisition per destination per flush, instead of per message.
//! [`TcpTransport::io_stats`] reports the resulting flush and byte counts,
//! from which `bytes / flush` falls out directly.
//!
//! Local delivery applies the plane's backpressure policy: hosted
//! mailboxes are bounded, protocol traffic blocks at a full one, and a
//! client `Msg::Submit` is shed — bounced back to its `reply_to` as a
//! timed-out `TxnDone` (see the module docs on [`crate::channel`] for the
//! rationale; both transports implement the identical policy).
//!
//! [`listen`]: TcpTransport::listen

use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use planet_mdcc::{Msg, Outcome, TxnStats};
use planet_sim::SimTime;
use planet_storage::TxnId;

use crate::node::Packet;
use crate::plane::{MailboxSender, TrySendError};
use crate::transport::{Envelope, Transport};
use crate::wire;

/// A write handle to one connection, shared by everyone routing to it.
type Conn = Arc<Mutex<TcpStream>>;

/// Which table a resolved connection came from, so a failed write can
/// invalidate the right entry.
enum ConnKey {
    /// A learned reply route (keyed by actor id).
    Peer(u32),
    /// A static-route connection (keyed by remote address).
    Addr(SocketAddr),
}

struct TcpInner {
    /// Static actor → address routes (the deployment topology).
    routes: Mutex<HashMap<u32, SocketAddr>>,
    /// Open outbound connections by remote address.
    conns: Mutex<HashMap<SocketAddr, Conn>>,
    /// Learned actor → connection routes (reply paths for clients).
    peers: Mutex<HashMap<u32, Conn>>,
    /// Locally hosted actors' mailboxes.
    local: Mutex<HashMap<u32, MailboxSender>>,
    /// Raw clones of every stream, so `stop` can unblock reader threads.
    streams: Mutex<Vec<TcpStream>>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    listen_addr: Mutex<Option<SocketAddr>>,
    closed: AtomicBool,
    // Loss accounting only — never synchronizes. check:allow(atomics)
    dropped: AtomicU64,
    shed: AtomicU64, // check:allow(atomics)
    /// Reused encode buffers for the coalesced write path.
    pool: wire::BufPool,
    /// Successful coalesced writes (one per destination per flush).
    flushes: AtomicU64, // check:allow(atomics)
    /// Payload bytes across those writes.
    bytes: AtomicU64, // check:allow(atomics)
}

/// The TCP transport.
pub struct TcpTransport {
    inner: Arc<TcpInner>,
}

impl TcpTransport {
    /// A transport with no routes and no listener yet.
    pub fn new() -> Arc<Self> {
        Arc::new(TcpTransport {
            inner: Arc::new(TcpInner {
                routes: Mutex::new(HashMap::new()),
                conns: Mutex::new(HashMap::new()),
                peers: Mutex::new(HashMap::new()),
                local: Mutex::new(HashMap::new()),
                streams: Mutex::new(Vec::new()),
                threads: Mutex::new(Vec::new()),
                listen_addr: Mutex::new(None),
                closed: AtomicBool::new(false),
                dropped: AtomicU64::new(0),
                shed: AtomicU64::new(0),
                pool: wire::BufPool::new(),
                flushes: AtomicU64::new(0),
                bytes: AtomicU64::new(0),
            }),
        })
    }

    /// Declare that `actor` is served at `addr` (may be this process).
    pub fn add_route(&self, actor: u32, addr: SocketAddr) {
        self.inner
            .routes
            .lock()
            .expect("lock poisoned")
            .insert(actor, addr);
    }

    /// Register a locally hosted actor's mailbox.
    pub fn host(&self, actor: u32, mailbox: MailboxSender) {
        self.inner
            .local
            .lock()
            .expect("lock poisoned")
            .insert(actor, mailbox);
    }

    /// Bind `addr` (port 0 allowed) and start accepting connections.
    /// Returns the bound address.
    pub fn listen(&self, addr: SocketAddr) -> io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        let bound = listener.local_addr()?;
        *self.inner.listen_addr.lock().expect("lock poisoned") = Some(bound);
        let inner = self.inner.clone();
        let handle = std::thread::Builder::new()
            .name("planet-tcp-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if inner.closed.load(Ordering::SeqCst) {
                        break;
                    }
                    match stream {
                        Ok(stream) => {
                            let _ = TcpInner::adopt(&inner, stream);
                        }
                        Err(_) => break,
                    }
                }
            })?;
        self.inner
            .threads
            .lock()
            .expect("lock poisoned")
            .push(handle);
        Ok(bound)
    }

    /// Messages that could not be delivered (connect/write failures,
    /// unroutable destinations).
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Client submits shed so far: bounced back as timed-out `TxnDone`s
    /// because a hosted mailbox was full.
    pub fn shed(&self) -> u64 {
        self.inner.shed.load(Ordering::Relaxed)
    }

    /// `(flushes, bytes)` written so far: coalesced socket writes and the
    /// total frame bytes they carried. `bytes / flushes` is the mean flush
    /// size — the direct measure of how well writes are batching.
    pub fn io_stats(&self) -> (u64, u64) {
        (
            self.inner.flushes.load(Ordering::Relaxed),
            self.inner.bytes.load(Ordering::Relaxed),
        )
    }

    /// Close every connection and stop the acceptor and reader threads.
    pub fn stop(&self) {
        self.inner.closed.store(true, Ordering::SeqCst);
        for stream in self.inner.streams.lock().expect("lock poisoned").drain(..) {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        // Unblock the acceptor with a throwaway connection.
        if let Some(addr) = *self.inner.listen_addr.lock().expect("lock poisoned") {
            let _ = TcpStream::connect(addr);
        }
        let threads: Vec<_> = self
            .inner
            .threads
            .lock()
            .expect("lock poisoned")
            .drain(..)
            .collect();
        for handle in threads {
            let _ = handle.join();
        }
    }
}

impl TcpInner {
    /// Wire up a new connection: keep a write handle, spawn a reader.
    fn adopt(inner: &Arc<TcpInner>, stream: TcpStream) -> Option<Conn> {
        if inner.closed.load(Ordering::SeqCst) {
            return None;
        }
        let _ = stream.set_nodelay(true);
        // Bound every write: `write_batch` holds the per-connection stream
        // lock across `write_all`, so a peer that stops draining must fail
        // the write (and drop the connection) rather than park the sender —
        // and everyone queued behind the lock — forever.
        let _ = stream.set_write_timeout(Some(std::time::Duration::from_secs(10)));
        let reader = match stream.try_clone() {
            Ok(r) => r,
            Err(_) => return None,
        };
        inner
            .streams
            .lock()
            .expect("lock poisoned")
            .push(match stream.try_clone() {
                Ok(raw) => raw,
                Err(_) => return None,
            });
        let conn: Conn = Arc::new(Mutex::new(stream));
        let inner2 = inner.clone();
        let conn2 = conn.clone();
        let handle = std::thread::Builder::new()
            .name("planet-tcp-read".into())
            .spawn(move || TcpInner::read_loop(&inner2, reader, conn2))
            .ok()?;
        inner.threads.lock().expect("lock poisoned").push(handle);
        Some(conn)
    }

    /// Decode frames off one connection until EOF, delivering locally and
    /// learning reply routes. Frames are read into pooled `Arc<[u8]>`
    /// buffers and decoded zero-copy: payload fields (keys, byte values)
    /// borrow views of the receive buffer instead of allocating, and the
    /// buffer returns to the pool once every view of it is dropped.
    fn read_loop(inner: &Arc<TcpInner>, mut stream: TcpStream, conn: Conn) {
        let mut pool = wire::FramePool::new();
        loop {
            match wire::read_frame_pooled(&mut stream, &mut pool) {
                Ok(Some(env)) => {
                    // Learn the reply path: the sender is reachable down
                    // this connection (unless a static route exists).
                    let has_route = inner
                        .routes
                        .lock()
                        .expect("lock poisoned")
                        .contains_key(&env.from.0);
                    if !has_route {
                        inner
                            .peers
                            .lock()
                            .expect("lock poisoned")
                            .insert(env.from.0, conn.clone());
                    }
                    TcpInner::deliver_local(inner, env);
                }
                Ok(None) | Err(_) => return,
            }
        }
    }

    /// Deliver into a hosted mailbox under the plane's backpressure
    /// policy: block for protocol traffic, shed `Submit`s. The table lock
    /// is released before any mailbox operation (sends may block).
    fn deliver_local(inner: &Arc<TcpInner>, env: Envelope) {
        let mailbox = inner
            .local
            .lock()
            .expect("lock poisoned")
            .get(&env.to.0)
            .cloned();
        let Some(tx) = mailbox else {
            inner.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        if matches!(env.msg, Msg::Submit { .. }) {
            match tx.try_send(Packet::Env(env)) {
                Ok(()) => {}
                Err(TrySendError::Full(Packet::Env(env))) => {
                    inner.shed.fetch_add(1, Ordering::Relaxed);
                    TcpInner::bounce_submit(inner, env);
                }
                Err(_) => {
                    inner.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
        } else if tx.send(Packet::Env(env)).is_err() {
            inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Turn a shed `Submit` into a synthetic timed-out `TxnDone` to its
    /// `reply_to` — routed like any other send, so a remote load driver
    /// sees the shed as a timeout down its own connection.
    fn bounce_submit(inner: &Arc<TcpInner>, env: Envelope) {
        let Msg::Submit { reply_to, tag, .. } = env.msg else {
            return;
        };
        let bounce = Envelope {
            from: env.to,
            to: reply_to,
            msg: Msg::TxnDone {
                tag,
                txn: TxnId::new(0, 0),
                outcome: Outcome::TimedOut,
                stats: TxnStats {
                    submitted_at: SimTime::from_micros(0),
                    decided_at: SimTime::from_micros(0),
                    proposals_sent_at: SimTime::from_micros(0),
                    write_keys: 0,
                    votes_received: 0,
                    rejections: 0,
                },
            },
        };
        TcpInner::send_env(inner, bounce);
    }

    /// Resolve the connection an envelope to `dst` should go down: learned
    /// reply route first, then static route (connecting on demand).
    /// Returns `None` (and counts a drop) if `dst` is unroutable.
    fn resolve(inner: &Arc<TcpInner>, dst: u32) -> Option<(Conn, ConnKey)> {
        let peer = inner
            .peers
            .lock()
            .expect("lock poisoned")
            .get(&dst)
            .cloned();
        if let Some(conn) = peer {
            return Some((conn, ConnKey::Peer(dst)));
        }
        let addr = inner
            .routes
            .lock()
            .expect("lock poisoned")
            .get(&dst)
            .copied();
        let Some(addr) = addr else {
            inner.dropped.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        let existing = inner
            .conns
            .lock()
            .expect("lock poisoned")
            .get(&addr)
            .cloned();
        let conn = match existing {
            Some(conn) => Some(conn),
            None => match TcpStream::connect(addr) {
                Ok(stream) => {
                    let conn = TcpInner::adopt(inner, stream);
                    if let Some(conn) = &conn {
                        inner
                            .conns
                            .lock()
                            .expect("lock poisoned")
                            .insert(addr, conn.clone());
                    }
                    conn
                }
                Err(_) => None,
            },
        };
        match conn {
            Some(conn) => Some((conn, ConnKey::Addr(addr))),
            None => {
                inner.dropped.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Forget a connection after a failed write, so the next send
    /// re-resolves (and, for static routes, reconnects).
    fn invalidate(&self, key: &ConnKey) {
        match key {
            ConnKey::Peer(id) => {
                self.peers.lock().expect("lock poisoned").remove(id);
            }
            ConnKey::Addr(addr) => {
                self.conns.lock().expect("lock poisoned").remove(addr);
            }
        }
    }

    /// Encode `envs` back-to-back into one pooled buffer and write the lot
    /// with a single `write_all` under a single stream lock.
    fn write_batch(&self, conn: &Conn, envs: &[Envelope]) -> bool {
        let mut buf = self.pool.get();
        for env in envs {
            wire::encode_frame_into(env, &mut buf);
        }
        let ok = {
            let mut stream = conn.lock().expect("lock poisoned");
            // The wait is bounded: adopt() sets a write timeout on every
            // stream, so a stalled peer errors out instead of parking
            // writers behind this connection's lock forever.
            // check:allow(race)
            stream.write_all(&buf).and_then(|()| stream.flush()).is_ok()
        };
        if ok {
            self.flushes.fetch_add(1, Ordering::Relaxed);
            self.bytes.fetch_add(buf.len() as u64, Ordering::Relaxed);
        }
        self.pool.put(buf);
        ok
    }

    /// Deliver one envelope: hosted mailbox, or down a resolved connection.
    fn send_env(inner: &Arc<TcpInner>, env: Envelope) {
        if inner
            .local
            .lock()
            .expect("lock poisoned")
            .contains_key(&env.to.0)
        {
            TcpInner::deliver_local(inner, env);
            return;
        }
        let Some((conn, key)) = TcpInner::resolve(inner, env.to.0) else {
            return; // drop already counted
        };
        if !inner.write_batch(&conn, std::slice::from_ref(&env)) {
            inner.invalidate(&key);
            inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl Transport for TcpTransport {
    fn send(&self, env: Envelope) {
        TcpInner::send_env(&self.inner, env);
    }

    fn send_many(&self, envs: &mut Vec<Envelope>) {
        let inner = &self.inner;
        // Group the batch by destination connection (order within a group
        // follows batch order, so per-pair FIFO is untouched). Local
        // deliveries happen inline.
        let mut groups: Vec<(Conn, ConnKey, Vec<Envelope>)> = Vec::new();
        for env in envs.drain(..) {
            if inner
                .local
                .lock()
                .expect("lock poisoned")
                .contains_key(&env.to.0)
            {
                TcpInner::deliver_local(inner, env);
                continue;
            }
            let Some((conn, key)) = TcpInner::resolve(inner, env.to.0) else {
                continue; // drop already counted
            };
            match groups.iter_mut().find(|(c, _, _)| Arc::ptr_eq(c, &conn)) {
                Some((_, _, group)) => group.push(env),
                None => groups.push((conn, key, vec![env])),
            }
        }
        for (conn, key, group) in groups {
            if !inner.write_batch(&conn, &group) {
                inner.invalidate(&key);
                inner
                    .dropped
                    .fetch_add(group.len() as u64, Ordering::Relaxed);
            }
        }
    }
}
