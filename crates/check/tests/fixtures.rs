//! Fixture tests: prove each pass actually fires, with file:line anchored
//! diagnostics, by feeding the pipeline deliberately broken in-memory
//! workspaces via `Workspace::from_sources`.

use planet_check::{run_passes, Workspace};

fn ws(files: &[(&str, &str)]) -> Workspace {
    Workspace::from_sources(
        files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect(),
    )
}

fn run(ws: &Workspace, pass: &str) -> Vec<planet_check::Diagnostic> {
    run_passes(ws, &[pass.to_string()])
}

// ---- wire ----

const FIXTURE_MESSAGES: &str = r#"
pub enum Msg {
    Submit { spec: u32, reply_to: u64, tag: u64 },
    Crash,
    Decide(u32, u64),
}
"#;

#[test]
fn wire_missing_decode_arm_fires_with_variant_name() {
    let w = ws(&[
        ("crates/mdcc/src/messages.rs", FIXTURE_MESSAGES),
        (
            "crates/cluster/src/wire.rs",
            r#"
pub fn put_msg(buf: &mut Vec<u8>, msg: &Msg) {
    match msg {
        Msg::Submit { spec, reply_to, tag } => {}
        Msg::Crash => {}
        Msg::Decide(a, b) => {}
    }
}
pub fn get_msg(buf: &[u8]) -> Msg {
    match tag {
        0 => Msg::Submit { spec: s, reply_to: r, tag: t },
        2 => Msg::Decide(a, b),
        _ => panic!(),
    }
}
"#,
        ),
    ]);
    let diags = run(&w, "wire");
    let hit = diags
        .iter()
        .find(|d| d.code == "WIRE002")
        .expect("WIRE002 must fire");
    assert!(hit.message.contains("Msg::Crash"), "{}", hit.message);
    assert!(hit.message.contains("get_msg"));
    // Anchored at the variant's declaration line in the enum file.
    assert_eq!(hit.file, "crates/mdcc/src/messages.rs");
    assert_eq!(hit.line, 4);
}

#[test]
fn wire_field_count_mismatch_fires_at_codec_line() {
    let w = ws(&[
        ("crates/mdcc/src/messages.rs", FIXTURE_MESSAGES),
        (
            "crates/cluster/src/wire.rs",
            r#"
pub fn put_msg(buf: &mut Vec<u8>, msg: &Msg) {
    match msg {
        Msg::Submit { spec, reply_to } => {}
        Msg::Crash => {}
        Msg::Decide(a, b) => {}
    }
}
pub fn get_msg(buf: &[u8]) -> Msg {
    match tag {
        0 => Msg::Submit { spec: s, reply_to: r, tag: t },
        1 => Msg::Crash,
        2 => Msg::Decide(a, b),
        _ => panic!(),
    }
}
"#,
        ),
    ]);
    let diags = run(&w, "wire");
    let hit = diags
        .iter()
        .find(|d| d.code == "WIRE003")
        .expect("WIRE003 must fire for the 2-field encode of a 3-field variant");
    assert!(hit.message.contains("Msg::Submit"));
    assert!(hit.message.contains("handles 2 field(s)"));
    assert_eq!(hit.file, "crates/cluster/src/wire.rs");
    assert_eq!(hit.line, 4);
    // The complete decode side is clean.
    assert!(!diags
        .iter()
        .any(|d| d.code == "WIRE002" || d.code == "WIRE004"));
}

#[test]
fn wire_clean_codec_is_quiet() {
    let w = ws(&[
        ("crates/mdcc/src/messages.rs", FIXTURE_MESSAGES),
        (
            "crates/cluster/src/wire.rs",
            r#"
pub fn put_msg(buf: &mut Vec<u8>, msg: &Msg) {
    match msg {
        Msg::Submit { spec, reply_to, tag } => {}
        Msg::Crash => {}
        Msg::Decide(a, b) => {}
    }
}
pub fn get_msg(buf: &[u8]) -> Msg {
    match tag {
        0 => Msg::Submit { spec: s, reply_to: r, tag: t },
        1 => Msg::Crash,
        2 => Msg::Decide(a, b),
        _ => panic!(),
    }
}
"#,
        ),
    ]);
    let diags = run(&w, "wire");
    assert!(
        !diags
            .iter()
            .any(|d| d.code.starts_with("WIRE00") && d.code <= "WIRE004"),
        "clean codec must not produce arm/field diagnostics: {diags:?}"
    );
}

// ---- state ----

#[test]
fn state_illegal_transition_fires() {
    // A timeout handler that commits: `Committed` is outside handle_timeout's
    // legal-edge set (votes may still be in flight).
    let w = ws(&[(
        "crates/mdcc/src/coordinator.rs",
        r#"
impl CoordinatorActor {
    fn handle_timeout(&mut self, txn: TxnId, ctx: &mut Ctx) {
        self.finish(txn, Outcome::Committed, ctx);
    }
}
"#,
    )]);
    let diags = run(&w, "state");
    let hit = diags
        .iter()
        .find(|d| d.code == "STATE001")
        .expect("STATE001 must fire");
    assert!(hit.message.contains("handle_timeout"));
    assert!(hit.message.contains("outcome:Committed"));
    assert_eq!(hit.file, "crates/mdcc/src/coordinator.rs");
    assert_eq!(hit.line, 4);
}

#[test]
fn state_missing_required_edge_fires() {
    // An apply handler that no longer installs anything has silently dropped
    // a protocol edge.
    let w = ws(&[(
        "crates/mdcc/src/replica_actor.rs",
        r#"
impl ReplicaActor {
    fn handle_apply(&mut self, key: Key) {
        let _ = key;
    }
}
"#,
    )]);
    let diags = run(&w, "state");
    let hit = diags
        .iter()
        .find(|d| d.code == "STATE002")
        .expect("STATE002 must fire");
    assert!(hit.message.contains("handle_apply"));
    assert!(hit.message.contains("install"));
}

#[test]
fn state_speculative_commit_guard_fires() {
    // Proposal validation deciding/installing = a commit from an unprepared
    // state.
    let w = ws(&[(
        "crates/mdcc/src/replica_actor.rs",
        r#"
impl ReplicaActor {
    fn handle_fast_propose(&mut self, key: Key, txn: TxnId) {
        self.storage.decide(&key, txn, true);
    }
}
"#,
    )]);
    let diags = run(&w, "state");
    let hit = diags
        .iter()
        .find(|d| d.code == "STATE001")
        .expect("STATE001 must fire for decide in a propose handler");
    assert!(hit.message.contains("handle_fast_propose"));
    assert!(hit.message.contains("decide:commit"));
    assert_eq!(hit.line, 4);
}

#[test]
fn state_unrouted_key_send_fires() {
    // A coordinator helper that fans a key-carrying Decide out to a replica
    // picked without consulting the shard map: per-key ordering is gone.
    let w = ws(&[(
        "crates/mdcc/src/coordinator.rs",
        r#"
impl CoordinatorActor {
    fn finish(&mut self, txn: TxnId, ctx: &mut Ctx) {
        let target = self.replicas[0];
        ctx.send(target, Msg::Decide { txn, key, commit: true });
    }
}
"#,
    )]);
    let diags = run(&w, "state");
    let hit = diags
        .iter()
        .find(|d| d.code == "STATE006")
        .expect("STATE006 must fire for an unrouted Decide send");
    assert!(hit.message.contains("finish"), "{}", hit.message);
    assert!(hit.message.contains("Msg::Decide"));
    assert_eq!(hit.file, "crates/mdcc/src/coordinator.rs");
    assert_eq!(hit.line, 5);
}

#[test]
fn state_shard_routed_send_is_quiet() {
    // The same send resolved through the shard map is legal, and so are
    // reply-routed messages (Vote) and dispatchers that only pattern-match.
    let w = ws(&[(
        "crates/mdcc/src/coordinator.rs",
        r#"
impl CoordinatorActor {
    fn finish(&mut self, txn: TxnId, ctx: &mut Ctx) {
        let target = self.master_replica_for(&key);
        ctx.send(target, Msg::Decide { txn, key, commit: true });
    }
    fn reply(&mut self, coordinator: ActorId, ctx: &mut Ctx) {
        ctx.send(coordinator, Msg::Vote { txn, key, accept: true });
    }
    fn dispatch(&mut self, msg: Msg) {
        match msg {
            Msg::Decide { txn, key, commit } => self.on_decide(txn, key, commit),
            _ => {}
        }
    }
}
"#,
    )]);
    let diags = run(&w, "state");
    assert!(
        !diags.iter().any(|d| d.code == "STATE006"),
        "routed/reply/dispatch-only code must be quiet: {diags:?}"
    );
}

#[test]
fn state_allow_marker_silences_shard_routing() {
    let w = ws(&[(
        "crates/mdcc/src/replica_actor.rs",
        r#"
impl ReplicaActor {
    fn resend(&mut self, target: ActorId, ctx: &mut Ctx) {
        // check:allow(shard_routing)
        ctx.send(target, Msg::Replicate { txn, key });
    }
}
"#,
    )]);
    let diags = run(&w, "state");
    assert!(
        !diags.iter().any(|d| d.code == "STATE006"),
        "allow marker must silence STATE006: {diags:?}"
    );
}

// ---- locks ----

#[test]
fn lock_order_cycle_fires() {
    let w = ws(&[(
        "crates/cluster/src/node.rs",
        r#"
impl Node {
    fn route_then_conn(&self) {
        let g = self.routes.lock().unwrap();
        self.conns.lock().unwrap().clear();
    }
    fn conn_then_route(&self) {
        let g = self.conns.lock().unwrap();
        self.routes.lock().unwrap().clear();
    }
}
"#,
    )]);
    let diags = run(&w, "locks");
    let hit = diags
        .iter()
        .find(|d| d.code == "LOCK001")
        .expect("LOCK001 must fire on an order inversion");
    assert!(hit.message.contains("routes") && hit.message.contains("conns"));
    assert_eq!(hit.file, "crates/cluster/src/node.rs");
    assert!(hit.line > 1);
}

#[test]
fn lock_self_reacquisition_fires() {
    let w = ws(&[(
        "crates/cluster/src/node.rs",
        r#"
impl Node {
    fn double_lock(&self) {
        let g = self.routes.lock().unwrap();
        self.routes.lock().unwrap().clear();
    }
}
"#,
    )]);
    let diags = run(&w, "locks");
    let hit = diags
        .iter()
        .find(|d| d.code == "LOCK002")
        .expect("LOCK002 must fire on re-locking a held lock");
    assert!(hit.message.contains("routes"));
    assert_eq!(hit.line, 5);
}

#[test]
fn lock_cycle_through_same_file_call_fires() {
    // a holds `routes` and calls helper; helper locks `conns`; b orders them
    // the other way round directly.
    let w = ws(&[(
        "crates/cluster/src/node.rs",
        r#"
impl Node {
    fn helper(&self) {
        self.conns.lock().unwrap().clear();
    }
    fn a(&self) {
        let g = self.routes.lock().unwrap();
        helper();
    }
    fn b(&self) {
        let g = self.conns.lock().unwrap();
        self.routes.lock().unwrap().clear();
    }
}
"#,
    )]);
    let diags = run(&w, "locks");
    assert!(
        diags.iter().any(|d| d.code == "LOCK001"),
        "call-through edge must close the cycle: {diags:?}"
    );
}

#[test]
fn lock_plain_if_condition_guard_is_not_held() {
    // The tcp.rs send() shape: a plain `if` condition's guard temporary is
    // dropped before the block runs, so re-locking inside is fine.
    let w = ws(&[(
        "crates/cluster/src/tcp.rs",
        r#"
impl Transport {
    fn send(&self) {
        if self.local.lock().unwrap().contains_key(&k) {
            self.deliver(env);
        }
    }
    fn deliver(&self) {
        let mailbox = self.local.lock().unwrap().get(&k).cloned();
    }
}
"#,
    )]);
    let diags = run(&w, "locks");
    assert!(
        diags.is_empty(),
        "plain-if condition must not count as held: {diags:?}"
    );
}

// ---- determinism ----

#[test]
fn determinism_instant_now_fires() {
    let w = ws(&[(
        "crates/sim/src/engine.rs",
        r#"
fn tick() -> u64 {
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}
"#,
    )]);
    let diags = run(&w, "determinism");
    let hit = diags
        .iter()
        .find(|d| d.code == "DET001")
        .expect("DET001 must fire on Instant in a sim crate");
    assert_eq!(hit.file, "crates/sim/src/engine.rs");
    assert_eq!(hit.line, 3);
}

#[test]
fn determinism_allow_marker_suppresses() {
    let w = ws(&[(
        "crates/sim/src/engine.rs",
        r#"
fn tick() -> u64 {
    // check:allow(determinism): diagnostics only, never affects replay
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}
"#,
    )]);
    let diags = run(&w, "determinism");
    assert!(diags.is_empty(), "allow marker must suppress: {diags:?}");
}

#[test]
fn determinism_hash_iteration_fires_and_cfg_test_is_exempt() {
    let w = ws(&[(
        "crates/mdcc/src/some_actor.rs",
        r#"
struct S {
    pending: HashMap<u64, u32>,
}
impl S {
    fn drain_all(&mut self) {
        for k in self.pending.keys() {
            emit(k);
        }
    }
}
#[cfg(test)]
mod tests {
    fn in_tests_is_fine() {
        let m: HashMap<u32, u32> = HashMap::new();
        for k in m.keys() {}
    }
}
"#,
    )]);
    let diags = run(&w, "determinism");
    let hits: Vec<_> = diags.iter().filter(|d| d.code == "DET004").collect();
    assert_eq!(hits.len(), 1, "exactly the non-test site: {diags:?}");
    assert_eq!(hits[0].line, 7);
    assert!(hits[0].message.contains("pending"));
}

#[test]
fn determinism_thread_rng_fires() {
    let w = ws(&[(
        "crates/workload/src/gen.rs",
        "fn pick() -> u64 { thread_rng().gen() }\n",
    )]);
    let diags = run(&w, "determinism");
    assert!(
        diags.iter().any(|d| d.code == "DET003"),
        "DET003 must fire on thread_rng: {diags:?}"
    );
}

// ---- time ----

#[test]
fn time_unarmed_wait_insert_fires_on_bare_branch() {
    // One branch arms TxnTimeout next to the inflight insert, the other
    // registers the wait bare: only the bare one is a liveness hole.
    let w = ws(&[(
        "crates/mdcc/src/coordinator.rs",
        r#"
impl CoordinatorActor {
    fn submit(&mut self, txn: TxnId, ctx: &mut Ctx) {
        if fast {
            self.inflight.insert(txn, state);
            ctx.schedule(delay, Msg::TxnTimeout { txn });
        } else {
            self.inflight.insert(txn, state);
        }
    }
    fn on_message(&mut self, msg: Msg) {
        match msg {
            Msg::TxnTimeout { txn } => self.reap(txn),
            _ => {}
        }
    }
}
"#,
    )]);
    let diags = run(&w, "time");
    let hits: Vec<_> = diags.iter().filter(|d| d.code == "TIME001").collect();
    assert_eq!(hits.len(), 1, "exactly the unarmed insert: {diags:?}");
    assert_eq!(hits[0].file, "crates/mdcc/src/coordinator.rs");
    assert_eq!(hits[0].line, 8);
    assert!(hits[0].message.contains("inflight"));
    assert!(hits[0].message.contains("TxnTimeout"));
}

#[test]
fn time_armed_wait_insert_is_quiet() {
    let w = ws(&[(
        "crates/mdcc/src/coordinator.rs",
        r#"
impl CoordinatorActor {
    fn submit(&mut self, txn: TxnId, ctx: &mut Ctx) {
        self.inflight.insert(txn, state);
        ctx.schedule(delay, Msg::TxnTimeout { txn });
    }
    fn on_message(&mut self, msg: Msg) {
        match msg {
            Msg::TxnTimeout { txn } => self.reap(txn),
            _ => {}
        }
    }
}
"#,
    )]);
    let diags = run(&w, "time");
    assert!(
        !diags.iter().any(|d| d.code == "TIME001"),
        "insert and schedule share a path: {diags:?}"
    );
}

#[test]
fn time_allow_marker_silences_unarmed_insert() {
    let w = ws(&[(
        "crates/mdcc/src/coordinator.rs",
        r#"
impl CoordinatorActor {
    fn adopt(&mut self, txn: TxnId) {
        // check:allow(time): adopted entries are swept by the lease GC
        self.inflight.insert(txn, state);
    }
    fn on_message(&mut self, msg: Msg, ctx: &mut Ctx) {
        ctx.schedule(delay, Msg::TxnTimeout { txn });
        match msg {
            Msg::TxnTimeout { txn } => self.reap(txn),
            _ => {}
        }
    }
}
"#,
    )]);
    let diags = run(&w, "time");
    assert!(
        !diags.iter().any(|d| d.code == "TIME001"),
        "allow marker must silence TIME001: {diags:?}"
    );
}

#[test]
fn time_scheduled_but_unhandled_timer_fires() {
    let w = ws(&[(
        "crates/mdcc/src/gc.rs",
        r#"
impl GcActor {
    fn arm(&mut self, ctx: &mut Ctx) {
        ctx.schedule(delay, Msg::GcTick);
    }
}
"#,
    )]);
    let diags = run(&w, "time");
    let hit = diags
        .iter()
        .find(|d| d.code == "TIME002")
        .expect("TIME002 must fire for an unhandled timer");
    assert!(hit.message.contains("Msg::GcTick"));
    assert_eq!(hit.file, "crates/mdcc/src/gc.rs");
    assert_eq!(hit.line, 4);
}

#[test]
fn time_handled_timer_is_quiet() {
    let w = ws(&[(
        "crates/mdcc/src/gc.rs",
        r#"
impl GcActor {
    fn arm(&mut self, ctx: &mut Ctx) {
        ctx.schedule(delay, Msg::GcTick);
    }
    fn on_message(&mut self, msg: Msg) {
        match msg {
            Msg::GcTick => self.sweep(),
            _ => {}
        }
    }
}
"#,
    )]);
    let diags = run(&w, "time");
    assert!(
        !diags.iter().any(|d| d.code == "TIME002"),
        "handled timer must be quiet: {diags:?}"
    );
}

#[test]
fn time_oneshot_handler_insert_without_rearm_fires() {
    // The `recent` map shape: only the TxnTimeout handler reclaims it, and
    // the handler path inserts after consuming the one-shot timer.
    let w = ws(&[(
        "crates/mdcc/src/coordinator.rs",
        r#"
impl CoordinatorActor {
    fn begin(&mut self, txn: TxnId, ctx: &mut Ctx) {
        self.inflight.insert(txn, state);
        ctx.schedule(delay, Msg::TxnTimeout { txn });
    }
    fn on_message(&mut self, msg: Msg, ctx: &mut Ctx) {
        match msg {
            Msg::TxnTimeout { txn } => self.handle_timeout(txn, ctx),
            _ => {}
        }
    }
    fn handle_timeout(&mut self, txn: TxnId, ctx: &mut Ctx) {
        let gone = self.recent.remove(&txn);
        self.recent.insert(txn, gone);
    }
}
"#,
    )]);
    let diags = run(&w, "time");
    let hit = diags
        .iter()
        .find(|d| d.code == "TIME003")
        .expect("TIME003 must fire for the starved one-shot sweep");
    assert!(hit.message.contains("recent"));
    assert!(hit.message.contains("TxnTimeout"));
    assert!(hit.message.contains("handle_timeout"));
    assert_eq!(hit.file, "crates/mdcc/src/coordinator.rs");
    assert_eq!(hit.line, 15);
}

#[test]
fn time_oneshot_handler_that_rearms_is_quiet() {
    let w = ws(&[(
        "crates/mdcc/src/coordinator.rs",
        r#"
impl CoordinatorActor {
    fn begin(&mut self, txn: TxnId, ctx: &mut Ctx) {
        self.inflight.insert(txn, state);
        ctx.schedule(delay, Msg::TxnTimeout { txn });
    }
    fn on_message(&mut self, msg: Msg, ctx: &mut Ctx) {
        match msg {
            Msg::TxnTimeout { txn } => self.handle_timeout(txn, ctx),
            _ => {}
        }
    }
    fn handle_timeout(&mut self, txn: TxnId, ctx: &mut Ctx) {
        let gone = self.recent.remove(&txn);
        self.recent.insert(txn, gone);
        ctx.schedule(delay, Msg::TxnTimeout { txn });
    }
}
"#,
    )]);
    let diags = run(&w, "time");
    assert!(
        !diags.iter().any(|d| d.code == "TIME003"),
        "re-armed handler must be quiet: {diags:?}"
    );
}

// ---- callback ----

#[test]
fn callback_lock_in_registered_closure_fires() {
    let w = ws(&[(
        "crates/core/src/txn.rs",
        r#"
impl PlanetTxn {
    fn register(&mut self) {
        self.callbacks.push(Box::new(move |ev| {
            let g = state.lock();
            g.record(ev);
        }));
    }
}
"#,
    )]);
    let diags = run(&w, "callback");
    let hit = diags
        .iter()
        .find(|d| d.code == "CB001")
        .expect("CB001 must fire on a lock in a callback");
    assert_eq!(hit.file, "crates/core/src/txn.rs");
    assert_eq!(hit.line, 5);
}

#[test]
fn callback_lock_via_same_file_helper_fires() {
    // The closure itself is clean; the helper it calls takes the lock.
    let w = ws(&[(
        "crates/core/src/txn.rs",
        r#"
impl PlanetTxn {
    fn register(&mut self) {
        self.on_progress(move |ev| apply(ev));
    }
}
fn apply(ev: Event) {
    let g = STATE.lock();
    g.record(ev);
}
"#,
    )]);
    let diags = run(&w, "callback");
    let hit = diags
        .iter()
        .find(|d| d.code == "CB001")
        .expect("CB001 must follow the call into the helper");
    assert_eq!(hit.line, 8);
}

#[test]
fn callback_blocking_recv_and_sync_channel_fire() {
    let w = ws(&[(
        "crates/core/src/txn.rs",
        r#"
impl PlanetTxn {
    fn register(&mut self) {
        self.callbacks.push(Box::new(move |ev| {
            let ack = reply_rx.recv();
            let (tx, rx) = sync_channel(1);
        }));
    }
}
"#,
    )]);
    let diags = run(&w, "callback");
    let hits: Vec<_> = diags.iter().filter(|d| d.code == "CB002").collect();
    assert_eq!(hits.len(), 2, "recv + sync_channel: {diags:?}");
    assert_eq!(hits[0].line, 5);
    assert_eq!(hits[1].line, 6);
}

#[test]
fn callback_engine_reentry_fires() {
    let w = ws(&[(
        "crates/core/src/txn.rs",
        r#"
impl PlanetTxn {
    fn register(&mut self) {
        self.on_progress(move |ev| {
            engine.submit(follow_up(ev));
        });
    }
}
"#,
    )]);
    let diags = run(&w, "callback");
    let hit = diags
        .iter()
        .find(|d| d.code == "CB003")
        .expect("CB003 must fire on submit from a callback");
    assert!(hit.message.contains("submit"));
    assert_eq!(hit.line, 5);
}

#[test]
fn callback_nonblocking_forward_is_quiet() {
    let w = ws(&[(
        "crates/core/src/txn.rs",
        r#"
impl PlanetTxn {
    fn register(&mut self) {
        self.callbacks.push(Box::new(move |ev| {
            let _ = tx.send(ev);
        }));
    }
}
"#,
    )]);
    let diags = run(&w, "callback");
    assert!(
        diags.is_empty(),
        "an unbounded-channel forward is the sanctioned shape: {diags:?}"
    );
}

#[test]
fn callback_allow_marker_suppresses() {
    let w = ws(&[(
        "crates/core/src/txn.rs",
        r#"
impl PlanetTxn {
    fn register(&mut self) {
        self.callbacks.push(Box::new(move |ev| {
            // check:allow(callback): metrics mutex is never held across fire
            let g = metrics.lock();
            g.bump(ev);
        }));
    }
}
"#,
    )]);
    let diags = run(&w, "callback");
    assert!(diags.is_empty(), "allow marker must suppress: {diags:?}");
}

// ---- panic ----

#[test]
fn panic_unwrap_reachable_from_on_message_fires() {
    // The unwrap is two hops from the drive loop; reachability must find it.
    let w = ws(&[(
        "crates/mdcc/src/replica_actor.rs",
        r#"
impl ReplicaActor {
    fn on_message(&mut self, msg: Msg) {
        self.handle(msg);
    }
    fn handle(&mut self, msg: Msg) {
        let rec = self.store.get(&key).unwrap();
        rec.bump();
    }
}
"#,
    )]);
    let diags = run(&w, "panic");
    let hit = diags
        .iter()
        .find(|d| d.code == "PANIC001")
        .expect("PANIC001 must fire on the reachable unwrap");
    assert!(hit.message.contains("handle"));
    assert_eq!(hit.file, "crates/mdcc/src/replica_actor.rs");
    assert_eq!(hit.line, 7);
}

#[test]
fn panic_expect_in_cluster_drive_loop_fires() {
    let w = ws(&[(
        "crates/cluster/src/node.rs",
        r#"
fn run_node(rx: Receiver<Msg>) {
    loop {
        let msg = rx.recv().expect("channel closed");
        dispatch(msg);
    }
}
"#,
    )]);
    let diags = run(&w, "panic");
    let hit = diags
        .iter()
        .find(|d| d.code == "PANIC001")
        .expect("PANIC001 must fire in run_node");
    assert!(hit.message.contains("run_node"));
    assert_eq!(hit.file, "crates/cluster/src/node.rs");
    assert_eq!(hit.line, 4);
}

#[test]
fn panic_macro_and_index_fire_as_panic002() {
    let w = ws(&[(
        "crates/mdcc/src/replica_actor.rs",
        r#"
impl ReplicaActor {
    fn on_message(&mut self, msg: Msg) {
        match msg {
            Msg::Decide { txn } => self.decide(txn),
            _ => unreachable!(),
        }
        let first = self.peers[0];
    }
}
"#,
    )]);
    let diags = run(&w, "panic");
    let hits: Vec<_> = diags.iter().filter(|d| d.code == "PANIC002").collect();
    assert_eq!(hits.len(), 2, "macro + index: {diags:?}");
    assert_eq!(hits[0].line, 6);
    assert_eq!(hits[1].line, 8);
}

#[test]
fn panic_checked_get_is_quiet_and_allow_suppresses() {
    let w = ws(&[(
        "crates/mdcc/src/replica_actor.rs",
        r#"
impl ReplicaActor {
    fn on_message(&mut self, msg: Msg) {
        let Some(rec) = self.store.get(&key) else {
            return;
        };
        // check:allow(panic): shard index asserted at construction
        let peer = self.peers[rec.shard];
    }
}
"#,
    )]);
    let diags = run(&w, "panic");
    assert!(
        diags.is_empty(),
        "checked lookup + allowed index must be quiet: {diags:?}"
    );
}

#[test]
fn panic_unwrap_in_test_module_is_exempt() {
    let w = ws(&[(
        "crates/mdcc/src/replica_actor.rs",
        r#"
impl ReplicaActor {
    fn on_message(&mut self, msg: Msg) {
        self.apply(msg);
    }
    fn apply(&mut self, msg: Msg) {
        let _ = msg;
    }
}
#[cfg(test)]
mod tests {
    fn on_message(h: &mut Harness) {
        h.queue.pop().unwrap();
    }
}
"#,
    )]);
    let diags = run(&w, "panic");
    assert!(diags.is_empty(), "test-module roots are exempt: {diags:?}");
}

// ---- flow ----

#[test]
fn flow_unrouted_variant_fires_at_declaration() {
    let w = ws(&[(
        "crates/mdcc/src/messages.rs",
        r#"
pub enum Msg {
    Submit { spec: u32, reply_to: u64, tag: u64 },
    Sideband { blob: u64 },
}
"#,
    )]);
    let diags = run(&w, "flow");
    let hit = diags
        .iter()
        .find(|d| d.code == "FLOW001")
        .expect("FLOW001 must fire for a variant outside the routing table");
    assert!(hit.message.contains("Msg::Sideband"), "{}", hit.message);
    assert_eq!(hit.file, "crates/mdcc/src/messages.rs");
    assert_eq!(hit.line, 4);
}

#[test]
fn flow_allow_marker_silences_unrouted_variant() {
    let w = ws(&[(
        "crates/mdcc/src/messages.rs",
        r#"
pub enum Msg {
    Submit { spec: u32, reply_to: u64, tag: u64 },
    // check:allow(flow): reserved for the debug fabric
    Sideband { blob: u64 },
}
"#,
    )]);
    let diags = run(&w, "flow");
    assert!(
        !diags.iter().any(|d| d.code == "FLOW001"),
        "allow marker must silence FLOW001: {diags:?}"
    );
}

#[test]
fn flow_sent_but_never_matched_by_role_fires_at_send() {
    // Crash routes to the replica; the coordinator injects it but the
    // replica file never matches it — the message is silently dropped.
    let w = ws(&[
        (
            "crates/mdcc/src/messages.rs",
            "\npub enum Msg {\n    Crash,\n}\n",
        ),
        (
            "crates/mdcc/src/coordinator.rs",
            r#"
impl CoordinatorActor {
    fn inject(&mut self, ctx: &mut Ctx) {
        ctx.send(self.victim, Msg::Crash);
    }
}
"#,
        ),
        (
            "crates/mdcc/src/replica_actor.rs",
            r#"
impl ReplicaActor {
    fn on_message(&mut self, msg: Msg) {
        let _ = msg;
    }
}
"#,
        ),
    ]);
    let diags = run(&w, "flow");
    let hit = diags
        .iter()
        .find(|d| d.code == "FLOW001")
        .expect("FLOW001 must fire at the unanswered send");
    assert!(hit.message.contains("Msg::Crash"), "{}", hit.message);
    assert!(hit.message.contains("replica"), "{}", hit.message);
    assert_eq!(hit.file, "crates/mdcc/src/coordinator.rs");
    assert_eq!(hit.line, 4);
}

#[test]
fn flow_sent_and_matched_by_role_is_quiet() {
    let w = ws(&[
        (
            "crates/mdcc/src/messages.rs",
            "\npub enum Msg {\n    Crash,\n}\n",
        ),
        (
            "crates/mdcc/src/coordinator.rs",
            r#"
impl CoordinatorActor {
    fn inject(&mut self, ctx: &mut Ctx) {
        ctx.send(self.victim, Msg::Crash);
    }
}
"#,
        ),
        (
            "crates/mdcc/src/replica_actor.rs",
            r#"
impl ReplicaActor {
    fn on_message(&mut self, msg: Msg) {
        match msg {
            Msg::Crash => self.crash(),
            _ => {}
        }
    }
}
"#,
        ),
    ]);
    let diags = run(&w, "flow");
    assert!(
        diags.is_empty(),
        "routed + handled must be quiet: {diags:?}"
    );
}

#[test]
fn flow_request_without_reply_or_timer_fires() {
    // ReadReq is a request: its replica handler must reach a ReadResp send
    // or arm a timer on every path. This one does neither.
    let w = ws(&[
        (
            "crates/mdcc/src/messages.rs",
            "\npub enum Msg {\n    ReadReq { key: u32, from: u64 },\n    ReadResp { key: u32 },\n}\n",
        ),
        (
            "crates/mdcc/src/coordinator.rs",
            r#"
impl CoordinatorActor {
    fn read(&mut self, ctx: &mut Ctx) {
        ctx.send(self.replica, Msg::ReadReq { key, from });
    }
}
"#,
        ),
        (
            "crates/mdcc/src/replica_actor.rs",
            r#"
impl ReplicaActor {
    fn on_message(&mut self, msg: Msg, ctx: &mut Ctx) {
        match msg {
            Msg::ReadReq { key, from } => self.note(key),
            _ => {}
        }
    }
}
"#,
        ),
    ]);
    let diags = run(&w, "flow");
    let hit = diags
        .iter()
        .find(|d| d.code == "FLOW002")
        .expect("FLOW002 must fire for the reply-less handler");
    assert!(hit.message.contains("Msg::ReadReq"), "{}", hit.message);
    assert!(hit.message.contains("Msg::ReadResp"), "{}", hit.message);
    assert_eq!(hit.file, "crates/mdcc/src/replica_actor.rs");
    assert_eq!(hit.line, 5);
}

#[test]
fn flow_request_replying_through_other_crate_is_quiet() {
    // The reply send lives two crates away; only the workspace-wide call
    // graph (use-path import resolution) can see the handler reaches it.
    let w = ws(&[
        (
            "crates/mdcc/src/messages.rs",
            "\npub enum Msg {\n    ReadReq { key: u32, from: u64 },\n    ReadResp { key: u32 },\n}\n",
        ),
        (
            "crates/mdcc/src/coordinator.rs",
            r#"
impl CoordinatorActor {
    fn read(&mut self, ctx: &mut Ctx) {
        ctx.send(self.replica, Msg::ReadReq { key, from });
    }
}
"#,
        ),
        (
            "crates/mdcc/src/replica_actor.rs",
            r#"
use planet_util::reply_read;

impl ReplicaActor {
    fn on_message(&mut self, msg: Msg, ctx: &mut Ctx) {
        match msg {
            Msg::ReadReq { key, from } => reply_read(ctx, from, key),
            _ => {}
        }
    }
}
"#,
        ),
        (
            "crates/util/src/lib.rs",
            r#"
pub fn reply_read(ctx: &mut Ctx, from: u64, key: u32) {
    ctx.send(from, Msg::ReadResp { key });
}
"#,
        ),
    ]);
    let diags = run(&w, "flow");
    assert!(
        !diags.iter().any(|d| d.code == "FLOW002"),
        "cross-crate reply must satisfy the request: {diags:?}"
    );
}

#[test]
fn flow_request_arming_timer_on_every_path_is_quiet() {
    let w = ws(&[
        (
            "crates/mdcc/src/messages.rs",
            "\npub enum Msg {\n    ReadReq { key: u32, from: u64 },\n    ReadResp { key: u32 },\n}\n",
        ),
        (
            "crates/mdcc/src/coordinator.rs",
            r#"
impl CoordinatorActor {
    fn read(&mut self, ctx: &mut Ctx) {
        ctx.send(self.replica, Msg::ReadReq { key, from });
    }
}
"#,
        ),
        (
            "crates/mdcc/src/replica_actor.rs",
            r#"
impl ReplicaActor {
    fn on_message(&mut self, msg: Msg, ctx: &mut Ctx) {
        ctx.schedule(self.sweep_every, Msg::Retry { key: 0 });
        match msg {
            Msg::ReadReq { key, from } => self.deferred.push(key),
            _ => {}
        }
    }
}
"#,
        ),
    ]);
    let diags = run(&w, "flow");
    assert!(
        !diags.iter().any(|d| d.code == "FLOW002"),
        "a timer armed on every path through the handler satisfies the request: {diags:?}"
    );
}

#[test]
fn flow_client_submit_without_timer_fires_and_allow_suppresses() {
    let submit_only = r#"
impl LoadClient {
    fn submit_next(&mut self, ctx: &mut Ctx) {
        ctx.send(self.coordinator, Msg::Submit { spec, reply_to, tag });
    }
}
"#;
    let w = ws(&[
        (
            "crates/mdcc/src/messages.rs",
            "\npub enum Msg {\n    Submit { spec: u32, reply_to: u64, tag: u64 },\n}\n",
        ),
        ("crates/cluster/src/load.rs", submit_only),
    ]);
    let diags = run(&w, "flow");
    let hit = diags
        .iter()
        .find(|d| d.code == "FLOW002")
        .expect("FLOW002 must fire for the timer-less client");
    assert!(hit.message.contains("closed loop"), "{}", hit.message);
    assert_eq!(hit.file, "crates/cluster/src/load.rs");
    assert_eq!(hit.line, 4);

    let allowed = submit_only.replace(
        "        ctx.send(",
        "        // check:allow(flow)\n        ctx.send(",
    );
    let w = ws(&[
        (
            "crates/mdcc/src/messages.rs",
            "\npub enum Msg {\n    Submit { spec: u32, reply_to: u64, tag: u64 },\n}\n",
        ),
        ("crates/cluster/src/load.rs", &allowed),
    ]);
    let diags = run(&w, "flow");
    assert!(
        !diags.iter().any(|d| d.code == "FLOW002"),
        "allow marker must silence FLOW002: {diags:?}"
    );
}

#[test]
fn flow_client_submit_with_timer_is_quiet() {
    let w = ws(&[
        (
            "crates/mdcc/src/messages.rs",
            "\npub enum Msg {\n    Submit { spec: u32, reply_to: u64, tag: u64 },\n}\n",
        ),
        (
            "crates/cluster/src/load.rs",
            r#"
impl LoadClient {
    fn submit_next(&mut self, ctx: &mut Ctx) {
        ctx.send(self.coordinator, Msg::Submit { spec, reply_to, tag });
        ctx.schedule(self.resubmit_timeout, Msg::ClientTimer { kind: 1, tag });
    }
}
"#,
        ),
    ]);
    let diags = run(&w, "flow");
    assert!(
        !diags.iter().any(|d| d.code == "FLOW002"),
        "a client that arms deadlines is quiet: {diags:?}"
    );
}

#[test]
fn flow_dead_variant_fires_at_declaration_and_allow_suppresses() {
    let w = ws(&[
        (
            "crates/mdcc/src/messages.rs",
            "\npub enum Msg {\n    Recover,\n}\n",
        ),
        (
            "crates/mdcc/src/replica_actor.rs",
            r#"
impl ReplicaActor {
    fn on_message(&mut self, msg: Msg) {
        match msg {
            Msg::Recover => self.recover(),
            _ => {}
        }
    }
}
"#,
        ),
    ]);
    let diags = run(&w, "flow");
    let hit = diags
        .iter()
        .find(|d| d.code == "FLOW003")
        .expect("FLOW003 must fire for a never-sent variant");
    assert!(hit.message.contains("never sent"), "{}", hit.message);
    assert_eq!(hit.file, "crates/mdcc/src/messages.rs");
    assert_eq!(hit.line, 3);

    let w = ws(&[(
        "crates/mdcc/src/messages.rs",
        "\npub enum Msg {\n    // check:allow(flow): fault-injection only\n    Recover,\n}\n",
    )]);
    let diags = run(&w, "flow");
    assert!(
        !diags.iter().any(|d| d.code == "FLOW003"),
        "allow marker must silence FLOW003: {diags:?}"
    );
}

#[test]
fn flow_shed_submit_without_synthetic_txn_done_fires() {
    // The channel.rs shed shape: a cluster function special-cases Submit
    // (here via matches!) but never bounces the promised TxnDone.
    let w = ws(&[
        (
            "crates/mdcc/src/messages.rs",
            "\npub enum Msg {\n    Submit { spec: u32, reply_to: u64, tag: u64 },\n    TxnDone { tag: u64 },\n}\n",
        ),
        (
            "crates/cluster/src/channel.rs",
            r#"
impl Fabric {
    fn deliver(&mut self, env: Env) {
        if matches!(env.msg, Msg::Submit { .. }) {
            self.dropped += 1;
        }
    }
}
"#,
        ),
    ]);
    let diags = run(&w, "flow");
    let hit = diags
        .iter()
        .find(|d| d.code == "FLOW004")
        .expect("FLOW004 must fire for the shed path");
    assert!(hit.message.contains("deliver"), "{}", hit.message);
    assert_eq!(hit.file, "crates/cluster/src/channel.rs");
    assert_eq!(hit.line, 4);
}

#[test]
fn flow_shed_submit_bouncing_txn_done_is_quiet_and_allow_suppresses() {
    let w = ws(&[
        (
            "crates/mdcc/src/messages.rs",
            "\npub enum Msg {\n    Submit { spec: u32, reply_to: u64, tag: u64 },\n    TxnDone { tag: u64 },\n}\n",
        ),
        (
            "crates/cluster/src/channel.rs",
            r#"
impl Fabric {
    fn deliver(&mut self, env: Env) {
        if matches!(env.msg, Msg::Submit { .. }) {
            self.bounce(env);
        }
    }
    fn bounce(&mut self, env: Env) {
        self.net.send(env.reply_to, Msg::TxnDone { tag: env.tag });
    }
}
"#,
        ),
    ]);
    let diags = run(&w, "flow");
    assert!(
        !diags.iter().any(|d| d.code == "FLOW004"),
        "a shed path that bounces TxnDone is quiet: {diags:?}"
    );

    let w = ws(&[
        (
            "crates/mdcc/src/messages.rs",
            "\npub enum Msg {\n    Submit { spec: u32, reply_to: u64, tag: u64 },\n    TxnDone { tag: u64 },\n}\n",
        ),
        (
            "crates/cluster/src/channel.rs",
            r#"
impl Fabric {
    fn deliver(&mut self, env: Env) {
        // check:allow(flow): crash-injection drop, loss is the point
        if matches!(env.msg, Msg::Submit { .. }) {
            self.dropped += 1;
        }
    }
}
"#,
        ),
    ]);
    let diags = run(&w, "flow");
    assert!(
        !diags.iter().any(|d| d.code == "FLOW004"),
        "allow marker must silence FLOW004: {diags:?}"
    );
}

// ---- race ----

#[test]
fn race_unsynced_field_escaping_spawn_fires_and_allow_suppresses() {
    let w = ws(&[(
        "crates/cluster/src/node.rs",
        r#"
pub struct Node {
    stats: HashMap<u64, u64>,
}
impl Node {
    fn start(&mut self) {
        std::thread::spawn(move || {
            self.stats.insert(1, 2);
        });
    }
}
"#,
    )]);
    let diags = run(&w, "race");
    let hit = diags
        .iter()
        .find(|d| d.code == "RACE001")
        .expect("RACE001 must fire for an unsynced field in a spawn");
    assert!(hit.message.contains("self.stats"), "{}", hit.message);
    assert_eq!(hit.file, "crates/cluster/src/node.rs");
    assert_eq!(hit.line, 8);

    let w = ws(&[(
        "crates/cluster/src/node.rs",
        r#"
pub struct Node {
    stats: HashMap<u64, u64>,
}
impl Node {
    fn start(&mut self) {
        std::thread::spawn(move || {
            // check:allow(race): the spawn consumes self by move
            self.stats.insert(1, 2);
        });
    }
}
"#,
    )]);
    let diags = run(&w, "race");
    assert!(
        !diags.iter().any(|d| d.code == "RACE001"),
        "allow marker must silence RACE001: {diags:?}"
    );
}

#[test]
fn race_synced_field_in_spawn_is_quiet() {
    let w = ws(&[(
        "crates/cluster/src/node.rs",
        r#"
pub struct Node {
    stats: Arc<Mutex<HashMap<u64, u64>>>,
}
impl Node {
    fn start(&mut self) {
        std::thread::spawn(move || {
            self.stats.lock().unwrap().insert(1, 2);
        });
    }
}
"#,
    )]);
    let diags = run(&w, "race");
    assert!(
        !diags.iter().any(|d| d.code == "RACE001"),
        "a Mutex-wrapped field may cross threads: {diags:?}"
    );
}

#[test]
fn race_unsynced_arc_local_escaping_spawn_fires() {
    let w = ws(&[(
        "crates/cluster/src/plane.rs",
        r#"
impl Plane {
    fn start(&mut self) {
        let shared: Arc<Vec<u64>> = Arc::new(Vec::new());
        std::thread::spawn(move || {
            shared.len();
        });
    }
}
"#,
    )]);
    let diags = run(&w, "race");
    let hit = diags
        .iter()
        .find(|d| d.code == "RACE001")
        .expect("RACE001 must fire for a bare-Arc capture");
    assert!(hit.message.contains("shared"), "{}", hit.message);
    assert!(hit.message.contains("Arc"), "{}", hit.message);
    assert_eq!(hit.file, "crates/cluster/src/plane.rs");
    assert_eq!(hit.line, 6);
}

#[test]
fn race_blocking_under_live_guard_fires_and_allow_suppresses() {
    let w = ws(&[(
        "crates/cluster/src/tcp.rs",
        r#"
impl Listener {
    fn stop(&self) {
        let g = self.conns.lock().unwrap();
        self.done_rx.recv();
    }
}
"#,
    )]);
    let diags = run(&w, "race");
    let hit = diags
        .iter()
        .find(|d| d.code == "RACE002")
        .expect("RACE002 must fire for recv under a guard");
    assert!(hit.message.contains("stop"), "{}", hit.message);
    assert!(hit.message.contains("recv"), "{}", hit.message);
    assert_eq!(hit.file, "crates/cluster/src/tcp.rs");
    assert_eq!(hit.line, 5);

    let w = ws(&[(
        "crates/cluster/src/tcp.rs",
        r#"
impl Listener {
    fn stop(&self) {
        let g = self.conns.lock().unwrap();
        // check:allow(race): shutdown path, no other lock takers remain
        self.done_rx.recv();
    }
}
"#,
    )]);
    let diags = run(&w, "race");
    assert!(
        !diags.iter().any(|d| d.code == "RACE002"),
        "allow marker must silence RACE002: {diags:?}"
    );
}

#[test]
fn race_guard_dropped_before_blocking_is_quiet() {
    let w = ws(&[(
        "crates/cluster/src/tcp.rs",
        r#"
impl Listener {
    fn stop(&self) {
        {
            let g = self.conns.lock().unwrap();
            g.len();
        }
        self.done_rx.recv();
    }
}
"#,
    )]);
    let diags = run(&w, "race");
    assert!(
        !diags.iter().any(|d| d.code == "RACE002"),
        "guard scoped away before blocking is quiet: {diags:?}"
    );
}

#[test]
fn race_interprocedural_blocking_carries_witness_chain() {
    // The blocking call is two hops away in the same crate: only the
    // interprocedural summary can see flush_all blocks while locked, and
    // the diagnostic must name the chain to the sink.
    let w = ws(&[(
        "crates/cluster/src/plane.rs",
        r#"
impl Plane {
    fn flush_all(&self) {
        let g = self.conns.lock().unwrap();
        drain_queue();
    }
}
fn drain_queue() {
    pump_once();
}
fn pump_once() {
    let x = rx.recv();
}
"#,
    )]);
    let diags = run(&w, "race");
    let hit = diags
        .iter()
        .find(|d| d.code == "RACE002")
        .expect("RACE002 must fire through the call chain");
    assert!(hit.message.contains("drain_queue"), "{}", hit.message);
    assert!(hit.message.contains("pump_once"), "{}", hit.message);
    assert!(hit.message.contains("flush_all"), "{}", hit.message);
    assert_eq!(hit.file, "crates/cluster/src/plane.rs");
    assert_eq!(hit.line, 5);
}

#[test]
fn race_cloned_sender_in_spawn_fires_and_allow_suppresses() {
    let w = ws(&[(
        "crates/cluster/src/channel.rs",
        r#"
impl Fabric {
    fn start(&mut self, tx: Sender<Msg>) {
        std::thread::spawn(move || {
            let mine = tx.clone();
            mine.send(1);
        });
    }
}
"#,
    )]);
    let diags = run(&w, "race");
    let hit = diags
        .iter()
        .find(|d| d.code == "RACE003")
        .expect("RACE003 must fire for a sender clone in a spawn");
    assert!(hit.message.contains("tx.clone()"), "{}", hit.message);
    assert_eq!(hit.file, "crates/cluster/src/channel.rs");
    assert_eq!(hit.line, 5);

    let w = ws(&[(
        "crates/cluster/src/channel.rs",
        r#"
impl Fabric {
    fn start(&mut self, tx: Sender<Msg>) {
        std::thread::spawn(move || {
            // check:allow(race): per-thread handle, pairwise order unused
            let mine = tx.clone();
            mine.send(1);
        });
    }
}
"#,
    )]);
    let diags = run(&w, "race");
    assert!(
        !diags.iter().any(|d| d.code == "RACE003"),
        "allow marker must silence RACE003: {diags:?}"
    );
}

#[test]
fn race_stored_sender_clone_fires_but_returned_clone_is_quiet() {
    let w = ws(&[(
        "crates/cluster/src/channel.rs",
        r#"
impl Fabric {
    fn register(&mut self, tx: Sender<Msg>) {
        self.peers.push(tx.clone());
    }
    fn handle(&self, tx: Sender<Msg>) -> Sender<Msg> {
        tx.clone()
    }
}
"#,
    )]);
    let diags = run(&w, "race");
    let hits: Vec<_> = diags.iter().filter(|d| d.code == "RACE003").collect();
    assert_eq!(hits.len(), 1, "only the stored clone: {diags:?}");
    assert!(hits[0].message.contains("stores"), "{}", hits[0].message);
    assert_eq!(hits[0].line, 4);
}

// ---- sync (atomics & wakeups) ----

#[test]
fn sync_undeclared_atomic_fires_at_decl_and_allow_suppresses() {
    let w = ws(&[(
        "crates/cluster/src/channel.rs",
        r#"
pub struct T {
    mystery: AtomicU64,
    counted: AtomicU64, // check:allow(atomics)
}
"#,
    )]);
    let diags = run(&w, "sync");
    let hits: Vec<_> = diags.iter().filter(|d| d.code == "ATOM001").collect();
    assert_eq!(hits.len(), 1, "only the unmarked decl: {diags:?}");
    assert!(hits[0].message.contains("mystery"), "{}", hits[0].message);
    assert_eq!(hits[0].file, "crates/cluster/src/channel.rs");
    assert_eq!(hits[0].line, 3);
}

#[test]
fn sync_counter_with_protocol_ordering_fires() {
    // `steals` is declared a stat-counter for reactor.rs: anything
    // stronger than Relaxed misdocuments it.
    let w = ws(&[(
        "crates/cluster/src/reactor.rs",
        r#"
impl Shard {
    fn record(&self) {
        self.steals.fetch_add(1, Ordering::SeqCst);
    }
}
"#,
    )]);
    let diags = run(&w, "sync");
    let hit = diags
        .iter()
        .find(|d| d.code == "ATOM001" && d.message.contains("steals"))
        .expect("counter upgrade must fire");
    assert!(hit.message.contains("Relaxed"), "{}", hit.message);
    assert_eq!(hit.line, 4);
}

#[test]
fn sync_relaxed_counter_is_quiet() {
    let w = ws(&[(
        "crates/cluster/src/reactor.rs",
        r#"
impl Shard {
    fn record(&self) {
        self.steals.fetch_add(1, Ordering::Relaxed);
        self.busy_us.fetch_add(7, Ordering::Relaxed);
    }
}
"#,
    )]);
    assert!(run(&w, "sync").is_empty());
}

#[test]
fn sync_handoff_relaxed_store_fires_release_is_quiet() {
    let w = ws(&[(
        "crates/cluster/src/reactor.rs",
        r#"
impl TaskCore {
    fn finish(&self) {
        self.done.store(true, Ordering::Relaxed);
    }
    fn finish_ok(&self) {
        self.done.store(true, Ordering::Release);
    }
    fn poll(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }
}
"#,
    )]);
    let diags = run(&w, "sync");
    let hits: Vec<_> = diags.iter().filter(|d| d.code == "ATOM001").collect();
    assert_eq!(hits.len(), 1, "only the relaxed store: {diags:?}");
    assert!(hits[0].message.contains("done"), "{}", hits[0].message);
    assert_eq!(hits[0].line, 4);
}

#[test]
fn sync_dekker_word_below_seqcst_fires_atom002() {
    // `parked` is a Dekker word: the loom harness shows Release/Acquire
    // loses the wakeup, so the pass pins every access to SeqCst.
    let w = ws(&[(
        "crates/cluster/src/reactor.rs",
        r#"
impl Parker {
    fn park(&self) {
        self.parked.store(true, Ordering::Release);
    }
    fn park_ok(&self) {
        self.parked.store(true, Ordering::SeqCst);
    }
}
"#,
    )]);
    let diags = run(&w, "sync");
    let hits: Vec<_> = diags.iter().filter(|d| d.code == "ATOM002").collect();
    assert_eq!(hits.len(), 1, "only the downgraded store: {diags:?}");
    assert!(hits[0].message.contains("parked"), "{}", hits[0].message);
    assert!(hits[0].message.contains("SeqCst"), "{}", hits[0].message);
    assert_eq!(hits[0].line, 4);
}

#[test]
fn sync_cas_pair_sanity_fires_atom003() {
    let w = ws(&[(
        "crates/cluster/src/reactor.rs",
        r#"
impl TaskCore {
    fn claim_relaxed_failure(&self) {
        self.sched.compare_exchange(1, 2, Ordering::AcqRel, Ordering::Relaxed);
    }
    fn claim_incoherent(&self) {
        self.sched.compare_exchange(1, 2, Ordering::Release, Ordering::SeqCst);
    }
    fn claim_no_release(&self) {
        self.sched.compare_exchange(1, 2, Ordering::Acquire, Ordering::Acquire);
    }
    fn claim_ok(&self) {
        self.sched.compare_exchange(1, 2, Ordering::AcqRel, Ordering::Acquire);
    }
}
"#,
    )]);
    let diags = run(&w, "sync");
    let a3: Vec<_> = diags.iter().filter(|d| d.code == "ATOM003").collect();
    assert!(
        a3.iter()
            .any(|d| d.line == 4 && d.message.contains("Relaxed")),
        "relaxed failure: {diags:?}"
    );
    assert!(
        a3.iter()
            .any(|d| d.line == 7 && d.message.contains("stronger")),
        "incoherent pair: {diags:?}"
    );
    assert!(
        a3.iter()
            .any(|d| d.line == 10 && d.message.contains("Release")),
        "missing release on success: {diags:?}"
    );
    assert!(
        !a3.iter().any(|d| d.line == 13),
        "the AcqRel/Acquire pair is sound: {diags:?}"
    );
}

#[test]
fn sync_enqueue_without_notify_fires_wake001_and_allow_suppresses() {
    let w = ws(&[(
        "crates/cluster/src/reactor.rs",
        r#"
impl Inner {
    fn enqueue_lossy(&self, t: Task) {
        let mut queue = self.shard.queue.lock().unwrap();
        queue.push_back(t);
    }
    fn enqueue_marked(&self, t: Task) {
        let mut queue = self.shard.queue.lock().unwrap();
        queue.push_back(t); // check:allow(atomics)
    }
}
"#,
    )]);
    let diags = run(&w, "sync");
    let hits: Vec<_> = diags.iter().filter(|d| d.code == "WAKE001").collect();
    assert_eq!(hits.len(), 1, "only the unmarked push: {diags:?}");
    assert!(
        hits[0].message.contains("enqueue_lossy"),
        "{}",
        hits[0].message
    );
    assert_eq!(hits[0].line, 5);
}

#[test]
fn sync_enqueue_reaching_notify_on_all_paths_is_quiet() {
    let w = ws(&[(
        "crates/cluster/src/reactor.rs",
        r#"
impl Inner {
    fn enqueue(&self, t: Task) {
        {
            let mut queue = self.shard.queue.lock().unwrap();
            queue.push_back(t);
        }
        if self.shard.parker.parked.load(Ordering::SeqCst) {
            self.shard.parker.notify();
        }
    }
}
"#,
    )]);
    let diags = run(&w, "sync");
    assert!(
        !diags.iter().any(|d| d.code == "WAKE001"),
        "covered push must be quiet: {diags:?}"
    );
}

#[test]
fn sync_enqueue_with_escaping_branch_fires_wake001() {
    // One early-return path skips the parked check: exactly the lost
    // wakeup TIME001-style must-analysis exists to catch.
    let w = ws(&[(
        "crates/cluster/src/reactor.rs",
        r#"
impl Inner {
    fn enqueue(&self, t: Task) {
        {
            let mut queue = self.shard.queue.lock().unwrap();
            queue.push_back(t);
        }
        if self.closing {
            return;
        }
        if self.shard.parker.parked.load(Ordering::SeqCst) {
            self.shard.parker.notify();
        }
    }
}
"#,
    )]);
    let diags = run(&w, "sync");
    assert!(
        diags.iter().any(|d| d.code == "WAKE001" && d.line == 6),
        "escaping branch must fire: {diags:?}"
    );
}

#[test]
fn sync_caller_covered_absorb_is_quiet_uncovered_caller_fires() {
    // `absorb` pushes into the coalescing slot; the notify obligation
    // (flush/flush_if_due) may be discharged one frame up, around every
    // call site — the TIME003 caller-cover shape.
    let quiet = ws(&[(
        "crates/cluster/src/reactor.rs",
        r#"
impl Worker {
    fn stash(&self, pending: &mut Pending, env: Envelope) {
        pending.absorb(env);
    }
    fn run(&self, pending: &mut Pending) {
        loop {
            let env = self.next();
            self.stash(pending, env);
            pending.flush_if_due(self.now());
        }
    }
}
"#,
    )]);
    let diags = run(&quiet, "sync");
    assert!(
        !diags.iter().any(|d| d.code == "WAKE001"),
        "caller discharges the flush obligation: {diags:?}"
    );

    let loud = ws(&[(
        "crates/cluster/src/reactor.rs",
        r#"
impl Worker {
    fn stash(&self, pending: &mut Pending, env: Envelope) {
        pending.absorb(env);
    }
    fn run(&self, pending: &mut Pending) {
        loop {
            let env = self.next();
            self.stash(pending, env);
        }
    }
}
"#,
    )]);
    let diags = run(&loud, "sync");
    assert!(
        diags.iter().any(|d| d.code == "WAKE001" && d.line == 4),
        "no caller flushes: {diags:?}"
    );
}

#[test]
fn sync_bare_wait_fires_wake002_rechecked_waits_are_quiet() {
    let w = ws(&[(
        "crates/cluster/src/reactor.rs",
        r#"
impl Parker {
    fn park_bare(&self) {
        let guard = self.lock.lock().unwrap();
        let guard = self.cv.wait(guard).unwrap();
    }
    fn park_looped(&self) {
        let mut guard = self.lock.lock().unwrap();
        while !*guard {
            guard = self.cv.wait(guard).unwrap();
        }
    }
    fn park_gated(&self) {
        let guard = self.lock.lock().unwrap();
        if !*guard {
            let guard = self.cv.wait(guard).unwrap();
        }
    }
}
"#,
    )]);
    let diags = run(&w, "sync");
    let hits: Vec<_> = diags.iter().filter(|d| d.code == "WAKE002").collect();
    assert_eq!(hits.len(), 1, "only the bare wait: {diags:?}");
    assert!(hits[0].message.contains("park_bare"), "{}", hits[0].message);
    assert_eq!(hits[0].line, 5);
}
