//! Self-tests on the *real* workspace: the interprocedural graph must hold
//! the cross-crate edges the v2 per-file call graph provably could not see,
//! and the passes rooted on it must surface findings across crate
//! boundaries.

use std::path::Path;

use planet_check::{run_passes, Workspace};

fn real_workspace() -> Workspace {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    Workspace::load(&root).expect("workspace sources load")
}

/// The drive loop in planet-cluster reaches, across three crates, the
/// storage hot path: `run_node` (cluster) → `drive_into` (sim, via use-path
/// import) → `on_message` (mdcc, via the dyn-dispatch approximation) →
/// `accept_id` (storage, via the typed-receiver resolution). v2 built one
/// call graph per file, so every one of these edges was invisible to it.
#[test]
fn graph_links_cluster_drive_loop_to_storage_hot_path() {
    let ws = real_workspace();
    let g = ws.graph();

    let roots = g.fn_ids("crates/cluster/src/node.rs", "run_node");
    assert!(!roots.is_empty(), "run_node must be a graph node");
    let (reach, preds) = g.reachable_with_preds(roots);

    let on_message = g.fn_ids("crates/mdcc/src/replica_actor.rs", "on_message");
    assert!(
        on_message.iter().any(|n| reach.contains(n)),
        "run_node must reach the replica actor's on_message across crates"
    );

    let accept = g.fn_ids("crates/storage/src/replica.rs", "accept_id");
    let hit = accept.iter().copied().find(|n| reach.contains(n));
    let hit = hit.expect("run_node must reach storage's accept_id across three crates");

    // The witness chain renders end-to-end, so diagnostics can show it.
    let chain = g.chain_text(&preds, hit);
    assert!(
        chain.contains("accept_id"),
        "chain ends at the sink: {chain}"
    );
    assert!(
        chain.contains("run_node"),
        "chain starts at the root: {chain}"
    );
}

/// The panic pass, re-rooted on the workspace graph, reports findings in
/// `crates/storage` — a crate with no drive-loop roots of its own, reachable
/// only through mdcc's actors. A per-file graph reports nothing there.
#[test]
fn panic_pass_reaches_storage_across_crates() {
    let ws = real_workspace();
    let diags = run_passes(&ws, &["panic".to_string()]);
    assert!(
        diags.iter().any(|d| d.file.starts_with("crates/storage/")),
        "workspace-rooted panic pass must surface crates/storage findings; got files: {:?}",
        diags
            .iter()
            .map(|d| &d.file)
            .collect::<std::collections::BTreeSet<_>>()
    );
}

/// The flow and race passes run clean on the real workspace — the genuine
/// findings they caught (client resubmit deadline, join-under-lock,
/// unbounded socket write) are fixed in-tree, so any regression shows up
/// here as a hard failure rather than a baseline bump.
#[test]
fn flow_and_race_are_clean_on_the_real_workspace() {
    let ws = real_workspace();
    let diags = run_passes(&ws, &["flow".to_string(), "race".to_string()]);
    assert!(
        diags.is_empty(),
        "flow/race regressions must be fixed, not baselined: {diags:#?}"
    );
}

/// The sync pass runs clean on the real workspace: every atomic in the
/// reactor runtime either has a declared role whose ordering contract its
/// op sites satisfy, or carries a stat-counter allow marker; every
/// enqueue reaches its notify and every park rechecks. Regressions are
/// fixed, not baselined — the ratchet holds ATOM/WAKE at zero.
#[test]
fn sync_pass_is_clean_on_the_real_workspace() {
    let ws = real_workspace();
    let diags = run_passes(&ws, &["sync".to_string()]);
    assert!(
        diags.is_empty(),
        "ATOM/WAKE regressions must be fixed, not baselined: {diags:#?}"
    );
}

/// Seeding a single-ordering downgrade into the *real* reactor source —
/// the parker's Dekker store knocked from SeqCst to Release, exactly the
/// bug `loom_tests::dekker_handoff_below_seqcst_is_found` demonstrates
/// dynamically — must trip ATOM002. This proves the pass reads the real
/// protocol sites, not a fixture-shaped approximation of them.
#[test]
fn seeded_parker_downgrade_trips_atom002() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let src = std::fs::read_to_string(root.join("crates/cluster/src/reactor.rs"))
        .expect("reactor source");
    let anchor = "self.parked.store(true, Ordering::SeqCst)";
    assert!(
        src.contains(anchor),
        "park_unless must publish `parked` with a SeqCst store"
    );
    let downgraded = src.replace(anchor, "self.parked.store(true, Ordering::Release)");
    let ws = Workspace::from_sources(vec![(
        "crates/cluster/src/reactor.rs".to_string(),
        downgraded,
    )]);
    let diags = run_passes(&ws, &["sync".to_string()]);
    assert!(
        diags
            .iter()
            .any(|d| d.code == "ATOM002" && d.message.contains("parked")),
        "the downgraded Dekker store must fire ATOM002: {diags:#?}"
    );
}
