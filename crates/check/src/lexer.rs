//! A minimal Rust lexer: enough token structure for protocol-shape analysis.
//!
//! The workspace builds offline, so `planet-check` cannot lean on `syn`;
//! instead it tokenises source files by hand. The lexer understands
//! identifiers, punctuation, all literal forms (including raw strings and
//! the lifetime/char-literal ambiguity), and comments. Comments are dropped
//! from the token stream, but `// check:allow(<lint>)` markers are recorded
//! per line so passes can honour suppression requests.

use std::collections::{HashMap, HashSet};

/// What a token is. Literal payloads are never interpreted by the passes,
/// so literals collapse into a single kind carrying their raw text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `match`, `Msg`, ...).
    Ident,
    /// A single punctuation character (`{`, `:`, `.`, ...). Multi-character
    /// operators are left as character sequences; passes match on the
    /// characters they care about.
    Punct,
    /// Any literal: integer, float, string, raw string, byte string, char.
    Literal,
    /// A lifetime or loop label (`'a`, `'static`).
    Lifetime,
}

/// One token with its source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// The token's class.
    pub kind: TokKind,
    /// The raw source text of the token.
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

impl Tok {
    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// The lexed form of one file: its tokens plus the `check:allow` markers
/// found in comments, keyed by lint name → set of 1-based line numbers.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream (comments and whitespace removed).
    pub toks: Vec<Tok>,
    /// `check:allow(<lint>)` markers: lint name → lines carrying the marker.
    pub allows: HashMap<String, HashSet<u32>>,
}

/// Record any `check:allow(lint)` markers inside a comment's text.
fn scan_allows(comment: &str, line: u32, allows: &mut HashMap<String, HashSet<u32>>) {
    let mut rest = comment;
    while let Some(at) = rest.find("check:allow(") {
        rest = &rest[at + "check:allow(".len()..];
        if let Some(end) = rest.find(')') {
            let lint = rest[..end].trim().to_string();
            allows.entry(lint).or_default().insert(line);
            rest = &rest[end + 1..];
        } else {
            break;
        }
    }
}

/// Tokenise `src`. Never fails: unrecognised bytes are skipped, which is the
/// right behaviour for an analysis that must not block the build on exotic
/// syntax it does not understand.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut allows = HashMap::new();
    let mut i = 0usize;
    let mut line: u32 = 1;

    let is_ident_start = |b: u8| b.is_ascii_alphabetic() || b == b'_';
    let is_ident_cont = |b: u8| b.is_ascii_alphanumeric() || b == b'_';

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b if b.is_ascii_whitespace() => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                scan_allows(&src[start..i], line, &mut allows);
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                let start_line = line;
                i += 2;
                let mut depth = 1;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                scan_allows(&src[start..i.min(src.len())], start_line, &mut allows);
            }
            b'"' => {
                let (text, consumed, newlines) = lex_string(&src[i..], false);
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text,
                    line,
                });
                line += newlines;
                i += consumed;
            }
            b'r' | b'b'
                if matches!(bytes.get(i + 1), Some(&b'"') | Some(&b'#'))
                    || (b == b'b' && matches!(bytes.get(i + 1), Some(&b'r'))) =>
            {
                // r"..", r#".."#, b"..", br"..", b'..'
                let mut j = i + 1;
                if bytes.get(j) == Some(&b'r') {
                    j += 1;
                }
                let mut hashes = 0usize;
                while bytes.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                if bytes.get(j) == Some(&b'"') {
                    let raw = b == b'r' || bytes[i + 1] == b'r';
                    if raw {
                        // Raw string: ends at `"` followed by `hashes` hashes.
                        j += 1;
                        let closer = format!("\"{}", "#".repeat(hashes));
                        let rel = src[j..].find(&closer).map_or(src.len() - j, |p| p);
                        let end = j + rel + closer.len();
                        let text = src[i..end.min(src.len())].to_string();
                        let newlines = text.bytes().filter(|&c| c == b'\n').count() as u32;
                        toks.push(Tok {
                            kind: TokKind::Literal,
                            text,
                            line,
                        });
                        line += newlines;
                        i = end.min(src.len());
                    } else {
                        // b"..": plain string with a byte prefix.
                        let (text, consumed, newlines) = lex_string(&src[i + 1..], false);
                        toks.push(Tok {
                            kind: TokKind::Literal,
                            text: format!("b{text}"),
                            line,
                        });
                        line += newlines;
                        i += 1 + consumed;
                    }
                } else {
                    // Just an identifier starting with r/b.
                    let start = i;
                    while i < bytes.len() && is_ident_cont(bytes[i]) {
                        i += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Ident,
                        text: src[start..i].to_string(),
                        line,
                    });
                }
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                let next = bytes.get(i + 1).copied().unwrap_or(0);
                let after = bytes.get(i + 2).copied().unwrap_or(0);
                if is_ident_start(next) && after != b'\'' {
                    let start = i;
                    i += 1;
                    while i < bytes.len() && is_ident_cont(bytes[i]) {
                        i += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: src[start..i].to_string(),
                        line,
                    });
                } else {
                    let (text, consumed, newlines) = lex_string(&src[i..], true);
                    toks.push(Tok {
                        kind: TokKind::Literal,
                        text,
                        line,
                    });
                    line += newlines;
                    i += consumed;
                }
            }
            b if is_ident_start(b) => {
                let start = i;
                while i < bytes.len() && is_ident_cont(bytes[i]) {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            b if b.is_ascii_digit() => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'.')
                {
                    // Stop a float-literal scan from eating `..` or a method
                    // call on a literal (`1.max(2)`).
                    if bytes[i] == b'.' && !bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
                        break;
                    }
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            _ => {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (b as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    Lexed { toks, allows }
}

/// Lex a quoted string or char literal starting at `src[0]`. Returns the
/// token text, bytes consumed, and newlines crossed.
fn lex_string(src: &str, char_lit: bool) -> (String, usize, u32) {
    let bytes = src.as_bytes();
    let quote = if char_lit { b'\'' } else { b'"' };
    let mut i = 1;
    let mut newlines = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            b if b == quote => {
                i += 1;
                break;
            }
            _ => i += 1,
        }
    }
    (
        src[..i.min(src.len())].to_string(),
        i.min(src.len()),
        newlines,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_idents_puncts_and_lines() {
        let lexed = lex("fn main() {\n    let x = 1;\n}\n");
        let texts: Vec<&str> = lexed.toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec!["fn", "main", "(", ")", "{", "let", "x", "=", "1", ";", "}"]
        );
        assert_eq!(lexed.toks[5].line, 2); // `let`
    }

    #[test]
    fn comments_are_dropped_but_allows_recorded() {
        let lexed = lex("let a = 1; // check:allow(determinism) ok\nlet b = 2;\n");
        assert!(lexed.toks.iter().all(|t| !t.text.contains("check")));
        assert!(lexed.allows["determinism"].contains(&1));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let lexed = lex("&'a str; let c = 'x'; let n = '\\n';");
        assert_eq!(lexed.toks[1].kind, TokKind::Lifetime);
        let lits: Vec<&Tok> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Literal && t.text.starts_with('\''))
            .collect();
        assert_eq!(lits.len(), 2);
    }

    #[test]
    fn strings_do_not_leak_tokens() {
        let lexed = lex("let s = \"fn bogus() { Instant::now() }\"; done");
        assert!(lexed.toks.iter().filter(|t| t.is_ident("fn")).count() == 0);
        assert!(lexed.toks.iter().any(|t| t.is_ident("done")));
    }

    #[test]
    fn block_comments_nest() {
        let lexed = lex("a /* x /* y */ z */ b");
        let texts: Vec<&str> = lexed.toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["a", "b"]);
    }
}
