//! Per-file call graph and reachability, used by the panic/time/callback
//! passes to follow handler code into the helper functions it calls.
//!
//! Resolution is *name-based and file-local*: a call site `foo(...)` or
//! `self.foo(...)` / `Self::foo(...)` resolves to a function named `foo`
//! defined in the same file. Cross-file calls (into other crates or
//! modules) are treated as opaque — the protocol crates keep each actor's
//! helpers in the actor's own file, so this is exact where it matters and
//! conservative elsewhere.

use crate::lexer::Tok;
use crate::parse::{fns, FnDef};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::ops::Range;

/// The call graph of one source file.
pub struct CallGraph {
    /// All function definitions in the file, keyed by name. Rust allows
    /// duplicate method names across impl blocks; later definitions are
    /// kept too (a call to the name reaches *all* of them — conservative).
    pub fns: Vec<FnDef>,
    by_name: BTreeMap<String, Vec<usize>>,
    /// callees[i] = indices of functions called (by name) from fns[i].
    pub callees: Vec<BTreeSet<usize>>,
}

impl CallGraph {
    /// Build the graph from a file's token stream.
    pub fn build(toks: &[Tok]) -> CallGraph {
        let defs = fns(toks);
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in defs.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
        }
        let mut callees = vec![BTreeSet::new(); defs.len()];
        for (i, f) in defs.iter().enumerate() {
            for name in call_names(toks, f.body.clone()) {
                if let Some(targets) = by_name.get(&name) {
                    for &t in targets {
                        if t != i {
                            callees[i].insert(t);
                        }
                    }
                }
            }
        }
        CallGraph {
            fns: defs,
            by_name,
            callees,
        }
    }

    /// Indices of functions with the given name.
    pub fn named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Transitive closure of callees from the given roots (roots included).
    pub fn reachable(&self, roots: impl IntoIterator<Item = usize>) -> BTreeSet<usize> {
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut queue: VecDeque<usize> = roots.into_iter().collect();
        while let Some(i) = queue.pop_front() {
            if !seen.insert(i) {
                continue;
            }
            for &c in &self.callees[i] {
                if !seen.contains(&c) {
                    queue.push_back(c);
                }
            }
        }
        seen
    }
}

/// Names that appear in call position within `range`: `name(`,
/// `self.name(`, `Self::name(`. Field accesses and paths into other types
/// (`other.name(`, `Type::name(`) are included too — they only matter if a
/// same-file fn shares the name, which over-approximates safely.
pub fn call_names(toks: &[Tok], range: Range<usize>) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    let mut i = range.start;
    while i + 1 < range.end {
        let t = &toks[i];
        if t.kind == crate::lexer::TokKind::Ident && toks[i + 1].is_punct('(') {
            // Exclude definitions (`fn name(`) and control keywords.
            let is_def = i > range.start && toks[i - 1].is_ident("fn");
            let kw = matches!(t.text.as_str(), "if" | "while" | "for" | "match" | "loop");
            if !is_def && !kw {
                names.insert(t.text.clone());
            }
        }
        i += 1;
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn resolves_local_calls_transitively() {
        let src = r#"
            fn a() { b(); }
            fn b() { self.c(1); }
            fn c(x: u32) { external(x); }
            fn lonely() {}
        "#;
        let lexed = lex(src);
        let cg = CallGraph::build(&lexed.toks);
        let a = cg.named("a")[0];
        let reach = cg.reachable([a]);
        let names: Vec<&str> = reach.iter().map(|&i| cg.fns[i].name.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn duplicate_method_names_reach_all() {
        let src = r#"
            fn root() { self.step(); }
            fn step() { one(); }
            fn step(x: u32) { two(); }
        "#;
        let lexed = lex(src);
        let cg = CallGraph::build(&lexed.toks);
        let root = cg.named("root")[0];
        let reach = cg.reachable([root]);
        assert_eq!(reach.len(), 3, "both `step` defs reached");
    }

    #[test]
    fn recursion_terminates() {
        let src = "fn f() { f(); g(); } fn g() { f(); }";
        let lexed = lex(src);
        let cg = CallGraph::build(&lexed.toks);
        let f = cg.named("f")[0];
        let reach = cg.reachable([f]);
        assert_eq!(reach.len(), 2);
    }
}
