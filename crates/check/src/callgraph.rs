//! Call graphs and reachability, used by the panic/callback/race passes to
//! follow handler code into the helper functions it calls.
//!
//! Two layers:
//!
//! * [`CallGraph`] — the v2 *per-file* graph. Resolution is name-based and
//!   file-local: `foo(...)`, `self.foo(...)`, `Self::foo(...)` resolve to
//!   same-file functions named `foo`. Kept for passes whose scope really is
//!   one file (lock-order, time).
//! * [`WorkspaceGraph`] — the v3 *workspace-wide* graph. Nodes are every
//!   function in every file; edges resolve across files and crates:
//!   `use`-imported free functions, `module::path::fn()` calls,
//!   `Type::method()` with the type's impl blocks found anywhere in the
//!   workspace, `recv.method()` with the receiver's type recovered from
//!   struct fields, typed `let` bindings, and fn parameters, and — the
//!   dynamic-dispatch approximation — `x.method()` on an *unknown* receiver
//!   resolving to every `impl Trait for Type` method of that name (minus a
//!   deny-list of ubiquitous std trait methods like `fmt`/`clone`/`next`).
//!   Every resolution strategy falls back to the v2 same-file rule, so the
//!   workspace graph is a strict superset of the per-file one: anything v2
//!   reached, v3 reaches too.
//!
//! The graph records per-call-site token positions (for the race pass's
//! "blocking call while a lock is held" check) and supports BFS with
//! predecessor tracking so diagnostics can print a witness chain
//! (`run_node` → `drive_into` → `on_message` → ...).

use crate::lexer::{Tok, TokKind};
use crate::model::Workspace;
use crate::parse::{fns, FnDef};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::ops::Range;

/// The call graph of one source file.
pub struct CallGraph {
    /// All function definitions in the file, keyed by name. Rust allows
    /// duplicate method names across impl blocks; later definitions are
    /// kept too (a call to the name reaches *all* of them — conservative).
    pub fns: Vec<FnDef>,
    by_name: BTreeMap<String, Vec<usize>>,
    /// callees[i] = indices of functions called (by name) from fns[i].
    pub callees: Vec<BTreeSet<usize>>,
}

impl CallGraph {
    /// Build the graph from a file's token stream.
    pub fn build(toks: &[Tok]) -> CallGraph {
        let defs = fns(toks);
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in defs.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
        }
        let mut callees = vec![BTreeSet::new(); defs.len()];
        for (i, f) in defs.iter().enumerate() {
            for name in call_names(toks, f.body.clone()) {
                if let Some(targets) = by_name.get(&name) {
                    for &t in targets {
                        if t != i {
                            callees[i].insert(t);
                        }
                    }
                }
            }
        }
        CallGraph {
            fns: defs,
            by_name,
            callees,
        }
    }

    /// Indices of functions with the given name.
    pub fn named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Transitive closure of callees from the given roots (roots included).
    pub fn reachable(&self, roots: impl IntoIterator<Item = usize>) -> BTreeSet<usize> {
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut queue: VecDeque<usize> = roots.into_iter().collect();
        while let Some(i) = queue.pop_front() {
            if !seen.insert(i) {
                continue;
            }
            for &c in &self.callees[i] {
                if !seen.contains(&c) {
                    queue.push_back(c);
                }
            }
        }
        seen
    }
}

/// Names that appear in call position within `range`: `name(`,
/// `self.name(`, `Self::name(`. Field accesses and paths into other types
/// (`other.name(`, `Type::name(`) are included too — they only matter if a
/// same-file fn shares the name, which over-approximates safely.
pub fn call_names(toks: &[Tok], range: Range<usize>) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    let mut i = range.start;
    while i + 1 < range.end {
        let t = &toks[i];
        if t.kind == crate::lexer::TokKind::Ident && toks[i + 1].is_punct('(') {
            // Exclude definitions (`fn name(`) and control keywords.
            let is_def = i > range.start && toks[i - 1].is_ident("fn");
            let kw = matches!(t.text.as_str(), "if" | "while" | "for" | "match" | "loop");
            if !is_def && !kw {
                names.insert(t.text.clone());
            }
        }
        i += 1;
    }
    names
}

// ---------------------------------------------------------------------------
// Workspace-wide graph (v3)
// ---------------------------------------------------------------------------

/// One function anywhere in the workspace.
#[derive(Debug, Clone)]
pub struct WsFn {
    /// Index into `Workspace::files()`.
    pub file: usize,
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Body token range in the owning file's stream.
    pub body: Range<usize>,
    /// Self type of the enclosing impl block, when there is one.
    pub owner: Option<String>,
    /// Trait name when the enclosing impl is `impl Trait for Type`.
    pub trait_name: Option<String>,
    /// Named parameters `(name, type-text)`.
    pub params: Vec<(String, String)>,
}

/// One resolved call site inside a function body.
#[derive(Debug, Clone, Copy)]
pub struct CallSite {
    /// The called function (node index).
    pub target: usize,
    /// Token index of the callee name in the caller's file.
    pub tok: usize,
    /// 1-based source line of the call.
    pub line: u32,
}

/// Methods excluded from the dynamic-dispatch approximation: ubiquitous
/// std trait methods whose `impl Trait for Type` definitions would connect
/// everything to everything.
const DYN_DENY: &[&str] = &[
    "fmt",
    "clone",
    "clone_from",
    "default",
    "drop",
    "next",
    "size_hint",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "from",
    "into",
    "try_from",
    "try_into",
    "from_str",
    "deref",
    "deref_mut",
    "index",
    "index_mut",
    "as_ref",
    "as_mut",
    "borrow",
    "borrow_mut",
    "to_string",
    "write_str",
    "add",
    "sub",
    "mul",
    "div",
    "rem",
    "neg",
    "not",
    "sum",
    "product",
    "extend",
    "from_iter",
    "into_iter",
];

/// The cross-file, cross-crate call graph.
pub struct WorkspaceGraph {
    /// All functions, file-major in workspace file order.
    pub fns: Vec<WsFn>,
    /// Per-function resolved call sites (site-level, may repeat targets).
    pub calls: Vec<Vec<CallSite>>,
    /// Per-function deduplicated callee sets.
    pub callees: Vec<BTreeSet<usize>>,
    nodes_of_file: Vec<Vec<usize>>,
    path_to_file: HashMap<String, usize>,
}

impl WorkspaceGraph {
    /// Build the graph over the whole workspace.
    pub fn build(ws: &Workspace) -> WorkspaceGraph {
        let files = ws.files();

        // ---- nodes ----
        let mut fns: Vec<WsFn> = Vec::new();
        let mut nodes_of_file: Vec<Vec<usize>> = vec![Vec::new(); files.len()];
        for (fi, f) in files.iter().enumerate() {
            for d in f.fns() {
                let im = f.impls().iter().find(|im| im.body.contains(&d.body.start));
                nodes_of_file[fi].push(fns.len());
                fns.push(WsFn {
                    file: fi,
                    name: d.name.clone(),
                    line: d.line,
                    body: d.body.clone(),
                    owner: im.map(|im| im.ty.clone()),
                    trait_name: im.and_then(|im| im.trait_name.clone()),
                    params: d.params.clone(),
                });
            }
        }

        // ---- global indexes ----
        // (file, name) -> nodes, for the same-file fallback.
        let mut by_file_name: HashMap<(usize, &str), Vec<usize>> = HashMap::new();
        // (owner type, method) -> nodes, across all files.
        let mut by_owner_method: HashMap<(&str, &str), Vec<usize>> = HashMap::new();
        // trait-impl methods by name (dyn-dispatch approximation).
        let mut trait_methods: HashMap<&str, Vec<usize>> = HashMap::new();
        // (crate, name) -> free (non-impl) fns.
        let mut free_by_crate: HashMap<(&str, &str), Vec<usize>> = HashMap::new();
        let crate_of_file: Vec<&str> = files.iter().map(|f| crate_of_path(&f.path)).collect();
        for (i, n) in fns.iter().enumerate() {
            by_file_name.entry((n.file, &n.name)).or_default().push(i);
            if let Some(o) = &n.owner {
                by_owner_method
                    .entry((o.as_str(), &n.name))
                    .or_default()
                    .push(i);
                if n.trait_name.is_some() {
                    trait_methods.entry(&n.name).or_default().push(i);
                }
            } else {
                free_by_crate
                    .entry((crate_of_file[n.file], &n.name))
                    .or_default()
                    .push(i);
            }
        }
        // Every type name the workspace declares or implements.
        let mut known_types: HashSet<&str> = HashSet::new();
        for f in files {
            known_types.extend(f.types().iter().map(String::as_str));
        }
        for n in &fns {
            if let Some(o) = &n.owner {
                known_types.insert(o.as_str());
            }
        }
        // Per-file field types (field name -> known type names in its type).
        let field_types: Vec<HashMap<&str, Vec<&str>>> = files
            .iter()
            .map(|f| {
                f.fields()
                    .iter()
                    .map(|fd| (fd.name.as_str(), type_idents(&fd.ty, &known_types)))
                    .collect()
            })
            .collect();
        // Per-file imports: alias -> segments, plus glob prefixes.
        let mut imports: Vec<HashMap<&str, &[String]>> = Vec::with_capacity(files.len());
        let mut globs: Vec<Vec<&[String]>> = Vec::with_capacity(files.len());
        for f in files {
            let mut m: HashMap<&str, &[String]> = HashMap::new();
            let mut g: Vec<&[String]> = Vec::new();
            for u in f.uses() {
                if u.name == "*" {
                    g.push(&u.segments[..u.segments.len() - 1]);
                } else {
                    m.insert(u.name.as_str(), &u.segments[..]);
                }
            }
            imports.push(m);
            globs.push(g);
        }

        // ---- resolve call sites ----
        let mut calls: Vec<Vec<CallSite>> = vec![Vec::new(); fns.len()];
        let mut callees: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); fns.len()];
        for ni in 0..fns.len() {
            let node = &fns[ni];
            let fi = node.file;
            let toks = files[fi].toks();
            // Receiver typing: local `let` bindings + params whose type
            // mentions a workspace type.
            let mut var_types: HashMap<String, Vec<&str>> = HashMap::new();
            for (p, ty) in &node.params {
                let tys = type_idents(ty, &known_types);
                if !tys.is_empty() {
                    var_types.insert(p.clone(), tys);
                }
            }
            collect_let_types(toks, node.body.clone(), &known_types, &mut var_types);

            let mut i = node.body.start;
            while i + 1 < node.body.end.min(toks.len()) {
                let t = &toks[i];
                if t.kind != TokKind::Ident || !toks[i + 1].is_punct('(') {
                    i += 1;
                    continue;
                }
                if (i > 0 && toks[i - 1].is_ident("fn"))
                    || matches!(t.text.as_str(), "if" | "while" | "for" | "match" | "loop")
                {
                    i += 1;
                    continue;
                }
                let name = t.text.as_str();
                let mut targets: Vec<usize> = Vec::new();
                let same_file = |tg: &mut Vec<usize>| {
                    if let Some(v) = by_file_name.get(&(fi, name)) {
                        tg.extend(v.iter().copied());
                    }
                };
                let dyn_approx = |tg: &mut Vec<usize>| {
                    if !DYN_DENY.contains(&name) {
                        if let Some(v) = trait_methods.get(name) {
                            tg.extend(v.iter().copied());
                        }
                    }
                };
                if i > 0 && toks[i - 1].is_punct('.') {
                    // Method call: type the receiver if we can.
                    let recv = i.checked_sub(2).map(|k| &toks[k]);
                    if recv.is_some_and(|r| r.is_ident("self")) {
                        same_file(&mut targets);
                        if let Some(o) = &node.owner {
                            if let Some(v) = by_owner_method.get(&(o.as_str(), name)) {
                                targets.extend(v.iter().copied());
                            }
                        }
                    } else {
                        let mut tys: Vec<&str> = Vec::new();
                        if let Some(r) = recv {
                            if r.kind == TokKind::Ident {
                                let is_self_field = i >= 4
                                    && toks[i - 3].is_punct('.')
                                    && toks[i - 4].is_ident("self");
                                if is_self_field {
                                    if let Some(v) = field_types[fi].get(r.text.as_str()) {
                                        tys.extend(v.iter().copied());
                                    }
                                } else if let Some(v) = var_types.get(&r.text) {
                                    tys.extend(v.iter().copied());
                                }
                            }
                        }
                        for ty in &tys {
                            if let Some(v) = by_owner_method.get(&(*ty, name)) {
                                targets.extend(v.iter().copied());
                            }
                        }
                        if targets.is_empty() {
                            dyn_approx(&mut targets);
                        }
                        same_file(&mut targets);
                    }
                } else if i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':') {
                    // Path call `a::b::name(..)`: walk segments backwards.
                    let mut segs: Vec<&str> = Vec::new();
                    let mut k = i;
                    while k >= 3
                        && toks[k - 1].is_punct(':')
                        && toks[k - 2].is_punct(':')
                        && toks[k - 3].kind == TokKind::Ident
                    {
                        segs.push(toks[k - 3].text.as_str());
                        k -= 3;
                    }
                    segs.reverse();
                    if segs.last() == Some(&"Self") || segs.first() == Some(&"Self") {
                        if let Some(o) = &node.owner {
                            if let Some(v) = by_owner_method.get(&(o.as_str(), name)) {
                                targets.extend(v.iter().copied());
                            }
                        }
                    } else if !segs.is_empty() {
                        // Expand a leading import alias.
                        let mut full: Vec<&str> = Vec::new();
                        if let Some(path) = imports[fi].get(segs[0]) {
                            full.extend(path.iter().map(String::as_str));
                            full.extend(segs[1..].iter().copied());
                        } else {
                            full.extend(segs.iter().copied());
                        }
                        // A type segment wins (method/assoc-fn call) ...
                        if let Some(ty) = full.iter().rev().find(|s| known_types.contains(**s)) {
                            if let Some(v) = by_owner_method.get(&(*ty, name)) {
                                targets.extend(v.iter().copied());
                            }
                        } else {
                            // ... otherwise a module path to a free fn.
                            if let Some(krate) = path_crate(full[0], crate_of_file[fi]) {
                                if let Some(v) = free_by_crate.get(&(krate, name)) {
                                    targets.extend(v.iter().copied());
                                }
                            }
                        }
                    }
                    same_file(&mut targets);
                } else {
                    // Bare call: same file first, then imports, then globs.
                    same_file(&mut targets);
                    if targets.is_empty() {
                        if let Some(path) = imports[fi].get(name) {
                            if let Some(seg0) = path.first() {
                                if path.len() >= 2
                                    && known_types.contains(path[path.len() - 2].as_str())
                                {
                                    let ty = path[path.len() - 2].as_str();
                                    if let Some(v) = by_owner_method.get(&(ty, name)) {
                                        targets.extend(v.iter().copied());
                                    }
                                } else if let Some(krate) = path_crate(seg0, crate_of_file[fi]) {
                                    if let Some(v) = free_by_crate.get(&(krate, name)) {
                                        targets.extend(v.iter().copied());
                                    }
                                }
                            }
                        }
                    }
                    if targets.is_empty() {
                        for g in &globs[fi] {
                            if let Some(seg0) = g.first() {
                                if let Some(krate) = path_crate(seg0, crate_of_file[fi]) {
                                    if let Some(v) = free_by_crate.get(&(krate, name)) {
                                        targets.extend(v.iter().copied());
                                    }
                                }
                            }
                        }
                    }
                }
                for tgt in targets {
                    if tgt != ni {
                        calls[ni].push(CallSite {
                            target: tgt,
                            tok: i,
                            line: t.line,
                        });
                        callees[ni].insert(tgt);
                    }
                }
                i += 1;
            }
        }

        let path_to_file = files
            .iter()
            .enumerate()
            .map(|(i, f)| (f.path.clone(), i))
            .collect();
        WorkspaceGraph {
            fns,
            calls,
            callees,
            nodes_of_file,
            path_to_file,
        }
    }

    /// Index of the file with the given workspace-relative path.
    pub fn file_index(&self, path: &str) -> Option<usize> {
        self.path_to_file.get(path).copied()
    }

    /// Node indices of all functions defined in file `fi`.
    pub fn nodes_of_file(&self, fi: usize) -> &[usize] {
        &self.nodes_of_file[fi]
    }

    /// Nodes named `name` defined in the file at `path`.
    pub fn fn_ids(&self, path: &str, name: &str) -> Vec<usize> {
        match self.file_index(path) {
            Some(fi) => self.nodes_of_file[fi]
                .iter()
                .copied()
                .filter(|&n| self.fns[n].name == name)
                .collect(),
            None => Vec::new(),
        }
    }

    /// BFS closure from `roots` (roots included), recording each node's
    /// BFS predecessor so diagnostics can show a call chain back to a root.
    pub fn reachable_with_preds(
        &self,
        roots: impl IntoIterator<Item = usize>,
    ) -> (BTreeSet<usize>, HashMap<usize, usize>) {
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut preds: HashMap<usize, usize> = HashMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for r in roots {
            if seen.insert(r) {
                queue.push_back(r);
            }
        }
        while let Some(i) = queue.pop_front() {
            for &c in &self.callees[i] {
                if seen.insert(c) {
                    preds.insert(c, i);
                    queue.push_back(c);
                }
            }
        }
        (seen, preds)
    }

    /// The witness chain root → ... → `node` implied by BFS predecessors,
    /// as function names.
    pub fn chain(&self, preds: &HashMap<usize, usize>, node: usize) -> Vec<String> {
        let mut chain = vec![self.fns[node].name.clone()];
        let mut cur = node;
        while let Some(&p) = preds.get(&cur) {
            chain.push(self.fns[p].name.clone());
            cur = p;
            if chain.len() > 32 {
                break; // defensive: preds is acyclic by construction
            }
        }
        chain.reverse();
        chain
    }

    /// Render a witness chain as `` `a` → `b` → `c` ``, eliding the middle
    /// of long chains.
    pub fn chain_text(&self, preds: &HashMap<usize, usize>, node: usize) -> String {
        let chain = self.chain(preds, node);
        let parts: Vec<String> = if chain.len() > 5 {
            let mut v: Vec<String> = chain[..2].iter().map(|n| format!("`{n}`")).collect();
            v.push("…".to_string());
            v.extend(chain[chain.len() - 2..].iter().map(|n| format!("`{n}`")));
            v
        } else {
            chain.iter().map(|n| format!("`{n}`")).collect()
        };
        parts.join(" → ")
    }
}

/// The crate directory name of a workspace-relative path:
/// `crates/storage/src/wal.rs` → `storage`; top-level `src/` → ``.
fn crate_of_path(path: &str) -> &str {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("")
}

/// Map a leading path segment to a crate directory name: `crate`/`super`/
/// `self` stay in the caller's crate, `planet_storage` → `storage`,
/// `planet` → the top-level crate. Unknown segments (std, external) → None.
fn path_crate<'a>(seg0: &'a str, own_crate: &'a str) -> Option<&'a str> {
    match seg0 {
        "crate" | "super" | "self" => Some(own_crate),
        "planet" => Some(""),
        s => s.strip_prefix("planet_"),
    }
}

/// Known type names mentioned in a type's flattened text.
fn type_idents<'a>(ty: &str, known: &HashSet<&'a str>) -> Vec<&'a str> {
    let mut out = Vec::new();
    for word in ty.split(|c: char| !c.is_alphanumeric() && c != '_') {
        if let Some(&k) = known.get(word) {
            if !out.contains(&k) {
                out.push(k);
            }
        }
    }
    out
}

/// Record the known-type mentions of each `let` binding in `range` into
/// `out` (the same statement scan as `parse::typed_lets`, but keeping the
/// per-variable type sets).
fn collect_let_types<'a>(
    toks: &[Tok],
    range: Range<usize>,
    known: &HashSet<&'a str>,
    out: &mut HashMap<String, Vec<&'a str>>,
) {
    let mut i = range.start;
    while i + 2 < range.end.min(toks.len()) {
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if j < toks.len() && toks[j].is_ident("mut") {
                j += 1;
            }
            if j < toks.len() && toks[j].kind == TokKind::Ident {
                let name = toks[j].text.clone();
                let mut k = j + 1;
                let mut depth = 0i32;
                let mut tys: Vec<&str> = Vec::new();
                while k < range.end.min(toks.len()) {
                    let t = &toks[k];
                    if t.kind == TokKind::Punct {
                        match t.text.as_bytes()[0] {
                            b'{' | b'(' | b'[' => depth += 1,
                            b'}' | b')' | b']' => depth -= 1,
                            b';' if depth <= 0 => break,
                            _ => {}
                        }
                    } else if t.kind == TokKind::Ident {
                        if let Some(&ty) = known.get(t.text.as_str()) {
                            if !tys.contains(&ty) {
                                tys.push(ty);
                            }
                        }
                    }
                    k += 1;
                }
                if !tys.is_empty() {
                    out.insert(name, tys);
                }
                i = k;
                continue;
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn resolves_local_calls_transitively() {
        let src = r#"
            fn a() { b(); }
            fn b() { self.c(1); }
            fn c(x: u32) { external(x); }
            fn lonely() {}
        "#;
        let lexed = lex(src);
        let cg = CallGraph::build(&lexed.toks);
        let a = cg.named("a")[0];
        let reach = cg.reachable([a]);
        let names: Vec<&str> = reach.iter().map(|&i| cg.fns[i].name.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn duplicate_method_names_reach_all() {
        let src = r#"
            fn root() { self.step(); }
            fn step() { one(); }
            fn step(x: u32) { two(); }
        "#;
        let lexed = lex(src);
        let cg = CallGraph::build(&lexed.toks);
        let root = cg.named("root")[0];
        let reach = cg.reachable([root]);
        assert_eq!(reach.len(), 3, "both `step` defs reached");
    }

    #[test]
    fn recursion_terminates() {
        let src = "fn f() { f(); g(); } fn g() { f(); }";
        let lexed = lex(src);
        let cg = CallGraph::build(&lexed.toks);
        let f = cg.named("f")[0];
        let reach = cg.reachable([f]);
        assert_eq!(reach.len(), 2);
    }

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::from_sources(
            files
                .iter()
                .map(|(p, s)| (p.to_string(), s.to_string()))
                .collect(),
        )
    }

    #[test]
    fn workspace_graph_resolves_cross_crate_chain() {
        // The chain the per-file graph provably cannot follow:
        // run_node --use-import--> drive_into --dyn-approx--> on_message
        // --field-type--> Replica::accept --field-type--> Store::accept_id.
        let w = ws(&[
            (
                "crates/cluster/src/node.rs",
                "use planet_sim::drive_into;\npub fn run_node() { drive_into(); }",
            ),
            (
                "crates/sim/src/actor.rs",
                "pub fn drive_into() { actor.on_message(1); }",
            ),
            (
                "crates/mdcc/src/replica_actor.rs",
                r#"
                pub struct ReplicaActor { storage: Replica }
                impl Actor for ReplicaActor {
                    fn on_message(&mut self) { self.storage.accept(); }
                }
                "#,
            ),
            (
                "crates/storage/src/replica.rs",
                r#"
                pub struct Replica;
                impl Replica {
                    pub fn accept(&mut self) { self.store.accept_id(); }
                    pub fn accept_id(&mut self) {}
                }
                pub struct Store;
                impl Store { pub fn accept_id(&mut self) {} }
                "#,
            ),
        ]);
        let g = w.graph();
        let roots = g.fn_ids("crates/cluster/src/node.rs", "run_node");
        assert_eq!(roots.len(), 1);
        let (reach, preds) = g.reachable_with_preds(roots.clone());
        let reached: Vec<(&str, &str)> = reach
            .iter()
            .map(|&n| {
                (
                    g.fns[n].name.as_str(),
                    w.files()[g.fns[n].file].path.as_str(),
                )
            })
            .collect();
        assert!(reached.contains(&("drive_into", "crates/sim/src/actor.rs")));
        assert!(reached.contains(&("on_message", "crates/mdcc/src/replica_actor.rs")));
        assert!(
            reached.contains(&("accept", "crates/storage/src/replica.rs")),
            "field-typed receiver must resolve cross-crate: {reached:?}"
        );
        // Witness chain renders root-first.
        let accept = g.fn_ids("crates/storage/src/replica.rs", "accept")[0];
        let chain = g.chain(&preds, accept);
        assert_eq!(chain.first().map(String::as_str), Some("run_node"));
        assert_eq!(chain.last().map(String::as_str), Some("accept"));

        // The v2 per-file graph misses all of it: from run_node it reaches
        // only run_node itself.
        let node_file = w.file("crates/cluster/src/node.rs").unwrap();
        let cg = CallGraph::build(node_file.toks());
        let v2 = cg.reachable(cg.named("run_node").iter().copied());
        assert_eq!(v2.len(), 1, "v2 same-file graph must not see cross-crate");
    }

    #[test]
    fn workspace_graph_resolves_paths_and_typed_lets() {
        let w = ws(&[
            (
                "crates/a/src/lib.rs",
                r#"
                use planet_b::helper;
                pub struct Widget;
                pub fn root() {
                    helper();
                    planet_b::other();
                    let w: Widget = Widget::make();
                    w.spin();
                    Gear::turn();
                }
                impl Widget { pub fn make() -> Widget { Widget } pub fn spin(&self) {} }
                "#,
            ),
            (
                "crates/b/src/lib.rs",
                r#"
                pub fn helper() {}
                pub fn other() {}
                pub struct Gear;
                impl Gear { pub fn turn() {} }
                "#,
            ),
        ]);
        let g = w.graph();
        let root = g.fn_ids("crates/a/src/lib.rs", "root");
        let (reach, _) = g.reachable_with_preds(root);
        let names: Vec<&str> = reach.iter().map(|&n| g.fns[n].name.as_str()).collect();
        assert!(
            names.contains(&"helper"),
            "use-imported bare call: {names:?}"
        );
        assert!(names.contains(&"other"), "module-qualified call: {names:?}");
        assert!(names.contains(&"make"), "Type::assoc_fn call: {names:?}");
        assert!(
            names.contains(&"spin"),
            "typed-let receiver method: {names:?}"
        );
        assert!(
            names.contains(&"turn"),
            "cross-crate Type::method: {names:?}"
        );
    }

    #[test]
    fn workspace_graph_dyn_approx_denies_std_trait_methods() {
        let w = ws(&[
            (
                "crates/a/src/lib.rs",
                "pub fn root(x: &dyn Any) { x.fmt(f); x.handle(); }",
            ),
            (
                "crates/b/src/lib.rs",
                r#"
                pub struct T;
                impl Display for T { fn fmt(&self) {} }
                impl Handler for T { fn handle(&self) {} }
                "#,
            ),
        ]);
        let g = w.graph();
        let root = g.fn_ids("crates/a/src/lib.rs", "root");
        let (reach, _) = g.reachable_with_preds(root);
        let names: Vec<&str> = reach.iter().map(|&n| g.fns[n].name.as_str()).collect();
        assert!(
            names.contains(&"handle"),
            "workspace trait method: {names:?}"
        );
        assert!(!names.contains(&"fmt"), "fmt is deny-listed: {names:?}");
    }
}
