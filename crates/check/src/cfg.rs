//! Per-function control-flow graphs over the structural parser's token
//! ranges, plus a small bitset dataflow solver.
//!
//! The CFG is *structural*: it is recovered from the token stream of a
//! function body ([`crate::parse::FnDef::body`]) without type information.
//! Construction rules (also documented in DESIGN.md):
//!
//! * Tokens accumulate into the current basic block until a control keyword
//!   (`if`, `match`, `loop`, `while`, `for`) appears at paren- and
//!   bracket-depth 0 of the current statement sequence. Control constructs
//!   nested inside parentheses (call arguments) fold into the enclosing
//!   expression's block — a deliberate approximation that keeps blocks
//!   aligned with statement-level control flow.
//! * `if c { A } else { B }` branches to the lowered `A` and `B` sequences
//!   and joins after; a missing `else` adds a condition-false fall-through
//!   edge. `else if` chains lower each condition into its own block so arm
//!   bodies never leak into condition blocks.
//! * `match e { p1 => B1, ... }` branches to every arm body and joins after.
//!   Match is assumed exhaustive (rustc guarantees it), so there is no
//!   fall-through edge.
//! * `while`/`for` loops get entry → body, body → body (back edge),
//!   body → after and entry → after (zero iterations) edges. `loop` is
//!   lowered the same way — the body → after edge over-approximates a
//!   `loop` that only exits by `break`, which is conservative for
//!   must-analyses (a fact becomes *harder* to prove, never easier).
//! * `return` edges to the function exit; `break`/`continue` edge to the
//!   innermost loop's after/head block; `let ... else { B }` lowers `B` as
//!   a nested block whose own `return`/`break`/`continue` terminator
//!   produces the diverging edge, so the join after it is exactly the
//!   "binding succeeded" continuation.
//! * Closures are opaque straight-line code folded into the current block.
//! * The `?` operator is *not* modelled as an early return (the analysed
//!   protocol crates do not use it in handlers); DESIGN.md records this.
//!
//! The solver ([`solve`]) runs classic iterative dataflow over the graph
//! with facts packed into a `u64` bitmask: pick a direction, a meet
//! (intersection for *must*, union for *may*) and a per-block gen mask.

use crate::lexer::Tok;
use std::ops::Range;

/// One basic block: a contiguous token range holding no statement-level
/// control flow.
#[derive(Debug, Clone)]
pub struct Block {
    /// Token index range of the block (may be empty for join points).
    pub range: Range<usize>,
}

/// A function body's control-flow graph.
#[derive(Debug)]
pub struct Cfg {
    /// The blocks. Block 0 is the entry; [`Cfg::exit`] is the (empty)
    /// virtual exit every terminating path reaches.
    pub blocks: Vec<Block>,
    /// Successor lists, indexed by block.
    pub succs: Vec<Vec<usize>>,
    /// Index of the virtual exit block.
    pub exit: usize,
}

impl Cfg {
    /// Predecessor lists (computed on demand; CFGs here are tiny).
    pub fn preds(&self) -> Vec<Vec<usize>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (b, ss) in self.succs.iter().enumerate() {
            for &s in ss {
                preds[s].push(b);
            }
        }
        preds
    }
}

/// Builder state threaded through lowering.
struct Builder<'t> {
    toks: &'t [Tok],
    blocks: Vec<Block>,
    succs: Vec<Vec<usize>>,
    /// (head, after) block indices of the enclosing loops, innermost last.
    /// `head` is a trampoline block with an edge to the body entry.
    loop_stack: Vec<(usize, usize)>,
    exit: usize,
}

impl Builder<'_> {
    fn new_block(&mut self, range: Range<usize>) -> usize {
        self.blocks.push(Block { range });
        self.succs.push(Vec::new());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.succs[from].contains(&to) {
            self.succs[from].push(to);
        }
    }

    /// Lower a statement sequence. Control enters at a fresh block whose
    /// index is returned in `.0`; `.1` is the set of open-ended blocks the
    /// caller must connect onward (empty when every path diverged).
    fn lower_seq(&mut self, range: Range<usize>) -> (usize, Vec<usize>) {
        let entry = self.new_block(range.start..range.start);
        let mut cur = entry;
        let mut i = range.start;
        let mut depth = 0i32; // paren/bracket depth; braces handled per-construct
        while i < range.end {
            let t = &self.toks[i];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if depth == 0 && t.is_punct('|') {
                // A closure (or `||`/pattern-or): skip to the matching `|`
                // so a closure's control keywords don't split the block;
                // the skipped tokens still fold into `cur`.
                let mut j = i + 1;
                while j < range.end && !self.toks[j].is_punct('|') {
                    if self.toks[j].is_punct(';') || self.toks[j].is_punct('{') {
                        break; // not a closure header after all
                    }
                    j += 1;
                }
                if j < range.end && self.toks[j].is_punct('|') {
                    self.blocks[cur].range.end = j + 1;
                    i = j + 1;
                    // A braced closure body is folded whole.
                    if i < range.end && self.toks[i].is_punct('{') {
                        let end = crate::parse::skip_group(self.toks, i, '{', '}');
                        self.blocks[cur].range.end = end;
                        i = end;
                    }
                    continue;
                }
            } else if depth == 0 && t.is_punct('{') {
                // A bare block (let-else body, unsafe block, plain scope):
                // lower it as a nested sequence so control flow inside it
                // (notably a let-else's `return`) is modelled. A `let .. =
                // .. else { B }` is conditional — the binding-success path
                // bypasses B entirely — so it also gets a direct edge to
                // the join; a plain block only flows through its body.
                let end = crate::parse::skip_group(self.toks, i, '{', '}');
                let is_let_else = i > range.start && self.toks[i - 1].is_ident("else");
                let (sub_entry, sub_open) = self.lower_seq(i + 1..end - 1);
                self.edge(cur, sub_entry);
                let nb = self.new_block(end..end);
                for f in sub_open {
                    self.edge(f, nb);
                }
                if is_let_else {
                    self.edge(cur, nb);
                }
                cur = nb;
                i = end;
                continue;
            } else if depth == 0 && t.is_ident("if") {
                self.blocks[cur].range.end = i;
                let mut cond = cur;
                let mut arm_open: Vec<usize> = Vec::new();
                let mut j = i; // index of the current chain's `if`
                let after_pos = loop {
                    let Some(bs) = find_body_brace(self.toks, j + 1, range.end) else {
                        // Unparseable (e.g. macro soup): treat the rest as
                        // straight-line code in `cond` and stop lowering.
                        self.blocks[cond].range.end = range.end;
                        arm_open.push(cond);
                        break range.end;
                    };
                    self.blocks[cond].range.end = bs;
                    let body_end = crate::parse::skip_group(self.toks, bs, '{', '}');
                    let (arm_entry, mut arm_exit) = self.lower_seq(bs + 1..body_end - 1);
                    self.edge(cond, arm_entry);
                    arm_open.append(&mut arm_exit);
                    if body_end < range.end && self.toks[body_end].is_ident("else") {
                        if body_end + 1 < range.end && self.toks[body_end + 1].is_ident("if") {
                            // else-if: fresh condition block for the tail.
                            let nc = self.new_block(body_end + 1..body_end + 1);
                            self.edge(cond, nc);
                            cond = nc;
                            j = body_end + 1;
                            continue;
                        }
                        let eb = body_end + 1;
                        if eb < range.end && self.toks[eb].is_punct('{') {
                            let ee = crate::parse::skip_group(self.toks, eb, '{', '}');
                            let (e_entry, mut e_exit) = self.lower_seq(eb + 1..ee - 1);
                            self.edge(cond, e_entry);
                            arm_open.append(&mut e_exit);
                            break ee;
                        }
                        arm_open.push(cond);
                        break eb;
                    }
                    arm_open.push(cond); // condition-false fall-through
                    break body_end;
                };
                let nb = self.new_block(after_pos..after_pos);
                for f in arm_open {
                    self.edge(f, nb);
                }
                cur = nb;
                i = after_pos;
                continue;
            } else if depth == 0 && t.is_ident("match") {
                self.blocks[cur].range.end = i;
                let Some(bs) = find_body_brace(self.toks, i + 1, range.end) else {
                    self.blocks[cur].range.end = range.end;
                    i = range.end;
                    continue;
                };
                self.blocks[cur].range.end = bs;
                let body_end = crate::parse::skip_group(self.toks, bs, '{', '}');
                let mut arm_open: Vec<usize> = Vec::new();
                let arms = match_arm_bodies(self.toks, bs + 1..body_end - 1);
                for (arm_s, arm_e) in &arms {
                    let (a_entry, mut a_exit) = self.lower_seq(*arm_s..*arm_e);
                    self.edge(cur, a_entry);
                    arm_open.append(&mut a_exit);
                }
                if arms.is_empty() {
                    // No arms recovered: conservative fall-through.
                    arm_open.push(cur);
                }
                let nb = self.new_block(body_end..body_end);
                for f in arm_open {
                    self.edge(f, nb);
                }
                cur = nb;
                i = body_end;
                continue;
            } else if depth == 0 && (t.is_ident("loop") || t.is_ident("while") || t.is_ident("for"))
            {
                let zero_iter = !t.is_ident("loop");
                self.blocks[cur].range.end = i;
                let Some(bs) = find_body_brace(self.toks, i + 1, range.end) else {
                    self.blocks[cur].range.end = range.end;
                    i = range.end;
                    continue;
                };
                self.blocks[cur].range.end = bs;
                let body_end = crate::parse::skip_group(self.toks, bs, '{', '}');
                let head = self.new_block(bs..bs); // `continue` trampoline
                let after = self.new_block(body_end..body_end);
                self.loop_stack.push((head, after));
                let (b_entry, b_exit) = self.lower_seq(bs + 1..body_end - 1);
                self.loop_stack.pop();
                self.edge(head, b_entry);
                self.edge(cur, head);
                for f in &b_exit {
                    self.edge(*f, head); // back edge
                    self.edge(*f, after);
                }
                if zero_iter || b_exit.is_empty() {
                    self.edge(cur, after);
                }
                cur = after;
                i = body_end;
                continue;
            } else if depth == 0 && t.is_ident("return") {
                // Consume the return expression up to `;` or range end.
                let mut j = i + 1;
                let mut d = 0i32;
                while j < range.end {
                    let tt = &self.toks[j];
                    if tt.is_punct('(') || tt.is_punct('[') || tt.is_punct('{') {
                        d += 1;
                    } else if tt.is_punct(')') || tt.is_punct(']') || tt.is_punct('}') {
                        d -= 1;
                    } else if d == 0 && tt.is_punct(';') {
                        break;
                    }
                    j += 1;
                }
                self.blocks[cur].range.end = j.min(range.end);
                self.edge(cur, self.exit);
                // Anything after is dead until the enclosing join; give it
                // a fresh, predecessor-less block.
                let nb = self.new_block(j.min(range.end)..j.min(range.end));
                cur = nb;
                i = (j + 1).min(range.end);
                continue;
            } else if depth == 0 && (t.is_ident("break") || t.is_ident("continue")) {
                self.blocks[cur].range.end = i + 1;
                if let Some(&(head, after)) = self.loop_stack.last() {
                    let target = if t.is_ident("break") { after } else { head };
                    self.edge(cur, target);
                } else {
                    // break/continue whose loop the builder did not recover
                    // (e.g. a labelled break through an approximated
                    // construct): treat as a path terminator.
                    self.edge(cur, self.exit);
                }
                let nb = self.new_block(i + 1..i + 1);
                cur = nb;
                i += 1;
                continue;
            }
            self.blocks[cur].range.end = i + 1;
            i += 1;
        }
        (entry, vec![cur])
    }
}

/// Find the `{` opening a control construct's body, skipping the condition
/// expression. Struct literals in conditions require parens in Rust
/// (`if x == (S { .. })`), so the first `{` at paren-depth 0 is the body.
pub(crate) fn find_body_brace(toks: &[Tok], from: usize, end: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = from;
    while j < end {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && t.is_punct('{') {
            return Some(j);
        } else if depth == 0 && t.is_punct(';') {
            return None;
        }
        j += 1;
    }
    None
}

/// One recovered `match` arm.
#[derive(Debug, Clone)]
pub(crate) struct Arm {
    /// Token range of the pattern (and any guard) before `=>`.
    pub pattern: Range<usize>,
    /// Token range of the arm body (inside braces, or the expression).
    pub body: Range<usize>,
}

/// Split a `match` body into arms. Arms look like `PAT (if GUARD)? => BODY
/// ,?` where BODY is a braced block or an expression ending at a top-level
/// comma.
pub(crate) fn match_arms(toks: &[Tok], range: Range<usize>) -> Vec<Arm> {
    let mut arms = Vec::new();
    let mut i = range.start;
    while i < range.end {
        // Find `=>` at depth 0 (pattern braces bump depth, so struct
        // patterns like `Msg::Submit { .. } =>` parse correctly).
        let mut depth = 0i32;
        let mut arrow = None;
        let mut j = i;
        while j < range.end {
            let t = &toks[j];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            } else if depth == 0
                && t.is_punct('=')
                && j + 1 < range.end
                && toks[j + 1].is_punct('>')
            {
                arrow = Some(j);
                break;
            }
            j += 1;
        }
        let Some(a) = arrow else { break };
        let pattern = i..a;
        let body_start = a + 2;
        if body_start >= range.end {
            break;
        }
        let body_end = if toks[body_start].is_punct('{') {
            crate::parse::skip_group(toks, body_start, '{', '}')
        } else {
            // Expression arm: scan to the next top-level comma.
            let mut d = 0i32;
            let mut k = body_start;
            while k < range.end {
                let t = &toks[k];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    d += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    d -= 1;
                } else if d == 0 && t.is_punct(',') {
                    break;
                }
                k += 1;
            }
            k
        };
        arms.push(Arm {
            pattern,
            body: body_start..body_end.min(range.end),
        });
        i = body_end;
        while i < range.end && toks[i].is_punct(',') {
            i += 1;
        }
    }
    arms
}

/// Arm-body token ranges only (the CFG builder's view of a `match`).
fn match_arm_bodies(toks: &[Tok], range: Range<usize>) -> Vec<(usize, usize)> {
    match_arms(toks, range)
        .into_iter()
        .map(|a| (a.body.start, a.body.end))
        .collect()
}

/// Build the CFG for a function body token range. Block 0 is the entry.
pub fn build_cfg(toks: &[Tok], body: Range<usize>) -> Cfg {
    let mut b = Builder {
        toks,
        blocks: Vec::new(),
        succs: Vec::new(),
        loop_stack: Vec::new(),
        exit: usize::MAX,
    };
    // Reserve the exit block first so `return` lowering can reference it.
    let exit = b.new_block(body.end..body.end);
    b.exit = exit;
    let (entry, open) = b.lower_seq(body);
    for f in open {
        b.edge(f, exit);
    }
    let cfg = Cfg {
        blocks: b.blocks,
        succs: b.succs,
        exit,
    };
    cfg.rooted(entry)
}

impl Cfg {
    /// Normalise so that block 0 is the entry.
    fn rooted(mut self, entry: usize) -> Cfg {
        if entry == 0 {
            return self;
        }
        self.blocks.swap(0, entry);
        self.succs.swap(0, entry);
        for ss in self.succs.iter_mut() {
            for s in ss.iter_mut() {
                if *s == 0 {
                    *s = entry;
                } else if *s == entry {
                    *s = 0;
                }
            }
        }
        if self.exit == 0 {
            self.exit = entry;
        } else if self.exit == entry {
            self.exit = 0;
        }
        self
    }
}

/// Analysis direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Facts flow entry → exit.
    Forward,
    /// Facts flow exit → entry.
    Backward,
}

/// How facts combine at joins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Meet {
    /// Intersection: a fact holds only if it holds on *every* incoming path.
    Must,
    /// Union: a fact holds if it holds on *any* incoming path.
    May,
}

/// Per-block dataflow results in the chosen direction's sense: `entry[b]`
/// is the meet over `b`'s direction-predecessors, `out[b]` adds `b`'s own
/// generated facts.
#[derive(Debug)]
pub struct FlowResult {
    /// Fact mask holding on entry to each block (direction-relative).
    pub entry: Vec<u64>,
    /// Fact mask holding on exit from each block (direction-relative).
    pub out: Vec<u64>,
}

/// Iterative bitset dataflow over `cfg`. `gen_facts` returns the facts a
/// block generates; generated facts persist (no kill sets — the analyses
/// here track "did X happen on this path", which is monotone).
///
/// Blocks unreachable in the chosen direction keep the meet's identity
/// (`!0` for must, `0` for may) so they never weaken a reachable join.
pub fn solve(cfg: &Cfg, dir: Dir, meet: Meet, gen_facts: impl Fn(usize) -> u64) -> FlowResult {
    let n = cfg.blocks.len();
    let preds = cfg.preds();
    let (inputs, start): (&Vec<Vec<usize>>, usize) = match dir {
        Dir::Forward => (&preds, 0),
        Dir::Backward => (&cfg.succs, cfg.exit),
    };
    let top = match meet {
        Meet::Must => u64::MAX,
        Meet::May => 0,
    };
    let mut entry = vec![top; n];
    let mut out = vec![top; n];
    entry[start] = 0;
    out[start] = gen_facts(start);
    let mut changed = true;
    while changed {
        changed = false;
        for b in 0..n {
            let ins = &inputs[b];
            let e = if b == start {
                0
            } else if ins.is_empty() {
                entry[b] // unreachable in this direction: keep top
            } else {
                let mut acc = top;
                for &p in ins {
                    acc = match meet {
                        Meet::Must => acc & out[p],
                        Meet::May => acc | out[p],
                    };
                }
                acc
            };
            let o = e | gen_facts(b);
            if e != entry[b] || o != out[b] {
                entry[b] = e;
                out[b] = o;
                changed = true;
            }
        }
    }
    FlowResult { entry, out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::fns;

    fn cfg_of(src: &str) -> (crate::lexer::Lexed, Cfg) {
        let lexed = lex(src);
        let f = fns(&lexed.toks).into_iter().next().expect("one fn");
        let cfg = build_cfg(&lexed.toks, f.body);
        (lexed, cfg)
    }

    /// Gen mask 1 for blocks containing the identifier `name`.
    fn gen_ident(lexed: &crate::lexer::Lexed, cfg: &Cfg, name: &str) -> Vec<u64> {
        cfg.blocks
            .iter()
            .map(|b| {
                if lexed.toks[b.range.clone()].iter().any(|t| t.is_ident(name)) {
                    1
                } else {
                    0
                }
            })
            .collect()
    }

    #[test]
    fn straight_line_is_one_path() {
        let (lexed, cfg) = cfg_of("fn f() { a(); b(); }");
        let gens = gen_ident(&lexed, &cfg, "a");
        let r = solve(&cfg, Dir::Forward, Meet::Must, |b| gens[b]);
        assert_eq!(r.out[cfg.exit] & 1, 1, "a() on every path to exit");
    }

    #[test]
    fn if_without_else_breaks_must() {
        let (lexed, cfg) = cfg_of("fn f(c: bool) { if c { a(); } b(); }");
        let gens = gen_ident(&lexed, &cfg, "a");
        let r = solve(&cfg, Dir::Forward, Meet::Must, |b| gens[b]);
        assert_eq!(r.out[cfg.exit] & 1, 0, "a() is conditional");
        let r = solve(&cfg, Dir::Forward, Meet::May, |b| gens[b]);
        assert_eq!(r.out[cfg.exit] & 1, 1, "a() on some path");
    }

    #[test]
    fn if_else_both_arms_must() {
        let (lexed, cfg) = cfg_of("fn f(c: bool) { if c { a(); } else { a(); } b(); }");
        let gens = gen_ident(&lexed, &cfg, "a");
        let r = solve(&cfg, Dir::Forward, Meet::Must, |b| gens[b]);
        assert_eq!(r.out[cfg.exit] & 1, 1, "a() on both arms");
    }

    #[test]
    fn else_if_chain_tail_does_not_leak() {
        // Regression: arm bodies must not fold into condition blocks, and
        // the final else-if without a bare else keeps its fall-through.
        let src = "fn f(a: bool, b: bool) { if a { x(); } else if b { x(); } y(); }";
        let (lexed, cfg) = cfg_of(src);
        let gens = gen_ident(&lexed, &cfg, "x");
        let r = solve(&cfg, Dir::Forward, Meet::Must, |b| gens[b]);
        assert_eq!(r.out[cfg.exit] & 1, 0, "!a && !b path skips x()");
    }

    #[test]
    fn else_if_chain_with_final_else_must() {
        let src = "fn f(a: bool, b: bool) { if a { x(); } else if b { x(); } else { x(); } }";
        let (lexed, cfg) = cfg_of(src);
        let gens = gen_ident(&lexed, &cfg, "x");
        let r = solve(&cfg, Dir::Forward, Meet::Must, |b| gens[b]);
        assert_eq!(r.out[cfg.exit] & 1, 1, "x() on every chain arm");
    }

    #[test]
    fn early_return_path_counts() {
        let (lexed, cfg) = cfg_of("fn f(c: bool) { if c { return; } a(); }");
        let gens = gen_ident(&lexed, &cfg, "a");
        let r = solve(&cfg, Dir::Forward, Meet::Must, |b| gens[b]);
        assert_eq!(r.out[cfg.exit] & 1, 0, "return path skips a()");
    }

    #[test]
    fn match_arms_join() {
        let src = "fn f(x: u32) { match x { 0 => { a(); } _ => { a(); } } b(); }";
        let (lexed, cfg) = cfg_of(src);
        let gens = gen_ident(&lexed, &cfg, "a");
        let r = solve(&cfg, Dir::Forward, Meet::Must, |b| gens[b]);
        assert_eq!(r.out[cfg.exit] & 1, 1, "a() in every arm");
    }

    #[test]
    fn match_arm_missing_call_breaks_must() {
        let src = "fn f(x: u32) { match x { 0 => { a(); } _ => {} } b(); }";
        let (lexed, cfg) = cfg_of(src);
        let gens = gen_ident(&lexed, &cfg, "a");
        let r = solve(&cfg, Dir::Forward, Meet::Must, |b| gens[b]);
        assert_eq!(r.out[cfg.exit] & 1, 0);
    }

    #[test]
    fn expression_arms_lower_like_blocks() {
        let src = "fn f(x: u32) { match x { 0 => a(), _ => a(), } b(); }";
        let (lexed, cfg) = cfg_of(src);
        let gens = gen_ident(&lexed, &cfg, "a");
        let r = solve(&cfg, Dir::Forward, Meet::Must, |b| gens[b]);
        assert_eq!(r.out[cfg.exit] & 1, 1);
    }

    #[test]
    fn loop_body_is_zero_or_more() {
        let (lexed, cfg) = cfg_of("fn f(v: Vec<u32>) { for x in v { a(); } b(); }");
        let gens = gen_ident(&lexed, &cfg, "a");
        let r = solve(&cfg, Dir::Forward, Meet::Must, |b| gens[b]);
        assert_eq!(r.out[cfg.exit] & 1, 0, "loop may run zero times");
    }

    #[test]
    fn nested_loop_continue_targets_inner() {
        // A `continue` in the inner loop must not divert outer-loop paths:
        // the outer tail `t()` stays reachable.
        let src = "fn f() { for x in v { for y in w { if c { continue; } a(); } t(); } }";
        let (lexed, cfg) = cfg_of(src);
        let gens = gen_ident(&lexed, &cfg, "t");
        let r = solve(&cfg, Dir::Forward, Meet::May, |b| gens[b]);
        assert_eq!(r.out[cfg.exit] & 1, 1, "outer tail reachable");
    }

    #[test]
    fn backward_must_after() {
        // From the `mark` point, every path to exit passes through a().
        let (lexed, cfg) = cfg_of("fn f(c: bool) { mark(); if c { a(); } else { a(); } }");
        let gens = gen_ident(&lexed, &cfg, "a");
        let r = solve(&cfg, Dir::Backward, Meet::Must, |b| gens[b]);
        let marks = gen_ident(&lexed, &cfg, "mark");
        let mb = (0..cfg.blocks.len())
            .find(|&b| marks[b] == 1)
            .expect("mark block");
        assert_eq!(r.entry[mb] & 1, 1, "a() after mark on all paths");
    }

    #[test]
    fn let_else_diverging_path() {
        let src = "fn f(o: Option<u32>) { let Some(x) = o else { return; }; a(x); }";
        let (lexed, cfg) = cfg_of(src);
        let gens = gen_ident(&lexed, &cfg, "a");
        let r = solve(&cfg, Dir::Forward, Meet::May, |b| gens[b]);
        assert_eq!(r.out[cfg.exit] & 1, 1, "bound path reaches a()");
        // The else path returns before a(): must fails at the exit.
        let r = solve(&cfg, Dir::Forward, Meet::Must, |b| gens[b]);
        assert_eq!(r.out[cfg.exit] & 1, 0);
    }

    #[test]
    fn let_else_success_path_is_modelled() {
        // Regression: the binding-success path bypasses the else block, so
        // facts generated *inside* the else block must not become
        // must-facts after it. (Without the cur→join edge the join's only
        // predecessor is the else block's dead tail, which carries the
        // must-identity and silently proves everything.)
        let src = "fn f(o: Option<u32>) { let Some(x) = o else { esc(); return; }; a(x); }";
        let (lexed, cfg) = cfg_of(src);
        let gens = gen_ident(&lexed, &cfg, "esc");
        let r = solve(&cfg, Dir::Forward, Meet::Must, |b| gens[b]);
        assert_eq!(r.out[cfg.exit] & 1, 0, "esc() only on the diverging path");
    }

    #[test]
    fn closure_is_opaque() {
        // The `if` inside the closure must not split the enclosing block.
        let src = "fn f() { let g = |x: u32| { if x > 0 { a(); } }; b(); }";
        let (lexed, cfg) = cfg_of(src);
        let gens = gen_ident(&lexed, &cfg, "b");
        let r = solve(&cfg, Dir::Forward, Meet::Must, |bk| gens[bk]);
        assert_eq!(r.out[cfg.exit] & 1, 1);
        let ga = gen_ident(&lexed, &cfg, "a");
        assert!(ga.contains(&1), "closure body tokens kept");
    }
}
