//! The `planet-check` CLI: run the protocol-analysis pipeline over the
//! workspace and report findings.
//!
//! ```text
//! cargo run -p planet-check                 # human-readable report
//! cargo run -p planet-check -- --json      # JSON for CI
//! cargo run -p planet-check -- --pass wire # a single pass
//! cargo run -p planet-check -- --fix-allow # append allow-markers at findings
//! cargo run -p planet-check -- --baseline check-baseline.tsv   # CI gate
//! ```
//!
//! Exit status is 0 when no error-severity diagnostics were produced, 1
//! otherwise — the CI gate is just the exit code. With `--baseline`, known
//! findings recorded in the baseline file are reported separately and only
//! *new* errors fail the run, so a legacy debt list can be burned down
//! without blocking unrelated changes.

use std::path::PathBuf;
use std::process::ExitCode;

use planet_check::{
    all_passes, baseline::Baseline, diag, run_passes_timed, PassTiming, Severity, Workspace,
};

struct Opts {
    root: PathBuf,
    json: bool,
    fix_allow: bool,
    list: bool,
    passes: Vec<String>,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        root: PathBuf::from("."),
        json: false,
        fix_allow: false,
        list: false,
        passes: Vec::new(),
        baseline: None,
        write_baseline: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--fix-allow" => opts.fix_allow = true,
            "--list" => opts.list = true,
            "--root" => {
                opts.root = PathBuf::from(
                    args.next()
                        .ok_or_else(|| "--root needs a path".to_string())?,
                );
            }
            "--pass" => {
                opts.passes.push(
                    args.next()
                        .ok_or_else(|| "--pass needs a name".to_string())?,
                );
            }
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(
                    args.next()
                        .ok_or_else(|| "--baseline needs a path".to_string())?,
                ));
            }
            "--write-baseline" => {
                opts.write_baseline =
                    Some(PathBuf::from(args.next().ok_or_else(|| {
                        "--write-baseline needs a path".to_string()
                    })?));
            }
            "--help" | "-h" => {
                println!(
                    "planet-check: protocol-aware static analysis\n\n\
                     USAGE: planet-check [--root <dir>] [--pass <name>]... [--json] [--fix-allow] [--list]\n\
                     \x20                   [--baseline <file>] [--write-baseline <file>]\n\n\
                     --root <dir>           workspace root (default: current directory)\n\
                     --pass <name>          run only the named pass (repeatable); see --list\n\
                     --json                 machine-readable output\n\
                     --fix-allow            append `// check:allow(determinism)` at DET findings\n\
                     --list                 list the registered passes and exit\n\
                     --baseline <file>      suppress findings recorded in <file>; only NEW\n\
                     \x20                       errors fail the run\n\
                     --write-baseline <file> snapshot current findings to <file> and exit 0"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(opts)
}

/// `--fix-allow`: append a suppression marker to each line carrying a
/// determinism finding, then report what was rewritten.
fn apply_fix_allow(root: &std::path::Path, diags: &[diag::Diagnostic]) -> std::io::Result<usize> {
    use std::collections::BTreeMap;
    let mut per_file: BTreeMap<&str, Vec<u32>> = BTreeMap::new();
    for d in diags {
        if d.code.starts_with("DET") {
            per_file.entry(d.file.as_str()).or_default().push(d.line);
        }
    }
    let mut fixed = 0usize;
    for (file, mut lines) in per_file {
        lines.sort_unstable();
        lines.dedup();
        let path = root.join(file);
        let src = std::fs::read_to_string(&path)?;
        let mut out = String::with_capacity(src.len() + 64 * lines.len());
        for (i, line) in src.lines().enumerate() {
            let n = (i + 1) as u32;
            if lines.contains(&n) && !line.contains("check:allow") {
                out.push_str(line.trim_end());
                out.push_str(" // check:allow(determinism)");
                fixed += 1;
            } else {
                out.push_str(line);
            }
            out.push('\n');
        }
        std::fs::write(&path, out)?;
    }
    Ok(fixed)
}

/// The `--json` report: the findings array (unchanged shape, as
/// `"findings"`) plus per-pass wall time so CI can track the self-check's
/// time budget per pass.
fn render_json_report(diags: &[diag::Diagnostic], timings: &[PassTiming]) -> String {
    let mut s = String::from("{\n  \"findings\": ");
    let findings = diag::render_json(diags);
    for (i, line) in findings.trim_end().lines().enumerate() {
        if i > 0 {
            s.push_str("\n  ");
        }
        s.push_str(line);
    }
    s.push_str(",\n  \"timings\": [\n");
    for (i, t) in timings.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"pass\": \"{}\", \"micros\": {}, \"findings\": {}}}{}\n",
            t.name,
            t.micros,
            t.findings,
            if i + 1 < timings.len() { "," } else { "" }
        ));
    }
    s.push_str(&format!(
        "  ],\n  \"total_micros\": {}\n}}\n",
        timings.iter().map(|t| t.micros).sum::<u128>()
    ));
    s
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("planet-check: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.list {
        for pass in all_passes() {
            println!("{:12} {}", pass.name(), pass.description());
        }
        return ExitCode::SUCCESS;
    }

    let known: Vec<&str> = all_passes().iter().map(|p| p.name()).collect();
    for name in &opts.passes {
        if !known.contains(&name.as_str()) {
            eprintln!(
                "planet-check: unknown pass `{name}` (known: {})",
                known.join(", ")
            );
            return ExitCode::from(2);
        }
    }

    let ws = match Workspace::load(&opts.root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!(
                "planet-check: cannot load workspace at {}: {e}",
                opts.root.display()
            );
            return ExitCode::from(2);
        }
    };

    let (diags, timings) = run_passes_timed(&ws, &opts.passes);

    if opts.fix_allow {
        match apply_fix_allow(&opts.root, &diags) {
            Ok(n) => eprintln!("planet-check: annotated {n} line(s) with check:allow(determinism)"),
            Err(e) => {
                eprintln!("planet-check: --fix-allow failed: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if let Some(path) = &opts.write_baseline {
        let baseline = Baseline::from_diags(diags.iter());
        if let Err(e) = std::fs::write(path, baseline.render()) {
            eprintln!(
                "planet-check: cannot write baseline {}: {e}",
                path.display()
            );
            return ExitCode::from(2);
        }
        eprintln!(
            "planet-check: wrote {} baseline entr{} to {}",
            baseline.len(),
            if baseline.len() == 1 { "y" } else { "ies" },
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match &opts.baseline {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("planet-check: cannot read baseline {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            match Baseline::parse(&text) {
                Ok(b) => Some(b),
                Err(e) => {
                    eprintln!("planet-check: bad baseline {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
        None => None,
    };

    let gated: Vec<diag::Diagnostic> = match &baseline {
        Some(b) => {
            let (fresh, old) = b.filter(&diags);
            if !old.is_empty() {
                eprintln!(
                    "planet-check: {} baselined finding(s) suppressed",
                    old.len()
                );
            }
            fresh.into_iter().cloned().collect()
        }
        None => diags.clone(),
    };

    if opts.json {
        print!("{}", render_json_report(&gated, &timings));
    } else {
        print!("{}", diag::render_text(&gated));
    }

    let errors = gated.iter().any(|d| d.severity == Severity::Error);
    if errors && !opts.fix_allow {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
