//! Findings baselines: snapshot the current diagnostics so CI fails only
//! on *new* findings while legacy ones are burned down over time.
//!
//! A baseline is a plain text file, one entry per line:
//!
//! ```text
//! CODE<TAB>file/path.rs<TAB>count
//! ```
//!
//! Entries are keyed by `(code, file)` with a *count*, not by line number —
//! line-keyed baselines churn on every unrelated edit, while count-keyed
//! ones only trip when a file genuinely gains a new instance of a code.
//! Lines starting with `#` are comments. The file is sorted so diffs stay
//! minimal.

use crate::diag::Diagnostic;
use std::collections::BTreeMap;

/// Parsed baseline: (code, file) → allowed count.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    entries: BTreeMap<(String, String), usize>,
}

impl Baseline {
    /// Parse a baseline file's contents. Malformed lines are reported as
    /// errors (a silently-skipped entry would un-baseline real findings).
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = BTreeMap::new();
        for (n, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split('\t');
            let (Some(code), Some(file), Some(count)) = (parts.next(), parts.next(), parts.next())
            else {
                return Err(format!(
                    "baseline line {}: expected CODE<TAB>file<TAB>count, got {:?}",
                    n + 1,
                    line
                ));
            };
            let count: usize = count
                .parse()
                .map_err(|_| format!("baseline line {}: bad count {:?}", n + 1, count))?;
            entries.insert((code.to_string(), file.to_string()), count);
        }
        Ok(Baseline { entries })
    }

    /// Snapshot a set of diagnostics into a baseline.
    pub fn from_diags<'d>(diags: impl IntoIterator<Item = &'d Diagnostic>) -> Baseline {
        let mut entries: BTreeMap<(String, String), usize> = BTreeMap::new();
        for d in diags {
            *entries
                .entry((d.code.to_string(), d.file.clone()))
                .or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Render to the on-disk format.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# planet-check findings baseline.\n\
             # One entry per (code, file): findings up to `count` are tolerated;\n\
             # regenerate with `planet-check --write-baseline <this file>`.\n",
        );
        for ((code, file), count) in &self.entries {
            out.push_str(&format!("{code}\t{file}\t{count}\n"));
        }
        out
    }

    /// Split `diags` into (new, baselined). For each (code, file) group the
    /// first `allowed` diagnostics (in line order — `diags` must be sorted)
    /// count as baselined; any excess is new.
    pub fn filter<'d>(
        &self,
        diags: &'d [Diagnostic],
    ) -> (Vec<&'d Diagnostic>, Vec<&'d Diagnostic>) {
        let mut used: BTreeMap<(String, String), usize> = BTreeMap::new();
        let mut fresh = Vec::new();
        let mut old = Vec::new();
        for d in diags {
            let key = (d.code.to_string(), d.file.clone());
            let allowed = self.entries.get(&key).copied().unwrap_or(0);
            let u = used.entry(key).or_insert(0);
            if *u < allowed {
                *u += 1;
                old.push(d);
            } else {
                fresh.push(d);
            }
        }
        (fresh, old)
    }

    /// Number of baseline entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the baseline has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Diagnostic;

    fn d(code: &'static str, file: &str, line: u32) -> Diagnostic {
        Diagnostic::error(code, file, line, "msg".to_string())
    }

    #[test]
    fn roundtrip() {
        let diags = vec![
            d("TIME001", "a.rs", 3),
            d("TIME001", "a.rs", 9),
            d("CB002", "b.rs", 1),
        ];
        let b = Baseline::from_diags(&diags);
        let b2 = Baseline::parse(&b.render()).expect("parses");
        assert_eq!(b, b2);
    }

    #[test]
    fn excess_findings_are_new() {
        let base = Baseline::parse("TIME001\ta.rs\t1\n").expect("parses");
        let diags = vec![d("TIME001", "a.rs", 3), d("TIME001", "a.rs", 9)];
        let (fresh, old) = base.filter(&diags);
        assert_eq!(old.len(), 1);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].line, 9, "later finding counted as new");
    }

    #[test]
    fn unlisted_code_is_new() {
        let base = Baseline::parse("# empty\n").expect("parses");
        let diags = vec![d("PANIC001", "x.rs", 1)];
        let (fresh, old) = base.filter(&diags);
        assert_eq!((fresh.len(), old.len()), (1, 0));
    }

    #[test]
    fn malformed_line_errors() {
        assert!(
            Baseline::parse("TIME001 a.rs 1\n").is_err(),
            "spaces not tabs"
        );
        assert!(Baseline::parse("TIME001\ta.rs\tmany\n").is_err());
    }
}
