//! Span-carrying diagnostics and the compiler-style report renderer, with a
//! machine-readable JSON mode for CI.

use std::fmt::Write as _;

/// How severe a finding is. `Error` diagnostics fail the build gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: printed, never fails the gate.
    Warning,
    /// Protocol-threatening: fails the gate.
    Error,
}

impl Severity {
    fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding, anchored to a source position.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Stable machine code, e.g. `WIRE002`.
    pub code: &'static str,
    /// Severity of the finding.
    pub severity: Severity,
    /// Workspace-relative path of the file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description of the defect.
    pub message: String,
    /// A concrete next step, when one exists.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// An error diagnostic.
    pub fn error(code: &'static str, file: &str, line: u32, message: String) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            file: file.to_string(),
            line,
            message,
            suggestion: None,
        }
    }

    /// Attach a suggestion.
    pub fn with_suggestion(mut self, s: impl Into<String>) -> Self {
        self.suggestion = Some(s.into());
        self
    }
}

/// Sort diagnostics for stable output: by file, line, then code.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| (a.file.as_str(), a.line, a.code).cmp(&(b.file.as_str(), b.line, b.code)));
}

/// Render the human-readable report.
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        let _ = writeln!(out, "{}[{}]: {}", d.severity.as_str(), d.code, d.message);
        let _ = writeln!(out, "  --> {}:{}", d.file, d.line);
        if let Some(s) = &d.suggestion {
            let _ = writeln!(out, "  help: {s}");
        }
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    let _ = writeln!(
        out,
        "planet-check: {errors} error(s), {warnings} warning(s)"
    );
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render the machine-readable report: a JSON array of diagnostic objects.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n  {{\"code\":\"{}\",\"severity\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"",
            d.code,
            d.severity.as_str(),
            json_escape(&d.file),
            d.line,
            json_escape(&d.message)
        );
        if let Some(s) = &d.suggestion {
            let _ = write!(out, ",\"suggestion\":\"{}\"", json_escape(s));
        }
        out.push('}');
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_and_sorts() {
        let mut diags = vec![
            Diagnostic::error("B002", "b.rs", 9, "second".into()),
            Diagnostic::error("A001", "a.rs", 3, "first".into()).with_suggestion("do the thing"),
        ];
        sort(&mut diags);
        let text = render_text(&diags);
        assert!(text.find("A001").unwrap() < text.find("B002").unwrap());
        assert!(text.contains("--> a.rs:3"));
        assert!(text.contains("help: do the thing"));
        assert!(text.contains("2 error(s)"));
    }

    #[test]
    fn json_is_escaped() {
        let diags = vec![Diagnostic::error(
            "X001",
            "x.rs",
            1,
            "quote \" and \\ backslash".into(),
        )];
        let json = render_json(&diags);
        assert!(json.contains("\\\""));
        assert!(json.contains("\\\\"));
        assert!(json.contains("\"line\":1"));
    }
}
