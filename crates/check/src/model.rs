//! The shared analysis model: lexed + structurally parsed source files, a
//! pass trait over them, and the workspace loader.
//!
//! Passes see one [`Workspace`] — every `.rs` file under `crates/*/src` and
//! `src/`, lexed once, with lazy access to parsed shapes. The model layer is
//! the place later PRs extend (new item shapes, new crate scopes) without
//! touching individual passes.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use std::time::Instant;

use crate::callgraph::WorkspaceGraph;
use crate::diag::Diagnostic;
use crate::lexer::{lex, Lexed, Tok};
use crate::parse::{self, EnumDef, FieldDef, FnDef, ImplDef, UseDecl};

/// One analysed source file.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (e.g.
    /// `crates/mdcc/src/messages.rs`).
    pub path: String,
    /// Token stream and `check:allow` markers.
    pub lexed: Lexed,
    enums: Vec<EnumDef>,
    fns: Vec<FnDef>,
    fields: Vec<FieldDef>,
    impls: Vec<ImplDef>,
    uses: Vec<UseDecl>,
    types: Vec<String>,
}

impl SourceFile {
    /// Build from raw source text.
    pub fn new(path: String, src: &str) -> Self {
        let lexed = lex(src);
        let enums = parse::enums(&lexed.toks);
        let fns = parse::fns(&lexed.toks);
        let fields = parse::struct_fields(&lexed.toks);
        let impls = parse::impls(&lexed.toks);
        let uses = parse::use_decls(&lexed.toks);
        let types = parse::type_names(&lexed.toks);
        SourceFile {
            path,
            lexed,
            enums,
            fns,
            fields,
            impls,
            uses,
            types,
        }
    }

    /// The token stream.
    pub fn toks(&self) -> &[Tok] {
        &self.lexed.toks
    }

    /// Enum definitions in this file.
    pub fn enums(&self) -> &[EnumDef] {
        &self.enums
    }

    /// Function items in this file.
    pub fn fns(&self) -> &[FnDef] {
        &self.fns
    }

    /// Struct fields in this file.
    pub fn fields(&self) -> &[FieldDef] {
        &self.fields
    }

    /// Impl blocks in this file.
    pub fn impls(&self) -> &[ImplDef] {
        &self.impls
    }

    /// `use` declarations in this file.
    pub fn uses(&self) -> &[UseDecl] {
        &self.uses
    }

    /// Names of structs/enums/traits declared in this file.
    pub fn types(&self) -> &[String] {
        &self.types
    }

    /// Find an enum by name.
    pub fn enum_named(&self, name: &str) -> Option<&EnumDef> {
        self.enums.iter().find(|e| e.name == name)
    }

    /// Find a function by name (first match).
    pub fn fn_named(&self, name: &str) -> Option<&FnDef> {
        self.fns.iter().find(|f| f.name == name)
    }

    /// True if line `line` (or the line above it, for a marker comment on
    /// its own line) carries `// check:allow(<lint>)`.
    pub fn allowed(&self, lint: &str, line: u32) -> bool {
        self.lexed
            .allows
            .get(lint)
            .is_some_and(|lines| lines.contains(&line) || lines.contains(&line.saturating_sub(1)))
    }
}

/// The full set of analysed files.
pub struct Workspace {
    files: Vec<SourceFile>,
    by_path: HashMap<String, usize>,
    graph: OnceLock<WorkspaceGraph>,
}

impl Workspace {
    /// Build a workspace from in-memory `(path, source)` pairs — the fixture
    /// entry point. Each file is lexed and structurally parsed exactly once,
    /// here; passes reuse the shared model. The per-file front-end work is
    /// independent, so it fans out across threads.
    pub fn from_sources(sources: Vec<(String, String)>) -> Self {
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(sources.len().max(1));
        let files: Vec<SourceFile> = if workers <= 1 || sources.len() < 8 {
            sources
                .into_iter()
                .map(|(p, s)| SourceFile::new(p, &s))
                .collect()
        } else {
            let chunk = sources.len().div_ceil(workers);
            let chunks: Vec<&[(String, String)]> = sources.chunks(chunk).collect();
            let parsed: Vec<Vec<SourceFile>> = std::thread::scope(|scope| {
                let handles: Vec<_> = chunks
                    .into_iter()
                    .map(|c| {
                        scope.spawn(move || {
                            c.iter()
                                .map(|(p, s)| SourceFile::new(p.clone(), s))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("front-end worker panicked"))
                    .collect()
            });
            parsed.into_iter().flatten().collect()
        };
        let by_path = files
            .iter()
            .enumerate()
            .map(|(i, f)| (f.path.clone(), i))
            .collect();
        Workspace {
            files,
            by_path,
            graph: OnceLock::new(),
        }
    }

    /// The workspace-wide call graph, built on first use and shared by all
    /// passes that need interprocedural reachability.
    pub fn graph(&self) -> &WorkspaceGraph {
        self.graph.get_or_init(|| WorkspaceGraph::build(self))
    }

    /// Load every `.rs` file under `crates/*/src`, `crates/*/tests` is
    /// deliberately excluded (tests may be nondeterministic and unlocked).
    /// `crates/loom` is excluded too: it is the `--cfg loom` model checker
    /// itself — dead code in production builds, and its `Mutex`/`Condvar`
    /// shims would otherwise alias the std names the race pass keys on and
    /// pollute the call graph with phantom blocking edges. Files are
    /// ordered by path so reports are stable.
    pub fn load(root: &Path) -> std::io::Result<Self> {
        let mut sources = Vec::new();
        let crates_dir = root.join("crates");
        let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir() && p.file_name().is_none_or(|n| n != "loom"))
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let src = dir.join("src");
            if src.is_dir() {
                collect_rs(&src, root, &mut sources)?;
            }
        }
        let top_src = root.join("src");
        if top_src.is_dir() {
            collect_rs(&top_src, root, &mut sources)?;
        }
        sources.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(Self::from_sources(sources))
    }

    /// All files, in path order.
    pub fn files(&self) -> &[SourceFile] {
        &self.files
    }

    /// Look up a file by exact workspace-relative path.
    pub fn file(&self, path: &str) -> Option<&SourceFile> {
        self.by_path.get(path).map(|&i| &self.files[i])
    }

    /// Files under a workspace-relative directory prefix.
    pub fn files_under<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a SourceFile> {
        self.files
            .iter()
            .filter(move |f| f.path.starts_with(prefix))
    }
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<(String, String)>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let src = std::fs::read_to_string(&path)?;
            out.push((rel, src));
        }
    }
    Ok(())
}

/// A single analysis pass over the workspace model.
pub trait Pass {
    /// Short machine name (used by `--pass`).
    fn name(&self) -> &'static str;
    /// One-line description for `--list`.
    fn description(&self) -> &'static str;
    /// Run, appending findings to `out`.
    fn run(&self, ws: &Workspace, out: &mut Vec<Diagnostic>);
}

/// The built-in pass pipeline, in execution order.
pub fn all_passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(crate::passes::wire::WireCodecPass),
        Box::new(crate::passes::state::StateMachinePass),
        Box::new(crate::passes::locks::LockOrderPass),
        Box::new(crate::passes::determinism::DeterminismPass),
        Box::new(crate::passes::time::TimePass),
        Box::new(crate::passes::callback::CallbackPass),
        Box::new(crate::passes::panic::PanicPass),
        Box::new(crate::passes::flow::FlowPass),
        Box::new(crate::passes::race::RacePass),
        Box::new(crate::passes::sync::SyncPass),
    ]
}

/// Wall time and finding count of one pass execution.
#[derive(Debug, Clone)]
pub struct PassTiming {
    /// The pass's machine name.
    pub name: &'static str,
    /// Wall time in microseconds.
    pub micros: u128,
    /// Findings the pass produced.
    pub findings: usize,
}

/// Run the named passes (or all, when `only` is empty) and return sorted
/// diagnostics.
pub fn run_passes(ws: &Workspace, only: &[String]) -> Vec<Diagnostic> {
    run_passes_timed(ws, only).0
}

/// [`run_passes`], also reporting per-pass wall time for the `--json`
/// report (and for holding the self-check under its time budget).
pub fn run_passes_timed(ws: &Workspace, only: &[String]) -> (Vec<Diagnostic>, Vec<PassTiming>) {
    let mut out = Vec::new();
    let mut timings = Vec::new();
    for pass in all_passes() {
        if only.is_empty() || only.iter().any(|n| n == pass.name()) {
            let before = out.len();
            let start = Instant::now();
            pass.run(ws, &mut out);
            timings.push(PassTiming {
                name: pass.name(),
                micros: start.elapsed().as_micros(),
                findings: out.len() - before,
            });
        }
    }
    crate::diag::sort(&mut out);
    (out, timings)
}
