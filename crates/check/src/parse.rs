//! Structural parsing over the token stream: enough shape recovery to feed
//! the passes — enum definitions with per-variant field counts, function
//! bodies as token ranges, struct fields with their type text, and
//! explicitly-typed `let` bindings.
//!
//! This is deliberately not a full Rust parser. It recovers the handful of
//! item shapes the passes reason about and ignores everything else; any
//! construct it cannot follow is skipped, never an error.

use crate::lexer::{Tok, TokKind};

/// One variant of an enum.
#[derive(Debug, Clone)]
pub struct VariantDef {
    /// Variant name.
    pub name: String,
    /// 1-based line of the variant.
    pub line: u32,
    /// Number of fields: `None` for a unit variant, `Some(n)` for struct or
    /// tuple variants.
    pub fields: Option<usize>,
}

/// An enum definition.
#[derive(Debug, Clone)]
pub struct EnumDef {
    /// Enum name.
    pub name: String,
    /// 1-based line of the `enum` keyword.
    pub line: u32,
    /// The variants, in declaration order.
    pub variants: Vec<VariantDef>,
}

/// A function item: its name and the token range of its body (the tokens
/// strictly between the outer `{` and `}`).
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index range of the body, excluding the outer braces.
    pub body: std::ops::Range<usize>,
    /// Named parameters as `(name, type-text)`. Pattern parameters
    /// (tuples, destructures) are skipped; `self` receivers are excluded.
    pub params: Vec<(String, String)>,
}

/// An `impl` block: the self type, the trait (when it is a trait impl),
/// and the token range of the body.
#[derive(Debug, Clone)]
pub struct ImplDef {
    /// The self type's final path segment (`Coordinator` in
    /// `impl planet_mdcc::Coordinator`).
    pub ty: String,
    /// `Some(trait name)` for `impl Trait for Type`, `None` for inherent.
    pub trait_name: Option<String>,
    /// Token index range of the body, excluding the outer braces.
    pub body: std::ops::Range<usize>,
}

/// One name bound by a `use` declaration, with the full path that binds it.
#[derive(Debug, Clone)]
pub struct UseDecl {
    /// The name the declaration binds in this module (the alias after
    /// `as`, otherwise the final segment; `*` for glob imports).
    pub name: String,
    /// The full path segments, e.g. `["planet_sim", "drive_into"]`.
    pub segments: Vec<String>,
}

/// A struct field with its declared type, flattened to text.
#[derive(Debug, Clone)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// The type, as space-joined token text (e.g. `HashMap < u32 , SiteId >`).
    pub ty: String,
}

/// Advance past a balanced `open`/`close` group. `i` must point at the
/// opening token; returns the index just past the matching closer.
pub fn skip_group(toks: &[Tok], i: usize, open: char, close: char) -> usize {
    debug_assert!(toks[i].is_punct(open));
    let mut depth = 0usize;
    let mut j = i;
    while j < toks.len() {
        if toks[j].is_punct(open) {
            depth += 1;
        } else if toks[j].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    toks.len()
}

/// Split the token range of a braced group body into top-level,
/// comma-separated element ranges. Empty elements are dropped.
fn split_top_level_commas(
    toks: &[Tok],
    range: std::ops::Range<usize>,
) -> Vec<std::ops::Range<usize>> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = range.start;
    for j in range.clone() {
        let t = &toks[j];
        if t.kind == TokKind::Punct {
            match t.text.as_bytes().first() {
                Some(b'{') | Some(b'(') | Some(b'[') => depth += 1,
                Some(b'}') | Some(b')') | Some(b']') => depth -= 1,
                Some(b',') if depth == 0 => {
                    if j > start {
                        out.push(start..j);
                    }
                    start = j + 1;
                }
                _ => {}
            }
        }
    }
    if range.end > start {
        out.push(start..range.end);
    }
    out
}

/// Extract every enum definition in the file.
pub fn enums(toks: &[Tok]) -> Vec<EnumDef> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("enum") && i + 1 < toks.len() && toks[i + 1].kind == TokKind::Ident {
            let name = toks[i + 1].text.clone();
            let line = toks[i].line;
            // Find the opening brace (skipping generics on the name).
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                j += 1;
            }
            if j >= toks.len() || toks[j].is_punct(';') {
                i = j + 1;
                continue;
            }
            let end = skip_group(toks, j, '{', '}');
            let mut variants = Vec::new();
            let mut k = j + 1;
            while k < end - 1 {
                // Skip attributes on the variant.
                while k < end - 1 && toks[k].is_punct('#') {
                    if k + 1 < end && toks[k + 1].is_punct('[') {
                        k = skip_group(toks, k + 1, '[', ']');
                    } else {
                        k += 1;
                    }
                }
                if k >= end - 1 {
                    break;
                }
                if toks[k].kind != TokKind::Ident {
                    k += 1;
                    continue;
                }
                let vname = toks[k].text.clone();
                let vline = toks[k].line;
                let mut fields = None;
                let mut m = k + 1;
                if m < end - 1 && toks[m].is_punct('{') {
                    let close = skip_group(toks, m, '{', '}');
                    fields = Some(split_top_level_commas(toks, m + 1..close - 1).len());
                    m = close;
                } else if m < end - 1 && toks[m].is_punct('(') {
                    let close = skip_group(toks, m, '(', ')');
                    fields = Some(split_top_level_commas(toks, m + 1..close - 1).len());
                    m = close;
                }
                // Skip an explicit discriminant (`= expr`).
                while m < end - 1 && !toks[m].is_punct(',') {
                    m += 1;
                }
                variants.push(VariantDef {
                    name: vname,
                    line: vline,
                    fields,
                });
                k = m + 1;
            }
            out.push(EnumDef {
                name,
                line,
                variants,
            });
            i = end;
        } else {
            i += 1;
        }
    }
    out
}

/// Extract every function item (free or in an impl) with its body range.
pub fn fns(toks: &[Tok]) -> Vec<FnDef> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("fn") && i + 1 < toks.len() && toks[i + 1].kind == TokKind::Ident {
            let name = toks[i + 1].text.clone();
            let line = toks[i].line;
            // Scan to the body `{`, tracking (), [] and <> nesting so a
            // brace inside a where-clause bound or generic default does not
            // fool us. A `;` at depth 0 means a bodyless declaration.
            let mut j = i + 2;
            let mut paren = 0i32;
            let mut angle = 0i32;
            while j < toks.len() {
                let t = &toks[j];
                if t.kind == TokKind::Punct {
                    match t.text.as_bytes()[0] {
                        b'(' | b'[' => paren += 1,
                        b')' | b']' => paren -= 1,
                        b'<' => angle += 1,
                        b'>' => angle = (angle - 1).max(0),
                        b'{' if paren == 0 && angle == 0 => break,
                        b';' if paren == 0 && angle == 0 => break,
                        // `->`: the `>` of the arrow must not close an
                        // angle bracket.
                        b'-' if j + 1 < toks.len() && toks[j + 1].is_punct('>') => {
                            j += 1;
                        }
                        _ => {}
                    }
                }
                j += 1;
            }
            if j < toks.len() && toks[j].is_punct('{') {
                let end = skip_group(toks, j, '{', '}');
                out.push(FnDef {
                    name,
                    line,
                    body: j + 1..end - 1,
                    params: fn_params(toks, i + 2, j),
                });
                // Do not skip the body: nested fns (closures do not use
                // `fn`) are rare, but scanning on is harmless.
                i = j + 1;
            } else {
                i = j + 1;
            }
        } else {
            i += 1;
        }
    }
    out
}

/// Extract struct fields (`name: Type`) from every struct in the file.
pub fn struct_fields(toks: &[Tok]) -> Vec<FieldDef> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("struct") && i + 1 < toks.len() && toks[i + 1].kind == TokKind::Ident {
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                j += 1;
            }
            if j >= toks.len() || toks[j].is_punct(';') {
                i = j + 1;
                continue;
            }
            let end = skip_group(toks, j, '{', '}');
            for elem in split_top_level_commas(toks, j + 1..end - 1) {
                // Shape: [attrs] [pub [(..)]] name : Type
                let mut k = elem.start;
                while k < elem.end {
                    if toks[k].is_punct('#') && k + 1 < elem.end && toks[k + 1].is_punct('[') {
                        k = skip_group(toks, k + 1, '[', ']');
                    } else if toks[k].is_ident("pub") {
                        k += 1;
                        if k < elem.end && toks[k].is_punct('(') {
                            k = skip_group(toks, k, '(', ')');
                        }
                    } else {
                        break;
                    }
                }
                if k + 1 < elem.end && toks[k].kind == TokKind::Ident && toks[k + 1].is_punct(':') {
                    let ty = toks[k + 2..elem.end]
                        .iter()
                        .map(|t| t.text.as_str())
                        .collect::<Vec<_>>()
                        .join(" ");
                    out.push(FieldDef {
                        name: toks[k].text.clone(),
                        ty,
                    });
                }
            }
            i = end;
        } else {
            i += 1;
        }
    }
    out
}

/// Names of `let` bindings in the file whose declared or constructed type
/// mentions any of `type_names` (e.g. `HashMap`). Catches both
/// `let x: HashMap<..> = ..` and `let x = HashMap::new()`.
pub fn typed_lets(toks: &[Tok], type_names: &[&str]) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 2 < toks.len() {
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if j < toks.len() && toks[j].is_ident("mut") {
                j += 1;
            }
            if j < toks.len() && toks[j].kind == TokKind::Ident {
                let name = toks[j].text.clone();
                // Scan the rest of the statement for a type-name mention.
                let mut k = j + 1;
                let mut depth = 0i32;
                let mut mentions = false;
                while k < toks.len() {
                    let t = &toks[k];
                    if t.kind == TokKind::Punct {
                        match t.text.as_bytes()[0] {
                            b'{' | b'(' | b'[' => depth += 1,
                            b'}' | b')' | b']' => depth -= 1,
                            b';' if depth <= 0 => break,
                            _ => {}
                        }
                    } else if t.kind == TokKind::Ident && type_names.iter().any(|n| t.text == *n) {
                        mentions = true;
                    }
                    k += 1;
                }
                if mentions {
                    out.push(name);
                }
                i = k;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Parse a function's named parameters from the signature tokens between
/// `sig_start` (just past the fn name) and `body_open` (the body `{`).
/// Finds the first `(..)` at angle-depth 0 and splits it; each element of
/// shape `[mut] name : Type` yields `(name, type-text)`.
fn fn_params(toks: &[Tok], sig_start: usize, body_open: usize) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut j = sig_start;
    let mut angle = 0i32;
    while j < body_open.min(toks.len()) {
        let t = &toks[j];
        if t.kind == TokKind::Punct {
            match t.text.as_bytes()[0] {
                b'<' => angle += 1,
                b'>' => angle = (angle - 1).max(0),
                b'(' if angle == 0 => break,
                _ => {}
            }
        }
        j += 1;
    }
    if j >= body_open.min(toks.len()) {
        return out;
    }
    let close = skip_group(toks, j, '(', ')');
    for elem in split_top_level_commas(toks, j + 1..close - 1) {
        // Find the top-level `:` separating pattern from type.
        let mut depth = 0i32;
        let mut colon = None;
        for k in elem.clone() {
            let t = &toks[k];
            if t.kind == TokKind::Punct {
                match t.text.as_bytes()[0] {
                    b'(' | b'[' | b'{' | b'<' => depth += 1,
                    b')' | b']' | b'}' | b'>' => depth -= 1,
                    b':' if depth == 0 => {
                        // `::` is a path, not the pattern/type separator.
                        let part_of_path = (k + 1 < elem.end && toks[k + 1].is_punct(':'))
                            || (k > elem.start && toks[k - 1].is_punct(':'));
                        if !part_of_path {
                            colon = Some(k);
                            break;
                        }
                    }
                    _ => {}
                }
            }
        }
        if let Some(c) = colon {
            // Name = the single ident right before the colon (skip tuple
            // and struct patterns, which have closing punctuation there).
            if c > elem.start && toks[c - 1].kind == TokKind::Ident {
                let name = toks[c - 1].text.clone();
                if name == "self" {
                    continue;
                }
                let ty = toks[c + 1..elem.end]
                    .iter()
                    .map(|t| t.text.as_str())
                    .collect::<Vec<_>>()
                    .join(" ");
                out.push((name, ty));
            }
        }
    }
    out
}

/// Extract every `impl` block: self type, optional trait, body range.
pub fn impls(toks: &[Tok]) -> Vec<ImplDef> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("impl") {
            i += 1;
            continue;
        }
        // Shape: impl [<generics>] Path [<args>] [for Path [<args>]]
        //        [where ..] { body }
        let mut j = i + 1;
        if j < toks.len() && toks[j].is_punct('<') {
            j = skip_angle_group(toks, j);
        }
        let first = path_tail(toks, &mut j);
        let mut trait_name = None;
        let mut ty = first.clone();
        if j < toks.len() && toks[j].is_ident("for") {
            j += 1;
            trait_name = first;
            ty = path_tail(toks, &mut j);
        }
        // Scan to the body brace (skipping where-clauses, which can nest
        // angle brackets but not braces).
        let mut angle = 0i32;
        while j < toks.len() {
            let t = &toks[j];
            if t.kind == TokKind::Punct {
                match t.text.as_bytes()[0] {
                    b'<' => angle += 1,
                    b'>' => angle = (angle - 1).max(0),
                    b'{' if angle == 0 => break,
                    b';' if angle == 0 => break,
                    b'-' if j + 1 < toks.len() && toks[j + 1].is_punct('>') => j += 1,
                    _ => {}
                }
            }
            j += 1;
        }
        if j < toks.len() && toks[j].is_punct('{') {
            let end = skip_group(toks, j, '{', '}');
            if let Some(ty) = ty {
                out.push(ImplDef {
                    ty,
                    trait_name,
                    body: j + 1..end - 1,
                });
            }
            i = j + 1; // scan into the body for nested items
        } else {
            i = j + 1;
        }
    }
    out
}

/// Advance past a balanced `<..>` group (generics). `i` must point at `<`.
fn skip_angle_group(toks: &[Tok], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        let t = &toks[j];
        if t.kind == TokKind::Punct {
            match t.text.as_bytes()[0] {
                b'<' => depth += 1,
                b'>' => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                // `->` inside an Fn() bound: the `>` is not a closer.
                b'-' if j + 1 < toks.len() && toks[j + 1].is_punct('>') => j += 1,
                _ => {}
            }
        }
        j += 1;
    }
    toks.len()
}

/// Read a type path at `*j` (`a::b::Type<..>`, `&mut Type`), advancing `*j`
/// past it, and return the final segment name.
fn path_tail(toks: &[Tok], j: &mut usize) -> Option<String> {
    // Skip reference/pointer sigils.
    while *j < toks.len()
        && (toks[*j].is_punct('&')
            || toks[*j].is_ident("mut")
            || toks[*j].kind == TokKind::Lifetime)
    {
        *j += 1;
    }
    let mut last = None;
    while *j < toks.len() {
        if toks[*j].kind == TokKind::Ident
            && !toks[*j].is_ident("for")
            && !toks[*j].is_ident("where")
        {
            last = Some(toks[*j].text.clone());
            *j += 1;
            if *j < toks.len() && toks[*j].is_punct('<') {
                *j = skip_angle_group(toks, *j);
            }
            if *j + 1 < toks.len() && toks[*j].is_punct(':') && toks[*j + 1].is_punct(':') {
                *j += 2;
                continue;
            }
        }
        break;
    }
    last
}

/// Extract every `use` declaration, flattening `{..}` groups. Glob imports
/// are recorded with name `*`.
pub fn use_decls(toks: &[Tok]) -> Vec<UseDecl> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("use") {
            let mut prefix = Vec::new();
            i = parse_use_tree(toks, i + 1, &mut prefix, &mut out);
        } else {
            i += 1;
        }
    }
    out
}

/// Parse one use-tree starting at `i` with `prefix` segments already seen;
/// returns the index just past the tree (and its closing `;`/`,` if any).
fn parse_use_tree(
    toks: &[Tok],
    mut i: usize,
    prefix: &mut Vec<String>,
    out: &mut Vec<UseDecl>,
) -> usize {
    let depth_at_entry = prefix.len();
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Ident && t.text != "as" {
            prefix.push(t.text.clone());
            i += 1;
            if i + 1 < toks.len() && toks[i].is_punct(':') && toks[i + 1].is_punct(':') {
                i += 2;
                if i < toks.len() && toks[i].is_punct('{') {
                    // Group: recurse per comma-separated element.
                    let end = skip_group(toks, i, '{', '}');
                    for elem in split_top_level_commas(toks, i + 1..end - 1) {
                        let mut p = prefix.clone();
                        parse_use_tree(toks, elem.start, &mut p, out);
                    }
                    prefix.truncate(depth_at_entry);
                    return end;
                }
                continue;
            }
            // End of path: maybe `as alias`.
            let mut name = prefix.last().cloned().unwrap_or_default();
            if i < toks.len() && toks[i].is_ident("as") && i + 1 < toks.len() {
                name = toks[i + 1].text.clone();
                i += 2;
            }
            out.push(UseDecl {
                name,
                segments: prefix.clone(),
            });
            prefix.truncate(depth_at_entry);
            return i + 1;
        } else if t.is_punct('*') {
            prefix.push("*".to_string());
            out.push(UseDecl {
                name: "*".to_string(),
                segments: prefix.clone(),
            });
            prefix.truncate(depth_at_entry);
            return i + 2;
        } else {
            // Unexpected shape (attribute, visibility, ...): skip token.
            i += 1;
            if i > 0 && toks[i - 1].is_punct(';') {
                return i;
            }
        }
    }
    i
}

/// Names of every struct and enum declared in the file.
pub fn type_names(toks: &[Tok]) -> Vec<String> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if (toks[i].is_ident("struct") || toks[i].is_ident("enum") || toks[i].is_ident("trait"))
            && i + 1 < toks.len()
            && toks[i + 1].kind == TokKind::Ident
        {
            out.push(toks[i + 1].text.clone());
        }
    }
    out
}

/// `type Alias = Target;` declarations, as `(alias, target-text)`.
pub fn type_aliases(toks: &[Tok]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 2 < toks.len() {
        if toks[i].is_ident("type") && toks[i + 1].kind == TokKind::Ident {
            let name = toks[i + 1].text.clone();
            let mut j = i + 2;
            if j < toks.len() && toks[j].is_punct('<') {
                j = skip_angle_group(toks, j);
            }
            if j < toks.len() && toks[j].is_punct('=') {
                let start = j + 1;
                let mut k = start;
                let mut depth = 0i32;
                while k < toks.len() {
                    let t = &toks[k];
                    if t.kind == TokKind::Punct {
                        match t.text.as_bytes()[0] {
                            b'(' | b'[' | b'{' | b'<' => depth += 1,
                            b')' | b']' | b'}' | b'>' => depth -= 1,
                            b';' if depth <= 0 => break,
                            _ => {}
                        }
                    }
                    k += 1;
                }
                let target = toks[start..k]
                    .iter()
                    .map(|t| t.text.as_str())
                    .collect::<Vec<_>>()
                    .join(" ");
                out.push((name, target));
                i = k;
                continue;
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn enum_variants_and_field_counts() {
        let src = r#"
            pub enum Msg {
                Submit { spec: TxnSpec, reply_to: ActorId, tag: u64 },
                Pair(u32, u64),
                Crash,
                #[default]
                Idle,
            }
        "#;
        let lexed = lex(src);
        let es = enums(&lexed.toks);
        assert_eq!(es.len(), 1);
        let e = &es[0];
        assert_eq!(e.name, "Msg");
        let v: Vec<(&str, Option<usize>)> = e
            .variants
            .iter()
            .map(|v| (v.name.as_str(), v.fields))
            .collect();
        assert_eq!(
            v,
            vec![
                ("Submit", Some(3)),
                ("Pair", Some(2)),
                ("Crash", None),
                ("Idle", None)
            ]
        );
    }

    #[test]
    fn fn_bodies_are_ranged() {
        let src = "fn a(x: u32) -> Vec<u8> { x; } fn b() { a(1); }";
        let lexed = lex(src);
        let fs = fns(&lexed.toks);
        assert_eq!(fs.len(), 2);
        assert_eq!(fs[0].name, "a");
        assert!(lexed.toks[fs[1].body.clone()]
            .iter()
            .any(|t| t.is_ident("a")));
    }

    #[test]
    fn struct_fields_capture_types() {
        let src = "struct S { pub routes: Mutex<HashMap<u32, Addr>>, n: u64 }";
        let lexed = lex(src);
        let fields = struct_fields(&lexed.toks);
        assert_eq!(fields.len(), 2);
        assert!(fields[0].ty.contains("Mutex"));
        assert!(fields[0].ty.contains("HashMap"));
    }

    #[test]
    fn typed_lets_find_hashmaps() {
        let src = "fn f() { let mut m: HashMap<u32, u32> = HashMap::new(); let n = HashMap::with_capacity(4); let k = 3; }";
        let lexed = lex(src);
        let names = typed_lets(&lexed.toks, &["HashMap"]);
        assert_eq!(names, vec!["m", "n"]);
    }

    #[test]
    fn fn_params_are_captured() {
        let src = "fn f(&mut self, x: u32, tx: &Sender<Packet>, (a, b): (u8, u8)) -> bool { true }";
        let lexed = lex(src);
        let fs = fns(&lexed.toks);
        assert_eq!(
            fs[0].params,
            vec![
                ("x".to_string(), "u32".to_string()),
                ("tx".to_string(), "& Sender < Packet >".to_string()),
            ]
        );
    }

    #[test]
    fn impls_capture_trait_and_type() {
        let src = r#"
            impl Coordinator { fn a() {} }
            impl<M> Actor<M> for planet_mdcc::Replica { fn on_message(&mut self) {} }
            impl Display for Msg { fn fmt(&self) {} }
        "#;
        let lexed = lex(src);
        let im = impls(&lexed.toks);
        assert_eq!(im.len(), 3);
        assert_eq!(
            (im[0].ty.as_str(), im[0].trait_name.as_deref()),
            ("Coordinator", None)
        );
        assert_eq!(
            (im[1].ty.as_str(), im[1].trait_name.as_deref()),
            ("Replica", Some("Actor"))
        );
        assert_eq!(
            (im[2].ty.as_str(), im[2].trait_name.as_deref()),
            ("Msg", Some("Display"))
        );
    }

    #[test]
    fn use_decls_flatten_groups_and_aliases() {
        let src = r#"
            use planet_sim::drive_into;
            use planet_mdcc::{Msg, coordinator::Coordinator as Coord};
            use crate::plane::*;
        "#;
        let lexed = lex(src);
        let us = use_decls(&lexed.toks);
        let find = |n: &str| us.iter().find(|u| u.name == n).map(|u| u.segments.clone());
        assert_eq!(
            find("drive_into"),
            Some(vec!["planet_sim".into(), "drive_into".into()])
        );
        assert_eq!(find("Msg"), Some(vec!["planet_mdcc".into(), "Msg".into()]));
        assert_eq!(
            find("Coord"),
            Some(vec![
                "planet_mdcc".into(),
                "coordinator".into(),
                "Coordinator".into()
            ])
        );
        assert_eq!(
            find("*"),
            Some(vec!["crate".into(), "plane".into(), "*".into()])
        );
    }

    #[test]
    fn type_names_and_aliases() {
        let src = "struct A; enum B { X } trait C {} type Conn = Arc<Mutex<TcpStream>>;";
        let lexed = lex(src);
        assert_eq!(type_names(&lexed.toks), vec!["A", "B", "C"]);
        let al = type_aliases(&lexed.toks);
        assert_eq!(al[0].0, "Conn");
        assert!(al[0].1.contains("Mutex"));
    }
}
