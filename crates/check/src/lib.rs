//! `planet-check`: protocol-aware static analysis for the PLANET workspace.
//!
//! The generic Rust toolchain cannot see the workspace's protocol
//! invariants: that the hand-rolled wire codec covers every message variant
//! on both sides, that transaction handlers only produce legal state-machine
//! edges, that the live-cluster runtime acquires its locks in one global
//! order, and that the simulation-deterministic crates never read a wall
//! clock. This crate is a small compiler-shaped pipeline that checks exactly
//! those protocol-specific properties and nothing else. On top of the
//! lexical passes, a structural CFG + dataflow layer checks path-sensitive
//! properties: every quorum wait reaches a timeout edge (`time`), progress
//! callbacks never block the drive loop (`callback`), and no panic source
//! is reachable from an actor drive loop (`panic`). Since v3 the pipeline
//! is interprocedural: a workspace-wide call graph closes reachability
//! across files and crates, the `flow` pass proves every message variant
//! sent has a handler and every request reaches a reply or an armed
//! timeout, and the `race` pass finds actor state escaping node threads
//! and blocking calls reachable while a lock is held.
//!
//! Architecture (front to back):
//!
//! * [`lexer`] — a hand-rolled Rust tokeniser (the workspace builds
//!   offline, so `syn` is unavailable); records `// check:allow(<lint>)`
//!   suppression markers.
//! * [`parse`] — structural recovery of the item shapes passes need: enums
//!   with per-variant field counts, function bodies as token ranges, struct
//!   fields with type text.
//! * [`cfg`] — per-function control-flow graphs over the parser's token
//!   ranges plus a bitset must/may dataflow solver; [`callgraph`] adds
//!   file-local call resolution and, since v3, the workspace-wide
//!   interprocedural [`callgraph::WorkspaceGraph`] (cross-file and
//!   cross-crate call resolution through `use` imports, qualified paths,
//!   and typed method receivers).
//! * [`model`] — the shared [`model::Workspace`] every pass reads, plus the
//!   [`model::Pass`] trait and pipeline driver.
//! * [`passes`] — the analyses: lexical (`wire`, `state`, `locks`,
//!   `determinism`), dataflow-based (`time`), and interprocedural
//!   (`callback`, `panic`, `flow`, `race`).
//! * [`diag`] — span-carrying diagnostics with stable codes, rendered as a
//!   compiler-style text report or JSON for CI.
//! * [`baseline`] — findings snapshots so new passes can ship strict while
//!   CI fails only on findings *not* in the committed baseline.
//!
//! Adding a pass is: implement [`model::Pass`], register it in
//! [`model::all_passes`]. Passes are pure functions of the workspace model,
//! so fixture tests drive them with in-memory sources via
//! [`model::Workspace::from_sources`].

pub mod baseline;
pub mod callgraph;
pub mod cfg;
pub mod diag;
pub mod lexer;
pub mod model;
pub mod parse;
pub mod passes;

pub use diag::{Diagnostic, Severity};
pub use model::{all_passes, run_passes, run_passes_timed, Pass, PassTiming, Workspace};
