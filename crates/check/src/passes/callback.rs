//! Progress-callback safety: code reachable from a registered progress
//! callback must never block or re-enter the engine.
//!
//! `PlanetTxn::fire` invokes every registered callback synchronously from
//! whatever thread is driving the transaction — in simulation that is the
//! event loop itself, live it is the runtime's forwarder thread. A callback
//! that takes a drive-loop lock deadlocks the driver; one that blocks on a
//! channel stalls every other transaction's events; one that submits new
//! work re-enters `Db`/engine paths that are not re-entrant. Codes:
//!
//! * **CB001** — callback-reachable code calls `.lock()`.
//! * **CB002** — callback-reachable code blocks: `recv()`, `recv_timeout()`,
//!   `join()`, or constructs a bounded `sync_channel` (whose `send` blocks).
//! * **CB003** — callback-reachable code re-enters the engine: `submit`,
//!   `submit_at`, `submit_after`, `run_for`, `run_until`,
//!   `run_to_completion`, or `commit` calls.
//!
//! Roots are the closure expressions registered via `callbacks.push(..)` /
//! `.on_progress(..)` in `crates/core/src`, plus every function they call —
//! closed over the **workspace-wide** call graph, so a helper the callback
//! calls into `planet-storage` is scanned too. Suppress with
//! `// check:allow(callback)`.

use std::collections::BTreeSet;
use std::ops::Range;

use crate::callgraph::call_names;
use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};
use crate::model::{Pass, SourceFile, Workspace};
use crate::parse::skip_group;

/// Method calls that block the calling thread (CB002).
const BLOCKING_METHODS: &[&str] = &["recv", "recv_timeout", "join"];

/// Calls that re-enter engine/commit paths (CB003).
const REENTRY_METHODS: &[&str] = &[
    "submit",
    "submit_at",
    "submit_after",
    "run_for",
    "run_until",
    "run_to_completion",
    "commit",
];

/// Argument ranges of callback registrations: `callbacks.push(..)` and
/// `.on_progress(..)` call sites.
fn registration_args(toks: &[Tok]) -> Vec<Range<usize>> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        let is_push_reg = i >= 2
            && toks[i].is_ident("push")
            && toks[i - 1].is_punct('.')
            && toks[i - 2].is_ident("callbacks");
        let is_on_progress = toks[i].is_ident("on_progress") && i >= 1 && toks[i - 1].is_punct('.');
        if (is_push_reg || is_on_progress) && toks[i + 1].is_punct('(') {
            let end = skip_group(toks, i + 1, '(', ')');
            out.push(i + 2..end - 1);
            i = end;
            continue;
        }
        i += 1;
    }
    out
}

/// `(name, line)` of calls matching `methods` (as `.name(` or bare
/// `name(`) inside `range`.
fn offending_calls(toks: &[Tok], range: Range<usize>, methods: &[&str]) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let mut i = range.start;
    while i + 1 < range.end.min(toks.len()) {
        let t = &toks[i];
        if t.kind == TokKind::Ident
            && methods.contains(&t.text.as_str())
            && toks[i + 1].is_punct('(')
            && !(i > 0 && toks[i - 1].is_ident("fn"))
        {
            out.push((t.text.clone(), t.line));
        }
        i += 1;
    }
    out
}

fn flag(
    out: &mut Vec<Diagnostic>,
    file: &SourceFile,
    code: &'static str,
    line: u32,
    message: String,
    suggestion: &str,
) {
    if file.allowed("callback", line) {
        return;
    }
    out.push(Diagnostic::error(code, &file.path, line, message).with_suggestion(suggestion));
}

/// The callback-safety pass.
pub struct CallbackPass;

impl Pass for CallbackPass {
    fn name(&self) -> &'static str {
        "callback"
    }

    fn description(&self) -> &'static str {
        "progress callbacks never lock, block, or re-enter the engine"
    }

    fn run(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        let g = ws.graph();
        let files = ws.files();
        // Callback-reachable code: the registration arguments (the closures
        // themselves) plus every function they call, closed over the
        // workspace graph. Root resolution prefers same-file definitions;
        // otherwise any `crates/core/src` function with the called name.
        let mut roots: BTreeSet<usize> = BTreeSet::new();
        let mut regions: Vec<(usize, Range<usize>)> = Vec::new();
        for (fi, file) in files.iter().enumerate() {
            if !file.path.starts_with("crates/core/src/") {
                continue;
            }
            let toks = file.toks();
            for r in registration_args(toks) {
                regions.push((fi, r.clone()));
                for name in call_names(toks, r) {
                    let same: Vec<usize> = g
                        .nodes_of_file(fi)
                        .iter()
                        .copied()
                        .filter(|&n| g.fns[n].name == name)
                        .collect();
                    if same.is_empty() {
                        roots.extend((0..g.fns.len()).filter(|&n| {
                            g.fns[n].name == name
                                && files[g.fns[n].file].path.starts_with("crates/core/src/")
                        }));
                    } else {
                        roots.extend(same);
                    }
                }
            }
        }
        if regions.is_empty() {
            return;
        }
        let (reach, _) = g.reachable_with_preds(roots.iter().copied());
        regions.extend(
            reach
                .iter()
                .map(|&n| (g.fns[n].file, g.fns[n].body.clone())),
        );

        {
            for (fi, region) in regions {
                let file = &files[fi];
                let toks = file.toks();
                for (name, line) in offending_calls(toks, region.clone(), &["lock"]) {
                    flag(
                        out,
                        file,
                        "CB001",
                        line,
                        format!("progress callback takes a lock via `.{name}()`"),
                        "callbacks run on the driver thread; hand the event to a channel and do locked work elsewhere, or annotate with `// check:allow(callback)`",
                    );
                }
                for (name, line) in offending_calls(toks, region.clone(), BLOCKING_METHODS) {
                    flag(
                        out,
                        file,
                        "CB002",
                        line,
                        format!("progress callback blocks on `.{name}()`"),
                        "never block in a callback — forward through a non-blocking channel send instead, or annotate with `// check:allow(callback)`",
                    );
                }
                // `sync_channel` creation inside a callback means its
                // blocking `send` end is about to be used there.
                let mut i = region.start;
                while i < region.end.min(toks.len()) {
                    if toks[i].is_ident("sync_channel") || toks[i].is_ident("SyncSender") {
                        flag(
                            out,
                            file,
                            "CB002",
                            toks[i].line,
                            "progress callback uses a bounded sync channel whose send blocks"
                                .to_string(),
                            "use an unbounded `mpsc::channel` from callbacks, or annotate with `// check:allow(callback)`",
                        );
                    }
                    i += 1;
                }
                for (name, line) in offending_calls(toks, region.clone(), REENTRY_METHODS) {
                    flag(
                        out,
                        file,
                        "CB003",
                        line,
                        format!("progress callback re-enters the engine via `{name}(..)`"),
                        "engine/commit paths are not re-entrant from callbacks; record the intent and submit from the driver loop, or annotate with `// check:allow(callback)`",
                    );
                }
            }
        }
    }
}
