//! Lock-order race detection: build an acquisition-order graph of
//! `Mutex`/`RwLock` uses across `planet-cluster` and report cycles as
//! potential deadlocks.
//!
//! Lock identity is the receiver's final field name (`self.inner.routes
//! .lock()` → `routes`), which matches how the transport structs name their
//! locks. Hold scopes follow Rust's temporary rules, approximated:
//!
//! * `let guard = x.lock().unwrap();` — held to the end of the enclosing
//!   block (only when the chain ends at the guard, modulo
//!   `unwrap`/`expect`/`?`; `let v = x.lock().unwrap().get(..).cloned();`
//!   drops the guard at the end of the statement).
//! * a lock in a `for`/`while let`/`if let`/`match` head — held through the
//!   construct's block (scrutinee temporaries live that long).
//! * any other use — held to the end of the statement.
//!
//! While a lock is held, every later acquisition adds an edge, including
//! through calls to same-file functions (one level of interprocedural
//! propagation, iterated to a fixed point over the file's call graph).
//! A cycle in the resulting graph is a lock-order inversion; re-acquiring a
//! lock already held is an immediate self-deadlock with `std::sync` locks.

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};
use crate::model::{Pass, SourceFile, Workspace};

/// Directory whose files are analysed. The protocol crates are lock-free by
/// construction (actors own their state); the live-cluster runtime is where
/// shared-memory concurrency lives.
const SCOPE: &str = "crates/cluster/src/";

/// One observed acquisition-order edge: `from` was held when `to` was
/// acquired.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Edge {
    from: String,
    to: String,
    file: String,
    line: u32,
    via: String,
}

/// How long an acquisition stays active.
#[derive(Debug, Clone, Copy, PartialEq)]
enum End {
    /// Until the end of the current statement.
    Stmt,
    /// Until the block at this depth closes (pop when depth < value).
    Block(i32),
    /// A head-position acquisition waiting for its construct's `{`.
    PendingHead,
}

#[derive(Debug, Clone)]
struct Active {
    name: String,
    end: End,
    depth: i32,
}

/// Names of RwLock-typed struct fields (for `.read()`/`.write()`
/// recognition; bare `.lock()` is always treated as a Mutex).
fn rwlock_names(file: &SourceFile) -> BTreeSet<String> {
    file.fields()
        .iter()
        .filter(|f| f.ty.contains("RwLock"))
        .map(|f| f.name.clone())
        .collect()
}

/// True when `toks[i]` is the method ident of a zero-argument lock
/// acquisition (`.lock()`, or `.read()`/`.write()` on a known RwLock).
fn is_lock_call(toks: &[Tok], i: usize, rwlocks: &BTreeSet<String>, receiver: &str) -> bool {
    if i == 0 || !toks[i - 1].is_punct('.') || toks[i].kind != TokKind::Ident {
        return false;
    }
    let zero_arg = toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(')'));
    if !zero_arg {
        return false;
    }
    match toks[i].text.as_str() {
        "lock" => true,
        "read" | "write" => rwlocks.contains(receiver),
        _ => false,
    }
}

/// The receiver's final field name: the identifier immediately before the
/// `.` of the lock call.
fn receiver_name(toks: &[Tok], dot: usize) -> Option<String> {
    if dot == 0 {
        return None;
    }
    let prev = &toks[dot - 1];
    if prev.kind == TokKind::Ident {
        Some(prev.text.clone())
    } else if prev.is_punct(')') {
        // `routes.lock().unwrap()` chains: walk back over the group to the
        // method name — the lock itself; skip (the chained call is not an
        // acquisition receiver we can name).
        None
    } else {
        None
    }
}

/// True if the method chain following the lock call (after its `()`)
/// consists only of `.unwrap()` / `.expect(<lit>)` / `?` before the
/// statement ends — i.e. a `let` binding of this chain binds the guard.
fn chain_binds_guard(toks: &[Tok], after_call: usize) -> bool {
    let mut i = after_call;
    loop {
        match toks.get(i) {
            Some(t) if t.is_punct('?') => i += 1,
            Some(t) if t.is_punct('.') => {
                let m = match toks.get(i + 1) {
                    Some(m) if m.kind == TokKind::Ident => m.text.as_str(),
                    _ => return false,
                };
                if m != "unwrap" && m != "expect" {
                    return false;
                }
                match toks.get(i + 2) {
                    Some(t) if t.is_punct('(') => {
                        i = crate::parse::skip_group(toks, i + 2, '(', ')');
                    }
                    _ => return false,
                }
            }
            Some(t) if t.is_punct(';') => return true,
            _ => return false,
        }
    }
}

/// Per-function analysis: record acquisition-order edges and return the set
/// of locks this function acquires anywhere (for call-through propagation).
#[allow(clippy::too_many_lines)]
fn scan_fn(
    file: &SourceFile,
    fn_name: &str,
    body: std::ops::Range<usize>,
    rwlocks: &BTreeSet<String>,
    fn_locks: &BTreeMap<String, BTreeSet<String>>,
    edges: &mut BTreeSet<Edge>,
    acquired: &mut BTreeSet<String>,
) {
    let toks = file.toks();
    let mut active: Vec<Active> = Vec::new();
    let mut depth = 0i32;
    // Statement context: set at `;`, `{`, `}`, `=>` and body start.
    let mut stmt_kws: (bool, bool) = (false, false); // (saw_let, saw_head_kw)
    let mut stmt_fresh = true;

    let mut i = body.start;
    while i < body.end.min(toks.len()) {
        let t = &toks[i];
        if stmt_fresh && t.kind == TokKind::Ident {
            match t.text.as_str() {
                "let" => stmt_kws.0 = true,
                // `for`/`match` scrutinee temporaries live through the
                // construct's block (the desugaring binds them in a
                // `match`).
                "for" | "match" => stmt_kws.1 = true,
                "if" | "while" => {
                    // Only `if let`/`while let` extend scrutinee
                    // temporaries through the block; a plain condition
                    // drops them before the block runs.
                    if toks.get(i + 1).is_some_and(|n| n.is_ident("let")) {
                        stmt_kws.1 = true;
                    }
                }
                _ => stmt_fresh = false,
            }
        }
        if t.kind == TokKind::Punct {
            match t.text.as_bytes()[0] {
                b'{' => {
                    // Statement-scoped temporaries (plain `if`/`while`
                    // conditions, most commonly) are dropped before the
                    // block they guard runs.
                    active.retain(|a| a.end != End::Stmt);
                    depth += 1;
                    for a in active.iter_mut() {
                        if a.end == End::PendingHead {
                            a.end = End::Block(depth);
                        }
                    }
                    stmt_kws = (false, false);
                    stmt_fresh = true;
                }
                b'}' => {
                    depth -= 1;
                    active.retain(|a| match a.end {
                        End::Block(d) => d <= depth,
                        // Tail expressions end at the block close too.
                        End::Stmt => a.depth <= depth,
                        End::PendingHead => true,
                    });
                    stmt_kws = (false, false);
                    stmt_fresh = true;
                }
                b';' | b',' => {
                    active.retain(|a| a.end != End::Stmt || a.depth < depth);
                    stmt_kws = (false, false);
                    stmt_fresh = true;
                }
                b'=' if toks.get(i + 1).is_some_and(|n| n.is_punct('>')) => {
                    // Match-arm arrow: a new (arm-body) statement begins.
                    stmt_kws = (false, false);
                    stmt_fresh = true;
                    i += 1;
                }
                _ => {}
            }
            i += 1;
            continue;
        }

        // A lock acquisition?
        if i > body.start && toks[i - 1].is_punct('.') {
            let receiver = receiver_name(toks, i - 1).unwrap_or_default();
            if is_lock_call(toks, i, rwlocks, &receiver) && !receiver.is_empty() {
                let line = toks[i].line;
                for a in &active {
                    edges.insert(Edge {
                        from: a.name.clone(),
                        to: receiver.clone(),
                        file: file.path.clone(),
                        line,
                        via: fn_name.to_string(),
                    });
                }
                acquired.insert(receiver.clone());
                let end = if stmt_kws.1 {
                    End::PendingHead
                } else if stmt_kws.0 && chain_binds_guard(toks, i + 3) {
                    End::Block(depth)
                } else {
                    End::Stmt
                };
                active.push(Active {
                    name: receiver,
                    end,
                    depth,
                });
                i += 3; // past `lock ( )`
                continue;
            }
        }

        // A call into a same-file function while holding locks?
        if t.kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && !active.is_empty()
        {
            if let Some(callee_locks) = fn_locks.get(&t.text) {
                for a in &active {
                    for callee_lock in callee_locks {
                        edges.insert(Edge {
                            from: a.name.clone(),
                            to: callee_lock.clone(),
                            file: file.path.clone(),
                            line: t.line,
                            via: format!("{fn_name} -> {}", t.text),
                        });
                    }
                }
            }
        }
        i += 1;
    }
}

/// Find one cycle in the edge graph, if any, as the list of edges forming
/// it. Deterministic: nodes are visited in sorted order.
fn find_cycle(edges: &BTreeSet<Edge>) -> Option<Vec<Edge>> {
    let mut adj: BTreeMap<&str, Vec<&Edge>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.from.as_str()).or_default().push(e);
    }
    let nodes: BTreeSet<&str> = edges
        .iter()
        .flat_map(|e| [e.from.as_str(), e.to.as_str()])
        .collect();
    let mut done: BTreeSet<&str> = BTreeSet::new();
    for &start in &nodes {
        if done.contains(start) {
            continue;
        }
        // Iterative DFS tracking the path of edges.
        let mut path: Vec<&Edge> = Vec::new();
        let mut on_path: BTreeSet<&str> = BTreeSet::new();
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        on_path.insert(start);
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let out_edges = adj.get(node).map(|v| v.as_slice()).unwrap_or(&[]);
            if *next < out_edges.len() {
                let e = out_edges[*next];
                *next += 1;
                if on_path.contains(e.to.as_str()) {
                    // Found a cycle: slice the path from the repeated node.
                    path.push(e);
                    let from = path
                        .iter()
                        .position(|pe| pe.from == e.to)
                        .unwrap_or(path.len() - 1);
                    return Some(path[from..].iter().map(|&pe| pe.clone()).collect());
                }
                if !done.contains(e.to.as_str()) {
                    path.push(e);
                    on_path.insert(e.to.as_str());
                    stack.push((e.to.as_str(), 0));
                }
            } else {
                done.insert(node);
                stack.pop();
                on_path.remove(node);
                path.pop();
            }
        }
    }
    None
}

/// The lock-order pass.
pub struct LockOrderPass;

impl Pass for LockOrderPass {
    fn name(&self) -> &'static str {
        "locks"
    }

    fn description(&self) -> &'static str {
        "Mutex/RwLock acquisition order is acyclic across the live-cluster runtime"
    }

    fn run(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        let mut edges: BTreeSet<Edge> = BTreeSet::new();
        for file in ws.files_under(SCOPE) {
            let rwlocks = rwlock_names(file);
            // Fixed point over the same-file call graph: which locks does
            // each function acquire, transitively?
            let mut fn_locks: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
            for _ in 0..3 {
                let prev = fn_locks.clone();
                for f in file.fns() {
                    let mut acquired = fn_locks.get(&f.name).cloned().unwrap_or_default();
                    let mut scratch = BTreeSet::new();
                    scan_fn(
                        file,
                        &f.name,
                        f.body.clone(),
                        &rwlocks,
                        &prev,
                        &mut scratch,
                        &mut acquired,
                    );
                    // Call-through: also absorb callees' lock sets.
                    for tok in &file.toks()[f.body.clone()] {
                        if let Some(callee) = prev.get(&tok.text) {
                            acquired.extend(callee.iter().cloned());
                        }
                    }
                    fn_locks.insert(f.name.clone(), acquired);
                }
                if fn_locks == prev {
                    break;
                }
            }
            for f in file.fns() {
                let mut acquired = BTreeSet::new();
                scan_fn(
                    file,
                    &f.name,
                    f.body.clone(),
                    &rwlocks,
                    &fn_locks,
                    &mut edges,
                    &mut acquired,
                );
            }
        }

        // Self-edges: re-acquiring a held std::sync lock deadlocks at once.
        for e in &edges {
            if e.from == e.to {
                out.push(
                    Diagnostic::error(
                        "LOCK002",
                        &e.file,
                        e.line,
                        format!(
                            "self-deadlock: `{}` is acquired in `{}` while already held",
                            e.to, e.via
                        ),
                    )
                    .with_suggestion(
                        "clone or copy what you need out of the first guard and drop it before re-locking",
                    ),
                );
            }
        }
        let edges: BTreeSet<Edge> = edges.into_iter().filter(|e| e.from != e.to).collect();

        if let Some(cycle) = find_cycle(&edges) {
            let order = cycle
                .iter()
                .map(|e| e.from.as_str())
                .chain(cycle.first().map(|e| e.from.as_str()))
                .collect::<Vec<_>>()
                .join(" -> ");
            let witness = &cycle[0];
            let sites = cycle
                .iter()
                .map(|e| format!("{}:{} ({})", e.file, e.line, e.via))
                .collect::<Vec<_>>()
                .join(", ");
            out.push(
                Diagnostic::error(
                    "LOCK001",
                    &witness.file,
                    witness.line,
                    format!(
                        "lock-order cycle (potential deadlock): {order}; acquisition sites: {sites}"
                    ),
                )
                .with_suggestion(
                    "pick one global acquisition order for these locks and re-order the nested acquisitions to follow it",
                ),
            );
        }
    }
}
