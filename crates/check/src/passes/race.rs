//! Thread-escape and blocking-under-lock analysis over `planet-cluster`.
//!
//! The cluster runtime is the only place in the workspace that spawns real
//! OS threads (node threads, fabric pumps, acceptor loops), so it is the
//! only place actor-owned state can leak across a thread boundary. Codes:
//!
//! * **RACE001** — actor-owned state escapes its node thread: a `self`
//!   field or typed local captured by a `spawn(..)` closure whose type
//!   carries no synchronization (no `Mutex`/`RwLock`/`Atomic*`/channel
//!   half), or an `Arc<..>` alias with no interior sync. One level of
//!   `type` aliases is expanded before the check.
//! * **RACE002** — a blocking call (`recv`, `join`, `write_all`, condvar
//!   waits, sleeps) or a lock acquisition is reachable — workspace-wide,
//!   through the interprocedural call graph — while a lock guard is live.
//!   This extends the intraprocedural LOCK passes across function and
//!   crate boundaries; the diagnostic carries the witness call chain.
//!   A condvar wait with exactly one lock held is the intended idiom and
//!   is not flagged.
//! * **RACE003** — a channel sender is cloned into a spawned closure or
//!   stored into a collection: two handles to the same mailbox can
//!   interleave and break the documented per-pair FIFO delivery order.
//!
//! Suppress with `// check:allow(race)`.

use std::collections::{BTreeSet, HashMap};
use std::ops::Range;

use crate::diag::Diagnostic;
use crate::lexer::Tok;
use crate::model::{Pass, SourceFile, Workspace};
use crate::parse::{skip_group, type_aliases};
use crate::passes::determinism::cfg_test_ranges;

const SCOPE: &str = "crates/cluster/src/";

/// Substrings that mark a type as synchronized (safe to share).
const SYNC_MARKERS: &[&str] = &[
    "Mutex",
    "RwLock",
    "Atomic",
    "Condvar",
    "Sender",
    "SyncSender",
    "Receiver",
    "JoinHandle",
    "Barrier",
    "OnceLock",
    "Once",
    "mpsc",
    "Mailbox",
    "PhantomData",
    // Reactor runtime internals shared across worker threads (the worker
    // loop and the steal path): each is synchronized by construction —
    // every mutable field is a Mutex/Atomic/Condvar — so sharing one into
    // a spawned worker is the design, not an escape.
    "ReactorInner",
    "WorkerShared",
    "TaskCore",
    "Parker",
];

/// Directly blocking method names (callee side of RACE002).
const BLOCKING: &[&str] = &[
    "recv",
    "recv_timeout",
    "join",
    "write_all",
    "flush",
    "sleep",
    "wait",
    "wait_timeout",
    "wait_while",
];

const CONDVAR_WAITS: &[&str] = &["wait", "wait_timeout", "wait_while"];

fn in_ranges(ranges: &[Range<usize>], idx: usize) -> bool {
    ranges.iter().any(|r| r.contains(&idx))
}

/// True when `ty` (a flattened type text) carries a sync marker, expanding
/// one level of local `type` aliases.
fn is_synced(ty: &str, aliases: &[(String, String)]) -> bool {
    if SYNC_MARKERS.iter().any(|m| ty.contains(m)) {
        return true;
    }
    aliases.iter().any(|(name, target)| {
        ty.contains(name.as_str()) && SYNC_MARKERS.iter().any(|m| target.contains(m))
    })
}

/// Argument ranges of `spawn(..)` / `thread::spawn(..)` / `pool.spawn(..)`
/// calls in `range` (token indices inside the parens).
fn spawn_ranges(toks: &[Tok], range: Range<usize>) -> Vec<Range<usize>> {
    let mut out = Vec::new();
    let mut i = range.start.max(1);
    while i + 1 < range.end.min(toks.len()) {
        if toks[i].is_ident("spawn")
            && (toks[i - 1].is_punct('.') || toks[i - 1].is_punct(':'))
            && toks[i + 1].is_punct('(')
        {
            let end = skip_group(toks, i + 1, '(', ')');
            out.push(i + 2..end.saturating_sub(1));
        }
        i += 1;
    }
    out
}

/// Explicitly-typed bindings visible in a function: parameters plus
/// `let name: Ty = ..` locals, as flattened type text.
fn typed_bindings(
    toks: &[Tok],
    body: Range<usize>,
    params: &[(String, String)],
) -> HashMap<String, String> {
    let mut out: HashMap<String, String> = params.iter().cloned().collect();
    let mut i = body.start;
    while i + 3 < body.end.min(toks.len()) {
        if toks[i].is_ident("let")
            && toks[i + 1].kind == crate::lexer::TokKind::Ident
            && toks[i + 2].is_punct(':')
            && !toks[i + 3].is_punct(':')
        {
            let name = toks[i + 1].text.clone();
            let mut ty = String::new();
            let mut j = i + 3;
            let mut depth = 0i32;
            while j < body.end.min(toks.len()) {
                let t = &toks[j];
                if t.is_punct('<') {
                    depth += 1;
                } else if t.is_punct('>') {
                    depth -= 1;
                } else if depth <= 0 && (t.is_punct('=') || t.is_punct(';')) {
                    break;
                }
                if !ty.is_empty() {
                    ty.push(' ');
                }
                ty.push_str(&t.text);
                j += 1;
            }
            out.insert(name, ty);
            i = j;
        } else {
            i += 1;
        }
    }
    out
}

fn flag(
    out: &mut Vec<Diagnostic>,
    file: &SourceFile,
    code: &'static str,
    line: u32,
    message: String,
    suggestion: &str,
) {
    if file.allowed("race", line) {
        return;
    }
    out.push(Diagnostic::error(code, &file.path, line, message).with_suggestion(suggestion));
}

/// A live lock guard while scanning a function body.
struct LiveLock {
    /// Brace depth the guard dies below (`let`-bound guards), or `None`
    /// for a statement-scoped temporary.
    depth: Option<i32>,
}

/// The thread-escape pass.
pub struct RacePass;

impl Pass for RacePass {
    fn name(&self) -> &'static str {
        "race"
    }

    fn description(&self) -> &'static str {
        "actor state escaping node threads, blocking calls reachable under a lock, cloned senders breaking FIFO"
    }

    fn run(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        let g = ws.graph();
        let files = ws.files();

        // ---- interprocedural blocking summaries (workspace-wide) ----
        // A node blocks directly if its body (outside tests) calls a
        // blocking method or acquires a lock. blocking_reachable is the
        // reverse closure: "calling this function may block".
        let mut direct_block: Vec<Option<&'static str>> = vec![None; g.fns.len()];
        for (n, f) in g.fns.iter().enumerate() {
            let file = &files[f.file];
            let toks = file.toks();
            let skip = cfg_test_ranges(toks);
            for i in f.body.clone() {
                if i + 1 >= toks.len() || i == 0 || in_ranges(&skip, i) {
                    continue;
                }
                if !toks[i - 1].is_punct('.') || !toks[i + 1].is_punct('(') {
                    continue;
                }
                if let Some(name) = BLOCKING.iter().find(|b| toks[i].is_ident(b)) {
                    direct_block[n] = Some(name);
                    break;
                }
                if (toks[i].is_ident("lock")
                    || toks[i].is_ident("read")
                    || toks[i].is_ident("write"))
                    && i + 2 < toks.len()
                    && toks[i + 2].is_punct(')')
                {
                    direct_block[n] = Some("lock");
                    break;
                }
            }
        }
        let mut callers: Vec<Vec<usize>> = vec![Vec::new(); g.fns.len()];
        for (n, sites) in g.calls.iter().enumerate() {
            for s in sites {
                callers[s.target].push(n);
            }
        }
        let mut may_block = vec![false; g.fns.len()];
        let mut queue: Vec<usize> = (0..g.fns.len())
            .filter(|&n| direct_block[n].is_some())
            .collect();
        for &n in &queue {
            may_block[n] = true;
        }
        while let Some(n) = queue.pop() {
            for &c in &callers[n] {
                if !may_block[c] {
                    may_block[c] = true;
                    queue.push(c);
                }
            }
        }

        for (fi, file) in files.iter().enumerate() {
            if !file.path.starts_with(SCOPE) {
                continue;
            }
            let toks = file.toks();
            let skip = cfg_test_ranges(toks);
            let aliases = type_aliases(toks);
            let field_ty: HashMap<&str, &str> = file
                .fields()
                .iter()
                .map(|f| (f.name.as_str(), f.ty.as_str()))
                .collect();

            for &node in g.nodes_of_file(fi) {
                let def = &g.fns[node];
                if in_ranges(&skip, def.body.start) {
                    continue;
                }
                let body = def.body.clone();
                let bindings = typed_bindings(toks, body.clone(), &def.params);
                let spawns = spawn_ranges(toks, body.clone());

                // ---- RACE001 + RACE003 inside spawn closures ----
                for sp in &spawns {
                    let mut reported: BTreeSet<&str> = BTreeSet::new();
                    let mut i = sp.start;
                    while i < sp.end.min(toks.len()) {
                        let t = &toks[i];
                        // self.field escaping the node thread
                        if t.is_ident("self")
                            && i + 2 < toks.len()
                            && toks[i + 1].is_punct('.')
                            && toks[i + 2].kind == crate::lexer::TokKind::Ident
                        {
                            let fname = toks[i + 2].text.as_str();
                            if let Some(ty) = field_ty.get(fname) {
                                if !is_synced(ty, &aliases) && reported.insert(fname) {
                                    flag(
                                        out,
                                        file,
                                        "RACE001",
                                        toks[i + 2].line,
                                        format!(
                                            "field `self.{fname}: {ty}` escapes into a spawned thread without synchronization"
                                        ),
                                        "wrap the shared state in `Arc<Mutex<..>>`/atomics or move ownership into the thread, or annotate with `// check:allow(race)`",
                                    );
                                }
                            }
                        }
                        // typed local escaping
                        if t.kind == crate::lexer::TokKind::Ident
                            && (i == 0 || !toks[i - 1].is_punct('.'))
                        {
                            if let Some(ty) = bindings.get(t.text.as_str()) {
                                let name = t.text.as_str();
                                if !is_synced(ty, &aliases)
                                    && !ty.contains("dyn")
                                    && reported.insert(name)
                                {
                                    // A trait object's impls may carry their
                                    // own interior sync (invisible here), so
                                    // `dyn` types are exempt above. And a
                                    // plain owned value both captured and
                                    // used after the spawn only compiles if
                                    // it was copied, so used-after only
                                    // counts for borrowed/generic types.
                                    let arced = ty.contains("Arc");
                                    let shareable = ty.contains('&') || ty.contains('<');
                                    let used_after = shareable
                                        && (sp.end..body.end.min(toks.len()))
                                            .any(|j| toks[j].is_ident(name));
                                    if arced || used_after {
                                        let what = if arced {
                                            "an `Arc` alias with no interior synchronization"
                                        } else {
                                            "also used after the spawn"
                                        };
                                        flag(
                                            out,
                                            file,
                                            "RACE001",
                                            t.line,
                                            format!(
                                                "`{name}: {ty}` is captured by a spawned thread and is {what}"
                                            ),
                                            "add interior synchronization (`Mutex`/`RwLock`/atomics) or move ownership into the thread, or annotate with `// check:allow(race)`",
                                        );
                                    }
                                }
                            }
                        }
                        // RACE003: sender clone inside a spawn closure
                        if t.is_ident("clone")
                            && i >= 2
                            && toks[i - 1].is_punct('.')
                            && i + 1 < toks.len()
                            && toks[i + 1].is_punct('(')
                        {
                            let recv = &toks[i - 2];
                            let ty = bindings
                                .get(recv.text.as_str())
                                .map(String::as_str)
                                .or_else(|| field_ty.get(recv.text.as_str()).copied());
                            if let Some(ty) = ty {
                                if ty.contains("Sender") || ty.contains("Mailbox") {
                                    flag(
                                        out,
                                        file,
                                        "RACE003",
                                        t.line,
                                        format!(
                                            "`{}.clone()` duplicates a channel sender inside a spawned thread — two handles to one mailbox can interleave and break per-pair FIFO",
                                            recv.text
                                        ),
                                        "route all sends to a destination through a single owned handle, or annotate with `// check:allow(race)` and document the ordering argument",
                                    );
                                }
                            }
                        }
                        i += 1;
                    }
                }

                // ---- RACE003 outside spawns: stored sender clones ----
                let mut i = body.start.max(2);
                while i + 1 < body.end.min(toks.len()) {
                    if toks[i].is_ident("clone")
                        && toks[i - 1].is_punct('.')
                        && toks[i + 1].is_punct('(')
                        && !in_ranges(&skip, i)
                        && !spawns.iter().any(|sp| sp.contains(&i))
                    {
                        let recv = &toks[i - 2];
                        let ty = bindings
                            .get(recv.text.as_str())
                            .map(String::as_str)
                            .or_else(|| field_ty.get(recv.text.as_str()).copied());
                        let is_sender =
                            ty.is_some_and(|t| t.contains("Sender") || t.contains("Mailbox"));
                        if is_sender {
                            // Only when the statement *retains* the clone
                            // (stored into a collection): a returned or
                            // immediately-consumed clone keeps one live
                            // handle per destination.
                            let stmt_end = (i..body.end.min(toks.len()))
                                .find(|&j| toks[j].is_punct(';'))
                                .unwrap_or(body.end.min(toks.len()));
                            let stmt_start = (body.start..i)
                                .rev()
                                .find(|&j| toks[j].is_punct(';') || toks[j].is_punct('{'))
                                .map(|j| j + 1)
                                .unwrap_or(body.start);
                            let stored = (stmt_start..stmt_end).any(|j| {
                                (toks[j].is_ident("push") || toks[j].is_ident("insert"))
                                    && j + 1 < toks.len()
                                    && toks[j + 1].is_punct('(')
                            });
                            if stored {
                                flag(
                                    out,
                                    file,
                                    "RACE003",
                                    toks[i].line,
                                    format!(
                                        "`{}.clone()` stores a second handle to a channel sender — concurrent senders to one mailbox can break per-pair FIFO",
                                        recv.text
                                    ),
                                    "keep a single owned handle per destination, or annotate with `// check:allow(race)` and document the ordering argument",
                                );
                            }
                        }
                    }
                    i += 1;
                }

                // ---- RACE002: blocking reachable while a lock is held ----
                let sites: HashMap<usize, usize> =
                    g.calls[node].iter().map(|s| (s.tok, s.target)).collect();
                let mut live: Vec<LiveLock> = Vec::new();
                let mut depth = 0i32;
                let mut i = body.start;
                while i < body.end.min(toks.len()) {
                    let t = &toks[i];
                    if t.is_punct('{') {
                        // An if/while-condition temporary dies before the
                        // block opens (for/match head temporaries are
                        // promoted to block scope at creation).
                        live.retain(|l| l.depth.is_some());
                        depth += 1;
                    } else if t.is_punct('}') {
                        depth -= 1;
                        live.retain(|l| l.depth.is_none_or(|d| d <= depth));
                    } else if t.is_punct(';') {
                        live.retain(|l| l.depth.is_some());
                    } else if i > 0
                        && i + 2 < toks.len()
                        && toks[i - 1].is_punct('.')
                        && toks[i + 1].is_punct('(')
                        && toks[i + 2].is_punct(')')
                        && (t.is_ident("lock") || t.is_ident("read") || t.is_ident("write"))
                        && !in_ranges(&skip, i)
                    {
                        // Guard lifetime. A `let` binds the guard for the
                        // enclosing block (`if/while let`: the block about
                        // to open) — but only when the chain after
                        // `.lock()` is just `.expect()`/`.unwrap()`. If
                        // more methods follow (`.drain(..).collect()`,
                        // `.get(..)`), the guard is a temporary that dies
                        // at the end of the statement regardless of the
                        // `let`.
                        let mut j = i + 3; // past `( )`
                        let mut chained_away = false;
                        while j + 2 < body.end.min(toks.len()) && toks[j].is_punct('.') {
                            if !(toks[j + 1].is_ident("expect") || toks[j + 1].is_ident("unwrap")) {
                                chained_away = true;
                                break;
                            }
                            j = skip_group(toks, j + 2, '(', ')');
                        }
                        let mut bound = None;
                        {
                            let mut j = i;
                            let mut stmt_start = body.start;
                            let mut saw_let = None;
                            while j > body.start {
                                j -= 1;
                                let b = &toks[j];
                                if b.is_punct(';') || b.is_punct('{') || b.is_punct('}') {
                                    stmt_start = j + 1;
                                    break;
                                }
                                if b.is_ident("let") {
                                    saw_let = Some(j);
                                }
                            }
                            if let Some(j) = saw_let.filter(|_| !chained_away) {
                                let conditional = j > 0
                                    && (toks[j - 1].is_ident("if")
                                        || toks[j - 1].is_ident("while"));
                                bound = Some(if conditional { depth + 1 } else { depth });
                            } else if toks
                                .get(stmt_start)
                                .is_some_and(|t| t.is_ident("for") || t.is_ident("match"))
                            {
                                // for/match head temporaries live through
                                // the loop/match body.
                                bound = Some(depth + 1);
                            }
                        }
                        live.push(LiveLock { depth: bound });
                    } else if !live.is_empty()
                        && i > 0
                        && i + 1 < toks.len()
                        && toks[i - 1].is_punct('.')
                        && toks[i + 1].is_punct('(')
                        && !in_ranges(&skip, i)
                    {
                        if let Some(name) = BLOCKING.iter().find(|b| toks[i].is_ident(b)) {
                            let condvar_ok = CONDVAR_WAITS.contains(name) && live.len() == 1;
                            if !condvar_ok {
                                flag(
                                    out,
                                    file,
                                    "RACE002",
                                    t.line,
                                    format!(
                                        "blocking call `.{name}(..)` while a lock guard is live in `{}`",
                                        def.name
                                    ),
                                    "drop the guard (end its scope or `drop(..)`) before blocking, or annotate with `// check:allow(race)` and bound the wait",
                                );
                            }
                        }
                    }
                    if !live.is_empty() && !in_ranges(&skip, i) {
                        if let Some(&target) = sites.get(&i) {
                            if may_block[target] {
                                let (reach, preds) = g.reachable_with_preds([target]);
                                let sink =
                                    reach.iter().copied().find(|&n| direct_block[n].is_some());
                                if let Some(sink) = sink {
                                    let via = direct_block[sink].unwrap_or("recv");
                                    flag(
                                        out,
                                        file,
                                        "RACE002",
                                        t.line,
                                        format!(
                                            "call to `{}` can block (`.{via}(..)` via {}) while a lock guard is live in `{}`",
                                            g.fns[target].name,
                                            g.chain_text(&preds, sink),
                                            def.name
                                        ),
                                        "drop the guard before calling into code that blocks or locks, or annotate with `// check:allow(race)` with the ordering argument",
                                    );
                                }
                            }
                        }
                    }
                    i += 1;
                }
            }
        }
    }
}
