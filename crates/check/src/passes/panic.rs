//! Panic-reachability lints: no panic source may be reachable from an
//! actor drive loop.
//!
//! A panic inside `Actor::on_message` tears down the whole single-threaded
//! simulation; live, it kills the node thread and the site goes dark
//! without the failure-injection machinery ever seeing it. The drive loops
//! are the roots:
//!
//! * `crates/mdcc/src`: every `on_message` / `on_start` body (the actor
//!   handlers `planet_sim::drive` calls).
//! * `crates/cluster/src`: `run_node` / `run_pool` (the live node drive
//!   loops).
//!
//! Reachability is **workspace-wide**: the roots are closed over the
//! interprocedural call graph ([`crate::callgraph::WorkspaceGraph`]), so an
//! `unwrap` three calls deep in `planet-storage` that `run_node` can reach
//! through `on_message` fires here, in the file where it lives. Each
//! diagnostic carries the witness call chain from the root.
//!
//! Codes:
//!
//! * **PANIC001** — `.unwrap()` / `.expect(..)` reachable from a root.
//! * **PANIC002** — slice/array indexing (`x[i]`, which panics out of
//!   bounds) or an explicit `panic!` / `unreachable!` / `todo!` /
//!   `unimplemented!` reachable from a root.
//!
//! `assert!`-family macros are deliberately *not* flagged: a failed
//! invariant assertion is a bug the protocol wants loud, whereas an
//! `unwrap` on a lookup is a latent crash on a legal-but-unexpected
//! message. Arithmetic overflow is also out of scope (release builds wrap;
//! debug panics there are covered by the assert rationale). An
//! `.unwrap()`/`.expect(..)` directly on a `.lock()`/`.read()`/`.write()`
//! result is also exempt: a poisoned lock means another thread already
//! panicked, and propagating that teardown is the intended behavior, not a
//! latent crash. Sites that are provably in-bounds (e.g. indexing a layout
//! asserted at construction) carry `// check:allow(panic)` with a
//! justification.
//!
//! Test code (`#[cfg(test)]` items) is exempt.

use std::collections::BTreeSet;
use std::ops::Range;

use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};
use crate::model::{Pass, SourceFile, Workspace};
use crate::passes::determinism::cfg_test_ranges;

/// Scope → root function names.
const SCOPES: &[(&str, &[&str])] = &[
    ("crates/mdcc/src/", &["on_message", "on_start"]),
    ("crates/cluster/src/", &["run_node", "run_pool"]),
];

/// Panic-family macros flagged by PANIC002.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

fn in_ranges(ranges: &[Range<usize>], idx: usize) -> bool {
    ranges.iter().any(|r| r.contains(&idx))
}

/// True when `toks[i]` is a `[` used as an index expression: preceded by an
/// identifier, `)`, or `]` (a value), not by `#`/`!`/type syntax.
fn is_index_bracket(toks: &[Tok], i: usize) -> bool {
    if !toks[i].is_punct('[') || i == 0 {
        return false;
    }
    let p = &toks[i - 1];
    p.kind == TokKind::Ident || p.is_punct(')') || p.is_punct(']')
}

/// True when the `.unwrap()`/`.expect(..)` at `i` is applied directly to a
/// `.lock()` / `.read()` / `.write()` result — the lock-poisoning idiom.
fn is_poison_unwrap(toks: &[Tok], i: usize) -> bool {
    i >= 4
        && toks[i - 1].is_punct('.')
        && toks[i - 2].is_punct(')')
        && toks[i - 3].is_punct('(')
        && (toks[i - 4].is_ident("lock")
            || toks[i - 4].is_ident("read")
            || toks[i - 4].is_ident("write"))
}

fn flag(
    out: &mut Vec<Diagnostic>,
    file: &SourceFile,
    code: &'static str,
    line: u32,
    message: String,
    suggestion: &str,
) {
    if file.allowed("panic", line) {
        return;
    }
    out.push(Diagnostic::error(code, &file.path, line, message).with_suggestion(suggestion));
}

/// The panic-reachability pass.
pub struct PanicPass;

impl Pass for PanicPass {
    fn name(&self) -> &'static str {
        "panic"
    }

    fn description(&self) -> &'static str {
        "no unwrap/expect/index/panic reachable (workspace-wide) from an actor drive loop"
    }

    fn run(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        let g = ws.graph();
        let files = ws.files();
        // Per-file test ranges, computed lazily: most files are only
        // scanned if reached.
        let mut test_ranges: Vec<Option<Vec<Range<usize>>>> = vec![None; files.len()];
        let skip_of =
            |fi: usize, cache: &mut Vec<Option<Vec<Range<usize>>>>| -> Vec<Range<usize>> {
                cache[fi]
                    .get_or_insert_with(|| cfg_test_ranges(files[fi].toks()))
                    .clone()
            };

        let mut roots: BTreeSet<usize> = BTreeSet::new();
        for (scope, root_names) in SCOPES {
            for (fi, file) in files.iter().enumerate() {
                if !file.path.starts_with(scope) {
                    continue;
                }
                let skip = skip_of(fi, &mut test_ranges);
                for &n in g.nodes_of_file(fi) {
                    let f = &g.fns[n];
                    if root_names.contains(&f.name.as_str()) && !in_ranges(&skip, f.body.start) {
                        roots.insert(n);
                    }
                }
            }
        }
        if roots.is_empty() {
            return;
        }
        let (reach, preds) = g.reachable_with_preds(roots.iter().copied());
        for &n in &reach {
            let f = &g.fns[n];
            let file = &files[f.file];
            let toks = file.toks();
            let skip = skip_of(f.file, &mut test_ranges);
            if in_ranges(&skip, f.body.start) {
                continue; // helper defined inside a test module
            }
            let via = g.chain_text(&preds, n);
            let mut i = f.body.start;
            while i < f.body.end.min(toks.len()) {
                let t = &toks[i];
                // PANIC001: .unwrap() / .expect(..)
                if (t.is_ident("unwrap") || t.is_ident("expect"))
                    && i > f.body.start
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                    && !is_poison_unwrap(toks, i)
                {
                    flag(
                        out,
                        file,
                        "PANIC001",
                        t.line,
                        format!(
                            "`.{}()` reachable from actor drive loop (via {via})",
                            t.text
                        ),
                        "a lost or reordered message makes this a crash, not a protocol retry — use `let .. else`/`match` and drop or log the unexpected case, or annotate with `// check:allow(panic)` and justify",
                    );
                }
                // PANIC002: panic-family macros.
                if t.kind == TokKind::Ident
                    && PANIC_MACROS.contains(&t.text.as_str())
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
                {
                    flag(
                        out,
                        file,
                        "PANIC002",
                        t.line,
                        format!("`{}!` reachable from actor drive loop (via {via})", t.text),
                        "drive loops must stay up through unexpected input; handle the case or annotate with `// check:allow(panic)`",
                    );
                }
                // PANIC002: slice/array indexing.
                if is_index_bracket(toks, i) {
                    flag(
                        out,
                        file,
                        "PANIC002",
                        t.line,
                        format!(
                            "slice index reachable from actor drive loop (via {via}) panics out of bounds"
                        ),
                        "use `.get(..)` and handle `None`, or annotate with `// check:allow(panic)` citing the invariant that bounds the index",
                    );
                }
                i += 1;
            }
        }
    }
}
