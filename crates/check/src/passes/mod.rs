//! The pass pipeline: protocol-aware analyses over the shared model, plus
//! token-scanning helpers they have in common. `wire`/`state`/`locks`/
//! `determinism` are lexical; `time`/`callback`/`panic` run on the CFG +
//! dataflow layer in [`crate::cfg`]; `flow`/`race` (and the re-rooted
//! `callback`/`panic`) run on the workspace-wide call graph in
//! [`crate::callgraph`].

pub mod callback;
pub mod determinism;
pub mod flow;
pub mod locks;
pub mod panic;
pub mod race;
pub mod state;
pub mod sync;
pub mod time;
pub mod wire;

use crate::lexer::{Tok, TokKind};

/// An occurrence of a qualified path `Base::Name` in a token range.
#[derive(Debug, Clone)]
pub struct PathHit {
    /// The right-hand identifier (`Name`).
    pub name: String,
    /// 1-based line of the occurrence.
    pub line: u32,
    /// Token index of the right-hand identifier.
    pub idx: usize,
}

/// Find every `base :: <ident>` occurrence inside `range`.
pub fn find_paths(toks: &[Tok], range: std::ops::Range<usize>, base: &str) -> Vec<PathHit> {
    let mut out = Vec::new();
    let mut i = range.start;
    while i + 3 < range.end.min(toks.len()) {
        if toks[i].is_ident(base)
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks[i + 3].kind == TokKind::Ident
        {
            out.push(PathHit {
                name: toks[i + 3].text.clone(),
                line: toks[i + 3].line,
                idx: i + 3,
            });
            i += 4;
        } else {
            i += 1;
        }
    }
    out
}

/// If `idx + 1` opens a brace/paren group, return the number of top-level
/// comma-separated elements in it, or `None` for "contains a `..` rest
/// pattern / no group follows" (meaning: field count unknowable).
///
/// Returns `Some(None)` when no group follows (a unit use),
/// `Some(Some(n))` for a counted group, and `None` when counting must be
/// skipped because of a rest pattern.
pub fn group_field_count(toks: &[Tok], idx: usize) -> Option<Option<usize>> {
    let open = idx + 1;
    if open >= toks.len() || !(toks[open].is_punct('{') || toks[open].is_punct('(')) {
        return Some(None);
    }
    let (oc, cc) = if toks[open].is_punct('{') {
        ('{', '}')
    } else {
        ('(', ')')
    };
    let end = crate::parse::skip_group(toks, open, oc, cc);
    let inner = open + 1..end - 1;
    // Split on top-level commas; detect `..` rest markers.
    let mut count = 0usize;
    let mut depth = 0i32;
    let mut elem_start = inner.start;
    let mut has_rest = false;
    let mut check_elem = |s: usize, e: usize, has_rest: &mut bool| {
        if e > s {
            count += 1;
            let all_dots = (s..e).all(|k| toks[k].is_punct('.'));
            if all_dots {
                *has_rest = true;
            }
        }
    };
    for j in inner.clone() {
        let t = &toks[j];
        if t.kind == TokKind::Punct {
            match t.text.as_bytes()[0] {
                b'{' | b'(' | b'[' => depth += 1,
                b'}' | b')' | b']' => depth -= 1,
                b',' if depth == 0 => {
                    check_elem(elem_start, j, &mut has_rest);
                    elem_start = j + 1;
                }
                _ => {}
            }
        }
    }
    check_elem(elem_start, inner.end, &mut has_rest);
    if has_rest {
        None
    } else {
        Some(Some(count))
    }
}
