//! Determinism lints: the simulation-deterministic crates must not read
//! wall-clock time, draw OS randomness, or let `HashMap`/`HashSet`
//! iteration order escape into protocol behaviour.
//!
//! The whole point of the discrete-event harness is bit-identical replay
//! from a seed; one `Instant::now()` in a protocol crate silently breaks
//! that. Scope: `crates/{sim,mdcc,predict,workload}/src`. The live-cluster
//! runtime (`crates/cluster`) deliberately uses real time and is out of
//! scope. Sites that are deterministic for a reason the lint cannot see
//! (e.g. a hash-map iteration whose results are sorted before use) carry a
//! `// check:allow(determinism)` comment on the same or preceding line.

use std::collections::BTreeSet;

use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};
use crate::model::{Pass, SourceFile, Workspace};
use crate::parse::{skip_group, typed_lets};

/// Crates whose `src` trees must stay deterministic.
const SCOPES: &[&str] = &[
    "crates/sim/src/",
    "crates/mdcc/src/",
    "crates/predict/src/",
    "crates/workload/src/",
];

/// Identifiers that read nondeterministic state, with their codes.
const BANNED_IDENTS: &[(&str, &str, &str)] = &[
    ("Instant", "DET001", "wall-clock time"),
    ("SystemTime", "DET002", "wall-clock time"),
    ("thread_rng", "DET003", "OS-seeded randomness"),
    ("ThreadRng", "DET003", "OS-seeded randomness"),
    ("OsRng", "DET003", "OS-seeded randomness"),
    ("getrandom", "DET003", "OS-seeded randomness"),
];

/// Methods whose results surface a hash container's iteration order.
const ORDER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Token index ranges covered by `#[cfg(test)]`-gated items — including
/// compound gates like `#[cfg(all(test, loom))]` / `#[cfg(all(test,
/// not(loom)))]` — (test modules may use real time and unordered iteration
/// freely). Shared with the panic, race, and sync passes, which likewise
/// exempt test code.
pub(crate) fn cfg_test_ranges(toks: &[Tok]) -> Vec<std::ops::Range<usize>> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 6 < toks.len() {
        let is_cfg = toks[i].is_punct('#')
            && toks[i + 1].is_punct('[')
            && toks[i + 2].is_ident("cfg")
            && toks[i + 3].is_punct('(');
        if !is_cfg {
            i += 1;
            continue;
        }
        // A gate counts as test-only when a bare `test` predicate appears
        // anywhere in it (`test`, `all(test, ..)`) — but not negated
        // (`not(test)` gates production-only code).
        let gend = skip_group(toks, i + 3, '(', ')');
        let test_gated = (i + 4..gend.saturating_sub(1))
            .any(|k| toks[k].is_ident("test") && !(k >= 2 && toks[k - 2].is_ident("not")));
        if !test_gated || !toks.get(gend).is_some_and(|t| t.is_punct(']')) {
            i = gend;
            continue;
        }
        // Skip the attributed item: everything to the end of its first
        // brace group, or to a `;` if one comes first (e.g. a `use`).
        let mut j = gend + 1;
        let start = i;
        loop {
            match toks.get(j) {
                None => {
                    out.push(start..toks.len());
                    return out;
                }
                Some(t) if t.is_punct(';') => {
                    out.push(start..j + 1);
                    break;
                }
                Some(t) if t.is_punct('{') => {
                    let end = skip_group(toks, j, '{', '}');
                    out.push(start..end);
                    break;
                }
                _ => j += 1,
            }
        }
        i = out.last().map_or(i + 1, |r| r.end);
    }
    out
}

fn in_ranges(ranges: &[std::ops::Range<usize>], idx: usize) -> bool {
    ranges.iter().any(|r| r.contains(&idx))
}

/// Names in this file known to be hash-ordered containers: struct fields
/// plus `let` bindings with a visible `HashMap`/`HashSet` type.
fn hash_names(file: &SourceFile) -> BTreeSet<String> {
    let mut names: BTreeSet<String> = file
        .fields()
        .iter()
        .filter(|f| f.ty.contains("HashMap") || f.ty.contains("HashSet"))
        .map(|f| f.name.clone())
        .collect();
    names.extend(typed_lets(file.toks(), &["HashMap", "HashSet"]));
    names
}

fn flag(
    out: &mut Vec<Diagnostic>,
    file: &SourceFile,
    code: &'static str,
    line: u32,
    message: String,
    suggestion: &str,
) {
    if file.allowed("determinism", line) {
        return;
    }
    out.push(Diagnostic::error(code, &file.path, line, message).with_suggestion(suggestion));
}

/// The determinism pass.
pub struct DeterminismPass;

impl Pass for DeterminismPass {
    fn name(&self) -> &'static str {
        "determinism"
    }

    fn description(&self) -> &'static str {
        "sim-deterministic crates avoid wall clocks, OS randomness and hash-order escapes"
    }

    fn run(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for scope in SCOPES {
            for file in ws.files_under(scope) {
                let toks = file.toks();
                let skip = cfg_test_ranges(toks);
                let hashes = hash_names(file);
                let mut i = 0;
                while i < toks.len() {
                    if in_ranges(&skip, i) {
                        i += 1;
                        continue;
                    }
                    let t = &toks[i];
                    if t.kind != TokKind::Ident {
                        i += 1;
                        continue;
                    }
                    // DET001-003: banned identifiers.
                    if let Some((name, code, what)) =
                        BANNED_IDENTS.iter().find(|(n, _, _)| t.is_ident(n))
                    {
                        flag(
                            out,
                            file,
                            code,
                            t.line,
                            format!(
                                "nondeterminism: `{name}` ({what}) in a sim-deterministic crate"
                            ),
                            "route time through SimContext/Ctx::now() and randomness through the seeded sim RNG; if this site is provably replay-safe, annotate it with `// check:allow(determinism)`",
                        );
                        i += 1;
                        continue;
                    }
                    // DET004: `name.iter()`-style order escapes on known
                    // hash containers …
                    if hashes.contains(&t.text) && toks.get(i + 1).is_some_and(|n| n.is_punct('.'))
                    {
                        if let Some(m) = toks.get(i + 2) {
                            if m.kind == TokKind::Ident
                                && ORDER_METHODS.contains(&m.text.as_str())
                                && toks.get(i + 3).is_some_and(|n| n.is_punct('('))
                            {
                                flag(
                                    out,
                                    file,
                                    "DET004",
                                    m.line,
                                    format!(
                                        "nondeterminism: iteration order of hash container `{}` escapes via `.{}()`",
                                        t.text, m.text
                                    ),
                                    "use a BTreeMap/BTreeSet, or sort the results before they influence behaviour and annotate with `// check:allow(determinism)`",
                                );
                            }
                        }
                    }
                    // … and `for x in [&][mut] name` loops.
                    if t.is_ident("for") {
                        // find `in` within this loop head
                        let mut j = i + 1;
                        while j < toks.len() && !toks[j].is_punct('{') {
                            if toks[j].is_ident("in") {
                                let mut k = j + 1;
                                while toks
                                    .get(k)
                                    .is_some_and(|x| x.is_punct('&') || x.is_ident("mut"))
                                {
                                    k += 1;
                                }
                                if let Some(name_tok) = toks.get(k) {
                                    // only a bare `for x in name {` (no
                                    // further projection — those hit the
                                    // method check above)
                                    if hashes.contains(&name_tok.text)
                                        && toks.get(k + 1).is_some_and(|n| n.is_punct('{'))
                                    {
                                        flag(
                                            out,
                                            file,
                                            "DET004",
                                            name_tok.line,
                                            format!(
                                                "nondeterminism: iterating hash container `{}` directly in a `for` loop",
                                                name_tok.text
                                            ),
                                            "use a BTreeMap/BTreeSet, or collect and sort first and annotate with `// check:allow(determinism)`",
                                        );
                                    }
                                }
                                break;
                            }
                            j += 1;
                        }
                    }
                    i += 1;
                }
            }
        }
    }
}
