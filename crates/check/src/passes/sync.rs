//! Atomics/memory-ordering and lost-wakeup analysis over the reactor
//! runtime (`planet-check v4`).
//!
//! The reactor's hot path is lock-free: a per-task scheduling word, a
//! Dekker-style parker flag, handoff flags (task-done, timer-pending) and
//! a pile of stat counters. Each of those words has a *role*, and each
//! role has an ordering contract; an ordering that is too weak loses
//! wakeups under weak memory, and one that is too strong mis-documents
//! the protocol (and costs fences on ARM). The contracts themselves are
//! certified dynamically by the `planet-loom` harness
//! (`reactor::loom_tests`, run under `--cfg loom`); this pass pins them
//! statically so a drive-by "optimization" cannot downgrade a verified
//! protocol. Codes:
//!
//! * **ATOM001** — role/ordering pairing. Every atomic field in scope
//!   must be declared in [`ATOMIC_ROLES`] (or carry an allow marker at
//!   its declaration: "this is an unchecked stat word"). Declared
//!   `Counter`s must use exactly `Relaxed` (anything stronger is a
//!   misdocumented protocol word); declared `Handoff` words must pair
//!   `Release`-or-stronger stores with `Acquire`-or-stronger loads.
//! * **ATOM002** — Dekker store→load sequences. `SeqCst`-role words (the
//!   parker's `parked` flag, the worker-pool `running` gate, the tcp
//!   `closed` word) take part in store-one-word-then-load-the-other
//!   protocols whose correctness argument needs the single total order:
//!   every operation on them must be `SeqCst`.
//! * **ATOM003** — `compare_exchange` ordering sanity: the failure
//!   ordering feeds the retry loop's next decision, so it must not be
//!   `Relaxed` on a protocol word; a successful exchange that publishes
//!   a state transition must carry a `Release` component; and a failure
//!   ordering stronger than the success ordering is incoherent.
//! * **WAKE001** — lost wakeup: a function that enqueues work (run-queue
//!   push, timer-fire push, mailbox enqueue, flush-slot absorb) must
//!   reach the matching unpark/notify on every path — checked with the
//!   CFG must-solver like TIME001, with a caller-level cover for sites
//!   whose notify lives one frame up (`absorb` → the worker loop's
//!   `flush`/`flush_if_due`).
//! * **WAKE002** — park without recheck: a condvar wait must re-check
//!   its predicate under the lock — either the wait sits in a loop that
//!   re-reads the guard, or it is gated by an `if`/`while` on the guard
//!   (`park_unless`'s sticky-notified check). A bare wait loses the
//!   notify that lands between the caller's check and the sleep.
//!
//! Scope: `crates/cluster/src/`. Suppress with `// check:allow(atomics)`.

use std::collections::HashMap;
use std::ops::Range;

use crate::cfg::{build_cfg, find_body_brace, solve, Cfg, Dir, Meet};
use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};
use crate::model::{Pass, SourceFile, Workspace};
use crate::parse::skip_group;
use crate::passes::determinism::cfg_test_ranges;

const SCOPE: &str = "crates/cluster/src/";

/// What a declared atomic word is *for* — the role decides the ordering
/// contract.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Role {
    /// The task scheduling word: CAS-driven state machine. Publishes on
    /// every transition (`Release` component required), and the observed
    /// value drives the next decision (`Acquire` component required).
    Sched,
    /// A Dekker word: takes part in a store-A-then-load-B protocol with
    /// no mediating lock on the checked side. Everything `SeqCst`.
    SeqCst,
    /// A handoff flag: one side publishes state behind the flag, the
    /// other consumes it. Stores `Release`+, loads `Acquire`+.
    Handoff,
    /// A stat counter: never synchronizes anything. Exactly `Relaxed`.
    Counter,
}

/// The declared atomic-role table: every atomic field the cluster crate
/// owns, by file suffix and field name. An atomic missing from this table
/// (and not allow-marked at its declaration) is an ATOM001 finding — the
/// table is the ratchet that forces new atomics to declare their
/// protocol.
const ATOMIC_ROLES: &[(&str, &str, Role)] = &[
    ("reactor.rs", "sched", Role::Sched),
    ("reactor.rs", "done", Role::Handoff),
    ("reactor.rs", "timer_pending", Role::Handoff),
    // `parked` pairs an enqueuer's push-then-load-parked with the
    // worker's set-parked-then-recheck; `running` pairs shutdown's
    // store-false-then-notify with the worker's empty-queue-then-load.
    ("reactor.rs", "parked", Role::SeqCst),
    ("reactor.rs", "running", Role::SeqCst),
    ("reactor.rs", "next_home", Role::Counter),
    ("reactor.rs", "steals", Role::Counter),
    ("reactor.rs", "busy_us", Role::Counter),
    ("reactor.rs", "idle_us", Role::Counter),
    ("reactor.rs", "drives", Role::Counter),
    ("reactor.rs", "parks", Role::Counter),
    // tcp's `closed` gates the writer pump against `close()` from any
    // thread with no lock on the fast path.
    ("tcp.rs", "closed", Role::SeqCst),
];

/// Atomic RMW method names (single-ordering ops that both read and write).
const RMW_OPS: &[&str] = &[
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
];

/// WAKE001 rules: enqueuing work via `recv.method(..)` (or any-receiver
/// when `recv` is `None`) must reach one of the `cover` identifiers on
/// every path — in the enqueuing function, or (TIME003-style) around
/// every call site in every caller.
struct WakeRule {
    file_suffix: &'static str,
    recv: Option<&'static str>,
    method: &'static str,
    cover: &'static [&'static str],
    what: &'static str,
    fix: &'static str,
}

const WAKE_TABLE: &[WakeRule] = &[
    WakeRule {
        file_suffix: "reactor.rs",
        recv: Some("queue"),
        method: "push_back",
        cover: &["parked", "notify"],
        what: "run-queue push",
        fix: "rouse a sleeper (check `parked`/call `notify`) after pushing a runnable task",
    },
    WakeRule {
        file_suffix: "reactor.rs",
        recv: Some("fires"),
        method: "push_back",
        cover: &["timer_pending"],
        what: "timer-fire push",
        fix: "set `timer_pending` after queueing a fire, or the drive fast path never sees it",
    },
    WakeRule {
        file_suffix: "reactor.rs",
        recv: None,
        method: "push_timer",
        cover: &["wake"],
        what: "timer fire delivery",
        fix: "wake the task after pushing a timer fire; a fire without a wake waits for unrelated traffic",
    },
    WakeRule {
        file_suffix: "reactor.rs",
        recv: None,
        method: "absorb",
        cover: &["flush", "flush_if_due"],
        what: "coalesced-flush absorb",
        fix: "every path past an absorb must reach `flush`/`flush_if_due` (the horizon check), or batched envelopes strand",
    },
    WakeRule {
        file_suffix: "plane.rs",
        recv: Some("tx"),
        method: "send",
        cover: &["waker"],
        what: "mailbox enqueue",
        fix: "invoke the registered waker after a successful enqueue, or the reactor task never learns about the message",
    },
];

/// Ordering strength for coherence comparisons (`Acquire`/`Release` are
/// incomparable directions but equal strength).
fn rank(ord: &str) -> u8 {
    match ord {
        "Relaxed" => 0,
        "Acquire" | "Release" => 1,
        "AcqRel" => 2,
        "SeqCst" => 3,
        _ => 0,
    }
}

fn has_acquire(ord: &str) -> bool {
    matches!(ord, "Acquire" | "AcqRel" | "SeqCst")
}

fn has_release(ord: &str) -> bool {
    matches!(ord, "Release" | "AcqRel" | "SeqCst")
}

/// One atomic operation site: `recv.op(args)`.
struct AtomicOp {
    recv: String,
    op: String,
    line: u32,
    /// `Ordering::X` names in argument order (success first for CAS).
    ords: Vec<String>,
}

/// Collect atomic op sites in `range`: `<ident> . <op> (` where `op` is a
/// known atomic method and the arguments name at least one `Ordering::`.
/// Requiring the `Ordering` argument screens out same-named methods on
/// non-atomics (`Vec::swap`, mailbox `load`, ...).
fn atomic_ops(toks: &[Tok], range: Range<usize>) -> Vec<AtomicOp> {
    let mut out = Vec::new();
    let mut i = range.start.max(2);
    while i + 1 < range.end.min(toks.len()) {
        let is_op = toks[i].kind == TokKind::Ident
            && toks[i - 1].is_punct('.')
            && toks[i + 1].is_punct('(')
            && (toks[i].is_ident("load")
                || toks[i].is_ident("store")
                || toks[i].is_ident("compare_exchange")
                || toks[i].is_ident("compare_exchange_weak")
                || RMW_OPS.iter().any(|m| toks[i].is_ident(m)));
        if !is_op {
            i += 1;
            continue;
        }
        let end = skip_group(toks, i + 1, '(', ')');
        let args = i + 2..end - 1;
        let ords: Vec<String> = super::find_paths(toks, args, "Ordering")
            .into_iter()
            .map(|h| h.name)
            .collect();
        if ords.is_empty() {
            i = end;
            continue;
        }
        out.push(AtomicOp {
            recv: toks[i - 2].text.clone(),
            op: toks[i].text.clone(),
            line: toks[i].line,
            ords,
        });
        i = end;
    }
    out
}

/// Atomic field/local declarations in a file: `name : [Arc <] AtomicXxx`.
/// Returns `(name, line)` per declaration.
fn atomic_decls(toks: &[Tok]) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident || !toks[i].text.starts_with("Atomic") {
            continue;
        }
        // `AtomicU64::new(..)` is an expression use, not a declaration.
        if toks.get(i + 1).is_some_and(|t| t.is_punct(':')) {
            continue;
        }
        // Walk back over wrapper generics (`Arc <`) to the `name :`.
        let mut j = i;
        while j >= 2 && (toks[j - 1].is_punct('<') || toks[j - 1].kind == TokKind::Ident) {
            j -= 1;
            if toks[j].is_punct('<') {
                continue;
            }
            break;
        }
        while j >= 2 && toks[j].kind == TokKind::Ident && toks[j - 1].is_punct('<') {
            j -= 2;
        }
        if j >= 2 && toks[j - 1].is_punct(':') && toks[j - 2].kind == TokKind::Ident {
            out.push((toks[j - 2].text.clone(), toks[i].line));
        }
    }
    out
}

/// Mask-bit-0 gen vector: blocks containing any of the cover identifiers.
fn cover_gens(toks: &[Tok], cfg: &Cfg, cover: &[&str]) -> Vec<u64> {
    cfg.blocks
        .iter()
        .map(|b| {
            let hit = b.range.clone().any(|k| {
                toks.get(k)
                    .is_some_and(|t| cover.iter().any(|c| t.is_ident(c)))
            });
            u64::from(hit)
        })
        .collect()
}

/// Block index containing token `idx`.
fn block_of(cfg: &Cfg, idx: usize) -> Option<usize> {
    (0..cfg.blocks.len()).find(|&b| cfg.blocks[b].range.contains(&idx))
}

/// True when every path through token `idx`'s block contains a cover
/// identifier: the block itself, all paths into it, or all paths from it
/// to the exit.
fn covered_on_path(cfg: &Cfg, gens: &[u64], idx: usize) -> bool {
    let Some(b) = block_of(cfg, idx) else {
        return false; // unmapped block: be strict
    };
    if gens[b] & 1 == 1 {
        return true;
    }
    let fwd = solve(cfg, Dir::Forward, Meet::Must, |x| gens[x]);
    let bwd = solve(cfg, Dir::Backward, Meet::Must, |x| gens[x]);
    fwd.entry[b] & 1 == 1 || bwd.entry[b] & 1 == 1
}

fn in_ranges(ranges: &[Range<usize>], idx: usize) -> bool {
    ranges.iter().any(|r| r.contains(&idx))
}

fn flag(
    out: &mut Vec<Diagnostic>,
    file: &SourceFile,
    code: &'static str,
    line: u32,
    message: String,
    suggestion: &str,
) {
    if file.allowed("atomics", line) {
        return;
    }
    out.push(Diagnostic::error(code, &file.path, line, message).with_suggestion(suggestion));
}

/// The atomics/wakeup pass.
pub struct SyncPass;

impl Pass for SyncPass {
    fn name(&self) -> &'static str {
        "sync"
    }

    fn description(&self) -> &'static str {
        "atomic orderings match declared roles; every enqueue reaches its notify; parks recheck"
    }

    fn run(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        let files = ws.files();
        for (fi, file) in files.iter().enumerate() {
            if !file.path.starts_with(SCOPE) {
                continue;
            }
            let toks = file.toks();
            let skip = cfg_test_ranges(toks);
            let roles: HashMap<&str, Role> = ATOMIC_ROLES
                .iter()
                .filter(|(suffix, _, _)| file.path.ends_with(suffix))
                .map(|(_, name, role)| (*name, *role))
                .collect();

            self.check_declarations(file, toks, &skip, &roles, out);
            self.check_ops(file, toks, &skip, &roles, out);
            self.check_wakes(ws, fi, file, out);
            self.check_parks(file, toks, &skip, out);
        }
    }
}

impl SyncPass {
    /// ATOM001 (declaration half): every atomic field in scope is either
    /// role-declared or allow-marked.
    fn check_declarations(
        &self,
        file: &SourceFile,
        toks: &[Tok],
        skip: &[Range<usize>],
        roles: &HashMap<&str, Role>,
        out: &mut Vec<Diagnostic>,
    ) {
        // Declaration sites found by token walk (FieldDef carries no
        // line, and locals count too). For the skip check, map each
        // declaration line back to a token index on that line.
        let mut cursor = 0usize;
        for (name, line) in atomic_decls(toks) {
            let idx = (cursor..toks.len())
                .find(|&k| toks[k].line == line)
                .unwrap_or(0);
            cursor = idx;
            if in_ranges(skip, idx) || roles.contains_key(name.as_str()) {
                continue;
            }
            flag(
                out,
                file,
                "ATOM001",
                line,
                format!(
                    "atomic `{name}` is not declared in the role table (sched-word / seqcst-word / handoff-flag / stat-counter)"
                ),
                "add the field to ATOMIC_ROLES in the sync pass with its protocol role, or annotate the declaration with `// check:allow(atomics)` if it is a stat word the analysis should not track",
            );
        }
    }

    /// ATOM001/002/003 (operation half): every op on a declared word
    /// satisfies its role's ordering contract.
    fn check_ops(
        &self,
        file: &SourceFile,
        toks: &[Tok],
        skip: &[Range<usize>],
        roles: &HashMap<&str, Role>,
        out: &mut Vec<Diagnostic>,
    ) {
        let whole = 0..toks.len();
        // Token index per line for skip checks: atomic_ops yields lines.
        let mut line_idx: HashMap<u32, usize> = HashMap::new();
        for (k, t) in toks.iter().enumerate() {
            line_idx.entry(t.line).or_insert(k);
        }
        for op in atomic_ops(toks, whole) {
            let Some(&role) = roles.get(op.recv.as_str()) else {
                continue; // undeclared: the declaration check owns it
            };
            if line_idx.get(&op.line).is_some_and(|&k| in_ranges(skip, k)) {
                continue;
            }
            let is_cas = op.op.starts_with("compare_exchange");
            let success = op.ords.first().map(String::as_str).unwrap_or("Relaxed");
            match role {
                Role::Counter => {
                    if op.ords.iter().any(|o| o != "Relaxed") {
                        flag(
                            out,
                            file,
                            "ATOM001",
                            op.line,
                            format!(
                                "stat-counter `{}` uses `Ordering::{}` — counters synchronize nothing and must be `Relaxed`",
                                op.recv, success
                            ),
                            "downgrade to `Ordering::Relaxed`; if this word now guards a protocol, give it a protocol role in ATOMIC_ROLES instead",
                        );
                    }
                }
                Role::SeqCst => {
                    if op.ords.iter().any(|o| o != "SeqCst") {
                        flag(
                            out,
                            file,
                            "ATOM002",
                            op.line,
                            format!(
                                "Dekker-style word `{}` uses `Ordering::{}` — store→load protocols need the `SeqCst` total order (Release/Acquire permits both sides to read stale and lose the wakeup)",
                                op.recv,
                                op.ords.iter().find(|o| *o != "SeqCst").map(String::as_str).unwrap_or(success)
                            ),
                            "use `Ordering::SeqCst` on every access to this word (the loom harness's `dekker_handoff_below_seqcst_is_found` model demonstrates the failure)",
                        );
                    }
                }
                Role::Handoff => {
                    let bad = match op.op.as_str() {
                        "load" => !has_acquire(success),
                        "store" => !has_release(success),
                        _ => !(has_acquire(success) && has_release(success)),
                    };
                    if bad {
                        flag(
                            out,
                            file,
                            "ATOM001",
                            op.line,
                            format!(
                                "handoff-flag `{}`: `{}` with `Ordering::{}` — stores must publish (`Release`+) and loads must consume (`Acquire`+), or the state behind the flag is not visible",
                                op.recv, op.op, success
                            ),
                            "pair `Release` stores with `Acquire` loads (RMWs: `AcqRel`) on handoff flags",
                        );
                    }
                }
                Role::Sched => {
                    let bad = match op.op.as_str() {
                        "load" => !has_acquire(success),
                        "store" => !has_release(success),
                        _ if is_cas => !(has_acquire(success) && has_release(success)),
                        _ => !(has_acquire(success) && has_release(success)),
                    };
                    if bad {
                        flag(
                            out,
                            file,
                            "ATOM001",
                            op.line,
                            format!(
                                "sched-word `{}`: `{}` with `Ordering::{}` — every transition publishes the previous drive and the observed state drives the next decision",
                                op.recv, op.op, success
                            ),
                            "use `AcqRel` exchanges, `Release` stores and `Acquire` loads on the scheduling word",
                        );
                    }
                }
            }
            // ATOM003: CAS pair sanity on protocol words.
            if is_cas && role != Role::Counter {
                let failure = op.ords.get(1).map(String::as_str).unwrap_or("Relaxed");
                if failure == "Relaxed" {
                    flag(
                        out,
                        file,
                        "ATOM003",
                        op.line,
                        format!(
                            "`{}.{}`: `Relaxed` failure ordering — the loaded value feeds the retry loop's next decision and must be at least `Acquire`",
                            op.recv, op.op
                        ),
                        "use `Ordering::Acquire` (or stronger) as the failure ordering",
                    );
                }
                if rank(failure) > rank(success) {
                    flag(
                        out,
                        file,
                        "ATOM003",
                        op.line,
                        format!(
                            "`{}.{}`: failure ordering `{}` is stronger than success ordering `{}` — the pair is incoherent",
                            op.recv, op.op, failure, success
                        ),
                        "make the success ordering at least as strong as the failure ordering",
                    );
                }
                if !has_release(success) {
                    flag(
                        out,
                        file,
                        "ATOM003",
                        op.line,
                        format!(
                            "`{}.{}`: success ordering `{}` has no `Release` component — a successful exchange publishes the transition",
                            op.recv, op.op, success
                        ),
                        "use `AcqRel` (or `SeqCst`) as the success ordering on state-machine words",
                    );
                }
            }
        }
    }

    /// WAKE001: every enqueue reaches its notify on all paths, in the
    /// enqueuing function or around every call site in every caller.
    fn check_wakes(&self, ws: &Workspace, fi: usize, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let g = ws.graph();
        let toks = file.toks();
        let skip = cfg_test_ranges(toks);
        for rule in WAKE_TABLE {
            if !file.path.ends_with(rule.file_suffix) {
                continue;
            }
            for &node in g.nodes_of_file(fi) {
                let def = &g.fns[node];
                if in_ranges(&skip, def.body.start) {
                    continue;
                }
                // Trigger sites: `recv.method(` (or `_.method(`).
                let sites: Vec<usize> = def
                    .body
                    .clone()
                    .filter(|&k| {
                        k >= 2
                            && k + 1 < toks.len()
                            && toks[k].is_ident(rule.method)
                            && toks[k - 1].is_punct('.')
                            && toks[k + 1].is_punct('(')
                            && rule.recv.is_none_or(|r| toks[k - 2].is_ident(r))
                    })
                    .collect();
                if sites.is_empty() {
                    continue;
                }
                let cfg = build_cfg(toks, def.body.clone());
                let gens = cover_gens(toks, &cfg, rule.cover);
                for site in sites {
                    if covered_on_path(&cfg, &gens, site) {
                        continue;
                    }
                    // Caller-level cover: every caller reaches the notify
                    // around every call into this function (the absorb →
                    // worker-loop flush shape).
                    let callers: Vec<usize> = (0..g.fns.len())
                        .filter(|&n| g.callees[n].contains(&node))
                        .collect();
                    let covered_by_callers = !callers.is_empty()
                        && callers.iter().all(|&n| {
                            let cf = &g.fns[n];
                            let ctoks = ws.files()[cf.file].toks();
                            let cskip = cfg_test_ranges(ctoks);
                            if in_ranges(&cskip, cf.body.start) {
                                return true; // test caller: not evidence either way
                            }
                            let ccfg = build_cfg(ctoks, cf.body.clone());
                            let cgens = cover_gens(ctoks, &ccfg, rule.cover);
                            let call_sites: Vec<usize> = g.calls[n]
                                .iter()
                                .filter(|s| s.target == node)
                                .map(|s| s.tok)
                                .collect();
                            !call_sites.is_empty()
                                && call_sites
                                    .iter()
                                    .all(|&k| covered_on_path(&ccfg, &cgens, k))
                        });
                    if !covered_by_callers {
                        let line = toks[site].line;
                        flag(
                            out,
                            file,
                            "WAKE001",
                            line,
                            format!(
                                "{} in `{}` can exit without reaching {} — a path past this enqueue parks the consumer on work it was never told about",
                                rule.what,
                                def.name,
                                rule.cover
                                    .iter()
                                    .map(|c| format!("`{c}`"))
                                    .collect::<Vec<_>>()
                                    .join("/"),
                            ),
                            rule.fix,
                        );
                    }
                }
            }
        }
    }

    /// WAKE002: every condvar wait rechecks its predicate.
    fn check_parks(
        &self,
        file: &SourceFile,
        toks: &[Tok],
        skip: &[Range<usize>],
        out: &mut Vec<Diagnostic>,
    ) {
        for f in file.fns() {
            if in_ranges(skip, f.body.start) {
                continue;
            }
            let body = f.body.clone();
            let mut i = body.start.max(2);
            while i + 1 < body.end.min(toks.len()) {
                let is_wait = (toks[i].is_ident("wait") || toks[i].is_ident("wait_timeout"))
                    && toks[i - 1].is_punct('.')
                    && toks[i + 1].is_punct('(');
                if !is_wait {
                    i += 1;
                    continue;
                }
                let end = skip_group(toks, i + 1, '(', ')');
                // `wait_while` self-rechecks; `recv_timeout`-style waits
                // have no guard argument and are out of scope. The guard
                // is the first identifier in the argument list.
                let guard = (i + 2..end - 1)
                    .find(|&k| toks[k].kind == TokKind::Ident)
                    .map(|k| toks[k].text.clone());
                let Some(guard) = guard else {
                    i = end;
                    continue;
                };
                if !self.wait_rechecks(toks, &body, i, end, &guard) {
                    flag(
                        out,
                        file,
                        "WAKE002",
                        toks[i].line,
                        format!(
                            "condvar wait on guard `{guard}` in `{}` without a predicate recheck — a notify landing between the caller's check and this sleep is lost (spurious wakeups also return here unchecked)",
                            f.name
                        ),
                        "wrap the wait in `while !predicate { guard = cv.wait(guard) }` or gate it with `if !*flag` on the sticky-notified pattern",
                    );
                }
                i = end;
            }
        }
    }

    /// A wait site rechecks when (a) an enclosing `if`/`while` condition
    /// mentions the guard, or (b) an enclosing `loop`/`while` body reads
    /// the guard at some other site (the `while !*g { g = wait(g) }` and
    /// `loop { if let Some(x) = g.take() .. }` shapes).
    fn wait_rechecks(
        &self,
        toks: &[Tok],
        body: &Range<usize>,
        site: usize,
        call_end: usize,
        guard: &str,
    ) -> bool {
        let mut i = body.start;
        while i < body.end.min(toks.len()) {
            let t = &toks[i];
            let is_block_kw = t.is_ident("loop") || t.is_ident("while") || t.is_ident("if");
            if !is_block_kw {
                i += 1;
                continue;
            }
            let Some(bs) = find_body_brace(toks, i + 1, body.end) else {
                i += 1;
                continue;
            };
            let be = skip_group(toks, bs, '{', '}');
            if (bs..be).contains(&site) {
                // (a) the enclosing condition mentions the guard
                if (i + 1..bs).any(|k| toks[k].is_ident(guard)) {
                    return true;
                }
                // (b) a loop body that reads the guard somewhere other
                // than the wait call's own argument list
                if (t.is_ident("loop") || t.is_ident("while"))
                    && (bs..be).any(|k| toks[k].is_ident(guard) && !(site..call_end).contains(&k))
                {
                    return true;
                }
            }
            // descend into the block to examine nested gates
            i = bs + 1;
        }
        false
    }
}
