//! State-machine legality: transaction lifecycle transitions extracted from
//! the coordinator and replica handler bodies are verified against a
//! declared legal-edge table.
//!
//! The transaction FSM is `Started → ReadsDone → (Vote | KeyFallback |
//! KeyResolved)* → {Committed, Aborted, TimedOut}`, with every terminal
//! reached through `CoordinatorActor::finish` exactly once (the terminal
//! sink: `finish` removes the transaction from `inflight`, so no edge can
//! leave a terminal state — `Committed → Aborted` is structurally
//! impossible *only if* each handler produces outcomes from its legal set).
//! On the replica, committed versions may only be installed from the decide
//! and apply paths, and pending options may only be dropped by an abort
//! decision, a `DropPending`, or the lease sweep.
//!
//! Extraction is marker-based: a handler's body is scanned for
//! `Outcome::X` / `ProgressStage::X` paths and for `storage.decide(.., true
//! | false)` / `storage.install(..)` / `storage.accept(..)` calls; the table
//! declares which markers each handler may (and must) produce.

use std::collections::BTreeSet;

use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};
use crate::model::{Pass, SourceFile, Workspace};
use crate::parse::skip_group;
use crate::passes::find_paths;

/// A handler's row in the legal-edge table.
struct HandlerRule {
    file: &'static str,
    fn_name: &'static str,
    /// Markers the handler may produce.
    allowed: &'static [&'static str],
    /// Markers the handler must produce (a refactor silently dropping one
    /// of these edges is a protocol bug).
    required: &'static [&'static str],
}

const HANDLERS: &[HandlerRule] = &[
    // ---- coordinator: the transaction FSM ----
    HandlerRule {
        file: "crates/mdcc/src/coordinator.rs",
        fn_name: "handle_submit",
        // An empty transaction commits immediately; everything else just
        // starts.
        allowed: &["stage:Started", "outcome:Committed"],
        required: &["stage:Started"],
    },
    HandlerRule {
        file: "crates/mdcc/src/coordinator.rs",
        fn_name: "handle_read_resp",
        // Read-only transactions commit locally after the read round.
        allowed: &["stage:ReadsDone", "outcome:Committed"],
        required: &["stage:ReadsDone"],
    },
    HandlerRule {
        file: "crates/mdcc/src/coordinator.rs",
        fn_name: "handle_vote",
        allowed: &[
            "stage:Vote",
            "stage:KeyFallback",
            "stage:KeyResolved",
            "outcome:Committed",
            "outcome:Aborted",
        ],
        required: &["outcome:Committed", "outcome:Aborted"],
    },
    // ---- coordinator: the compiled-plan twins of the FSM handlers ----
    HandlerRule {
        file: "crates/mdcc/src/coordinator.rs",
        fn_name: "handle_submit_plan",
        // Unknown-plan / bad-params submissions abort immediately; an empty
        // plan commits immediately; everything else just starts.
        allowed: &["stage:Started", "outcome:Committed", "outcome:Aborted"],
        required: &["stage:Started"],
    },
    HandlerRule {
        file: "crates/mdcc/src/coordinator.rs",
        fn_name: "plan_read_resp",
        allowed: &["stage:ReadsDone", "outcome:Committed"],
        required: &["stage:ReadsDone"],
    },
    HandlerRule {
        file: "crates/mdcc/src/coordinator.rs",
        fn_name: "plan_vote",
        allowed: &[
            "stage:Vote",
            "stage:KeyFallback",
            "stage:KeyResolved",
            "outcome:Committed",
            "outcome:Aborted",
        ],
        required: &["outcome:Committed", "outcome:Aborted"],
    },
    HandlerRule {
        file: "crates/mdcc/src/coordinator.rs",
        fn_name: "handle_timeout",
        // The timeout path may never commit or abort on the transaction's
        // behalf: votes may still be in flight.
        allowed: &["outcome:TimedOut"],
        required: &["outcome:TimedOut"],
    },
    // ---- replica: the storage FSM ----
    HandlerRule {
        file: "crates/mdcc/src/replica_actor.rs",
        fn_name: "handle_decide",
        allowed: &["decide:commit", "decide:abort", "install"],
        required: &["decide:commit", "decide:abort"],
    },
    HandlerRule {
        file: "crates/mdcc/src/replica_actor.rs",
        fn_name: "handle_apply",
        allowed: &["install"],
        required: &["install"],
    },
    HandlerRule {
        file: "crates/mdcc/src/replica_actor.rs",
        fn_name: "handle_drop_pending",
        allowed: &["decide:abort"],
        required: &["decide:abort"],
    },
    HandlerRule {
        file: "crates/mdcc/src/replica_actor.rs",
        fn_name: "sweep_leases",
        allowed: &["decide:abort"],
        required: &["decide:abort"],
    },
    HandlerRule {
        file: "crates/mdcc/src/replica_actor.rs",
        fn_name: "try_accept",
        allowed: &["accept"],
        required: &["accept"],
    },
    // Speculative-commit guard: proposal validation may only *accept*
    // options (via try_accept); it must never install or decide — a commit
    // is legal only from a prepared (decided) state.
    HandlerRule {
        file: "crates/mdcc/src/replica_actor.rs",
        fn_name: "handle_fast_propose",
        allowed: &[],
        required: &[],
    },
    HandlerRule {
        file: "crates/mdcc/src/replica_actor.rs",
        fn_name: "handle_propose",
        allowed: &[],
        required: &[],
    },
    HandlerRule {
        file: "crates/mdcc/src/replica_actor.rs",
        fn_name: "handle_replicate",
        allowed: &[],
        required: &[],
    },
];

/// Which `Msg` variants each actor's receive match may handle. A variant
/// pattern-matched outside its declared role is a routing violation; a
/// variant missing from every role is an unroutable message.
struct RouteRule {
    file: &'static str,
    /// The receive-dispatch functions to scan.
    fns: &'static [&'static str],
    role: &'static str,
    inbound: &'static [&'static str],
}

const ROUTES: &[RouteRule] = &[
    RouteRule {
        file: "crates/mdcc/src/coordinator.rs",
        fns: &["on_message"],
        role: "coordinator",
        inbound: &[
            "Submit",
            "RegisterPlan",
            "SubmitPlan",
            "ReadResp",
            "Vote",
            "TxnTimeout",
        ],
    },
    RouteRule {
        file: "crates/mdcc/src/replica_actor.rs",
        fns: &["on_message", "dispatch", "is_costly"],
        role: "replica",
        inbound: &[
            "ReadReq",
            "FastPropose",
            "Propose",
            "Replicate",
            "ReplicateAck",
            "Decide",
            "Apply",
            "DropPending",
            "Crash",
            "Recover",
            "ReplicaServiceDone",
            "ClientTimer",
        ],
    },
];

/// `Msg` variants delivered to the client/PLANET layer rather than a
/// protocol actor; they complete the routing table.
const CLIENT_INBOUND: &[&str] = &["Progress", "TxnDone", "PlanReady", "ClientTimer"];

/// `Msg` variants that carry a key and therefore must be routed to the
/// key's replica shard. (`Vote` and `ReplicateAck` also carry keys but are
/// replies — they route back to an explicit requester, never by key.)
const KEY_ROUTED: &[&str] = &[
    "ReadReq",
    "FastPropose",
    "Propose",
    "Replicate",
    "Decide",
    "Apply",
    "DropPending",
];

/// Identifiers that witness shard-aware destination resolution in a sending
/// function: the shard map itself, the coordinator's group helpers, or the
/// replica's same-shard peer iterator.
const ROUTING_MARKERS: &[&str] = &[
    "shard_of",
    "shard_replicas",
    "master_replica_for",
    "other_peers",
    // compiled-plan twins: routes are precomputed at plan-compile time from
    // the same shard map, then resolved through these accessors.
    "route_replicas",
    "route_master",
];

/// Files whose senders are subject to the shard-routing check.
const ROUTED_FILES: &[&str] = &[
    "crates/mdcc/src/coordinator.rs",
    "crates/mdcc/src/replica_actor.rs",
];

/// Extract the transition markers present in a function body.
fn markers(toks: &[Tok], body: std::ops::Range<usize>) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for hit in find_paths(toks, body.clone(), "Outcome") {
        out.push((format!("outcome:{}", hit.name), hit.line));
    }
    for hit in find_paths(toks, body.clone(), "ProgressStage") {
        out.push((format!("stage:{}", hit.name), hit.line));
    }
    // storage-mutation calls: `.decide(...)`, `.install(...)`, `.accept(...)`
    // and their interned-id twins (`.decide_id(...)` etc.) — same FSM edge,
    // different key representation.
    let mut i = body.start;
    while i + 2 < body.end.min(toks.len()) {
        if toks[i].is_punct('.')
            && toks[i + 1].kind == TokKind::Ident
            && i + 2 < toks.len()
            && toks[i + 2].is_punct('(')
        {
            let method = toks[i + 1].text.as_str();
            let line = toks[i + 1].line;
            match method {
                "install" | "install_id" => out.push(("install".into(), line)),
                "accept" | "accept_id" => out.push(("accept".into(), line)),
                "decide" | "decide_id" => {
                    let end = skip_group(toks, i + 2, '(', ')');
                    let args = &toks[i + 3..end.saturating_sub(1)];
                    let marker = if args.iter().any(|t| t.is_ident("true")) {
                        "decide:commit"
                    } else if args.iter().any(|t| t.is_ident("false")) {
                        "decide:abort"
                    } else {
                        "decide:dynamic"
                    };
                    out.push((marker.into(), line));
                }
                _ => {}
            }
        }
        i += 1;
    }
    out
}

/// True if the body contains a `ctx.send` call (as opposed to only
/// pattern-matching message variants, as the dispatch functions do).
fn body_sends(toks: &[Tok], body: std::ops::Range<usize>) -> bool {
    let end = body.end.min(toks.len());
    (body.start..end.saturating_sub(2)).any(|i| {
        toks[i].is_ident("ctx") && toks[i + 1].is_punct('.') && toks[i + 2].is_ident("send")
    })
}

/// STATE006: every function that *sends* a key-carrying message must resolve
/// its destination through the shard map. Per-key ordering rests on a key
/// only ever talking to its one shard; a send that picks a replica without a
/// routing witness (`shard_of` / `shard_replicas` / `master_replica_for` /
/// `other_peers`) can silently split a key's history across stores.
fn check_shard_routing(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for path in ROUTED_FILES {
        let Some(file) = ws.file(path) else {
            continue;
        };
        let toks = file.toks();
        for fn_def in file.fns() {
            let body = fn_def.body.clone();
            if !body_sends(toks, body.clone()) {
                continue;
            }
            let routed: Vec<_> = find_paths(toks, body.clone(), "Msg")
                .into_iter()
                .filter(|hit| KEY_ROUTED.contains(&hit.name.as_str()))
                .collect();
            if routed.is_empty() {
                continue;
            }
            let end = body.end.min(toks.len());
            let has_marker = (body.start..end).any(|i| {
                toks[i].kind == TokKind::Ident && ROUTING_MARKERS.contains(&toks[i].text.as_str())
            });
            if has_marker {
                continue;
            }
            for hit in routed {
                if file.allowed("shard_routing", hit.line) {
                    continue;
                }
                out.push(
                    Diagnostic::error(
                        "STATE006",
                        path,
                        hit.line,
                        format!(
                            "unrouted key-carrying send: `{}` sends `Msg::{}` without resolving the destination through the shard map ({})",
                            fn_def.name,
                            hit.name,
                            ROUTING_MARKERS.join(" / "),
                        ),
                    )
                    .with_suggestion(
                        "route the send through shard_of/shard_replicas/master_replica_for (or other_peers on the replica); if the destination is genuinely shard-independent, mark the line `check:allow(shard_routing)`",
                    ),
                );
            }
        }
    }
}

/// The state-machine legality pass.
pub struct StateMachinePass;

impl Pass for StateMachinePass {
    fn name(&self) -> &'static str {
        "state"
    }

    fn description(&self) -> &'static str {
        "handler transitions stay inside the declared transaction/storage FSM edges"
    }

    fn run(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        check_shard_routing(ws, out);
        for rule in HANDLERS {
            let Some(file) = ws.file(rule.file) else {
                continue;
            };
            let Some(fn_def) = file.fn_named(rule.fn_name) else {
                out.push(Diagnostic::error(
                    "STATE005",
                    rule.file,
                    1,
                    format!(
                        "handler `{}` not found (renamed? update the legal-edge table in planet-check)",
                        rule.fn_name
                    ),
                ));
                continue;
            };
            let found = markers(file.toks(), fn_def.body.clone());
            let mut seen: BTreeSet<&str> = BTreeSet::new();
            for (marker, line) in &found {
                seen.insert(marker.as_str());
                if !rule.allowed.contains(&marker.as_str()) {
                    out.push(
                        Diagnostic::error(
                            "STATE001",
                            rule.file,
                            *line,
                            format!(
                                "illegal state transition: `{}` produces `{marker}`, outside its legal-edge set {{{}}}",
                                rule.fn_name,
                                rule.allowed.join(", "),
                            ),
                        )
                        .with_suggestion(
                            "if this edge is genuinely new protocol behaviour, extend the legal-edge table in planet-check's state pass alongside it",
                        ),
                    );
                }
            }
            for required in rule.required {
                if !seen.contains(required) {
                    out.push(Diagnostic::error(
                        "STATE002",
                        rule.file,
                        fn_def.line,
                        format!(
                            "missing state transition: `{}` no longer produces required edge `{required}`",
                            rule.fn_name
                        ),
                    ));
                }
            }
        }

        // ---- message routing legality ----
        let msg_enum = ws
            .file("crates/mdcc/src/messages.rs")
            .and_then(|f| f.enum_named("Msg"));
        for route in ROUTES {
            let Some(file) = ws.file(route.file) else {
                continue;
            };
            for fn_name in route.fns {
                let Some(fn_def) = file.fn_named(fn_name) else {
                    continue;
                };
                for hit in find_paths(file.toks(), fn_def.body.clone(), "Msg") {
                    if !route.inbound.contains(&hit.name.as_str()) {
                        out.push(
                            Diagnostic::error(
                                "STATE003",
                                route.file,
                                hit.line,
                                format!(
                                    "routing violation: `Msg::{}` is handled by the {} but is not declared {}-inbound",
                                    hit.name, route.role, route.role
                                ),
                            )
                            .with_suggestion(
                                "update the routing table in planet-check's state pass if this message legitimately changed owners",
                            ),
                        );
                    }
                }
            }
        }
        if let Some(msg_enum) = msg_enum {
            if routes_apply(ws) {
                for variant in &msg_enum.variants {
                    let routed = ROUTES
                        .iter()
                        .any(|r| r.inbound.contains(&variant.name.as_str()))
                        || CLIENT_INBOUND.contains(&variant.name.as_str());
                    if !routed {
                        out.push(
                            Diagnostic::error(
                                "STATE004",
                                "crates/mdcc/src/messages.rs",
                                variant.line,
                                format!(
                                    "unroutable message: `Msg::{}` is not declared inbound for any actor role",
                                    variant.name
                                ),
                            )
                            .with_suggestion(
                                "declare the receiving role in planet-check's routing table (coordinator, replica or client)",
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// The unroutable-variant check only makes sense when the actor files are in
/// the workspace (fixtures may provide `messages.rs` alone for codec tests).
fn routes_apply(ws: &Workspace) -> bool {
    ROUTES.iter().all(|r| {
        ws.file(r.file)
            .is_some_and(|f: &SourceFile| r.fns.iter().any(|n| f.fn_named(n).is_some()))
    })
}
