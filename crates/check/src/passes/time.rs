//! Timeout-coverage lints: every quorum/ack wait in the MDCC protocol
//! crate must reach a timeout edge.
//!
//! The protocol's liveness story is "every wait is bounded": a coordinator
//! that starts collecting votes arms `TxnTimeout`; a replica's ack state is
//! reclaimed by the standing lease sweep. A wait registered without a timer
//! hangs forever the first time a message is lost. Three codes:
//!
//! * **TIME001** — a function inserts into a wait-tracking collection (the
//!   table in [`WAIT_TABLE`]) but some path through the insert never
//!   executes `ctx.schedule(_, Msg::<Timer>)`. Checked with the CFG
//!   must-solver: the insert block itself, all paths into it, or all paths
//!   from it to the exit must contain the schedule.
//! * **TIME002** — a timer message is scheduled somewhere in a file but the
//!   variant never appears outside `schedule(..)` argument lists in that
//!   file, i.e. nothing handles it when it fires.
//! * **TIME003** — a one-shot timer's handler reaches an insert into a
//!   collection that *only* the timer's own handler ever reclaims, without
//!   re-arming the timer on that path. Firing the timer consumed it; the
//!   inserted entry can never be swept again. (This is exactly the shape of
//!   the coordinator's `recent` map: normal completion inserts while the
//!   submit-time timer is still pending, but the timeout path inserts
//!   *after* consuming that timer.)
//!
//! Scope: `crates/mdcc/src/`. Suppress with `// check:allow(time)`.

use std::collections::BTreeSet;
use std::ops::Range;

use crate::callgraph::{call_names, CallGraph};
use crate::cfg::{build_cfg, find_body_brace, match_arms, solve, Cfg, Dir, Meet};
use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};
use crate::model::{Pass, SourceFile, Workspace};
use crate::parse::skip_group;

/// Wait-tracking collections that require a per-wait timer: inserting into
/// `collection` (in files whose path ends with `file_suffix`) must be
/// covered by `ctx.schedule(_, Msg::<timer>)` on every path.
const WAIT_TABLE: &[WaitRule] = &[WaitRule {
    file_suffix: "coordinator.rs",
    collection: "inflight",
    timer: "TxnTimeout",
}];

/// One entry of [`WAIT_TABLE`].
struct WaitRule {
    file_suffix: &'static str,
    collection: &'static str,
    timer: &'static str,
}

/// A `<coll>.<method>(` call site.
struct MethodCall {
    coll: String,
    idx: usize,
    line: u32,
}

/// Find `<ident> . <method> (` sites where `method` is in `methods`.
fn method_calls(toks: &[Tok], range: Range<usize>, methods: &[&str]) -> Vec<MethodCall> {
    let mut out = Vec::new();
    let mut i = range.start;
    while i + 3 < range.end.min(toks.len()) {
        if toks[i].kind == TokKind::Ident
            && toks[i + 1].is_punct('.')
            && toks[i + 2].kind == TokKind::Ident
            && methods.contains(&toks[i + 2].text.as_str())
            && toks[i + 3].is_punct('(')
        {
            out.push(MethodCall {
                coll: toks[i].text.clone(),
                idx: i,
                line: toks[i + 2].line,
            });
        }
        i += 1;
    }
    out
}

/// A `schedule(..)` call site and the timer variant it constructs.
struct ScheduleSite {
    /// `Msg::<variant>` found in the argument list, if any.
    variant: Option<String>,
    line: u32,
    args: Range<usize>,
}

fn schedule_sites(toks: &[Tok], range: Range<usize>) -> Vec<ScheduleSite> {
    let mut out = Vec::new();
    let mut i = range.start;
    while i + 1 < range.end.min(toks.len()) {
        if toks[i].is_ident("schedule") && toks[i + 1].is_punct('(') {
            let end = skip_group(toks, i + 1, '(', ')');
            let args = i + 2..end - 1;
            let variant = super::find_paths(toks, args.clone(), "Msg")
                .into_iter()
                .next()
                .map(|h| h.name);
            out.push(ScheduleSite {
                variant,
                line: toks[i].line,
                args,
            });
            i = end;
            continue;
        }
        i += 1;
    }
    out
}

/// Mask-bit-0 gen vector: blocks containing `schedule(.. Msg::<timer> ..)`.
fn schedule_gens(toks: &[Tok], cfg: &Cfg, timer: &str) -> Vec<u64> {
    cfg.blocks
        .iter()
        .map(|b| {
            let armed = schedule_sites(toks, b.range.clone())
                .iter()
                .any(|s| s.variant.as_deref() == Some(timer));
            u64::from(armed)
        })
        .collect()
}

/// Block index containing token `idx`.
fn block_of(cfg: &Cfg, idx: usize) -> Option<usize> {
    (0..cfg.blocks.len()).find(|&b| cfg.blocks[b].range.contains(&idx))
}

/// True when every path through token `idx`'s block contains a
/// `schedule(Msg::<timer>)`: the block itself, all paths into it, or all
/// paths from it to the exit.
fn armed_on_path(toks: &[Tok], cfg: &Cfg, gens: &[u64], idx: usize) -> bool {
    let _ = toks;
    let Some(b) = block_of(cfg, idx) else {
        return false; // insert in a join block we failed to map: be strict
    };
    if gens[b] & 1 == 1 {
        return true;
    }
    let fwd = solve(cfg, Dir::Forward, Meet::Must, |x| gens[x]);
    let bwd = solve(cfg, Dir::Backward, Meet::Must, |x| gens[x]);
    fwd.entry[b] & 1 == 1 || bwd.entry[b] & 1 == 1
}

/// All `match` arms in a token range (any nesting depth).
fn arms_in(toks: &[Tok], range: Range<usize>) -> Vec<crate::cfg::Arm> {
    let mut out = Vec::new();
    let mut i = range.start;
    while i < range.end.min(toks.len()) {
        if toks[i].is_ident("match") {
            if let Some(bs) = find_body_brace(toks, i + 1, range.end) {
                let be = skip_group(toks, bs, '{', '}');
                for arm in match_arms(toks, bs + 1..be - 1) {
                    // Recurse into the arm body for nested matches.
                    out.extend(arms_in(toks, arm.body.clone()));
                    out.push(arm);
                }
                i = be;
                continue;
            }
        }
        i += 1;
    }
    out
}

fn range_has_path(toks: &[Tok], range: Range<usize>, base: &str, name: &str) -> bool {
    super::find_paths(toks, range, base)
        .iter()
        .any(|h| h.name == name)
}

fn flag(
    out: &mut Vec<Diagnostic>,
    file: &SourceFile,
    code: &'static str,
    line: u32,
    message: String,
    suggestion: &str,
) {
    if file.allowed("time", line) {
        return;
    }
    out.push(Diagnostic::error(code, &file.path, line, message).with_suggestion(suggestion));
}

/// The timeout-coverage pass.
pub struct TimePass;

impl Pass for TimePass {
    fn name(&self) -> &'static str {
        "time"
    }

    fn description(&self) -> &'static str {
        "every quorum/ack wait in mdcc reaches a timeout edge"
    }

    fn run(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for file in ws.files_under("crates/mdcc/src/") {
            let toks = file.toks();
            let cg = CallGraph::build(toks);

            // TIME001: table-driven must-arm through wait inserts.
            for rule in WAIT_TABLE {
                if !file.path.ends_with(rule.file_suffix) {
                    continue;
                }
                for f in &cg.fns {
                    let inserts: Vec<MethodCall> = method_calls(toks, f.body.clone(), &["insert"])
                        .into_iter()
                        .filter(|c| c.coll == rule.collection)
                        .collect();
                    if inserts.is_empty() {
                        continue;
                    }
                    let cfg = build_cfg(toks, f.body.clone());
                    let gens = schedule_gens(toks, &cfg, rule.timer);
                    for ins in inserts {
                        if !armed_on_path(toks, &cfg, &gens, ins.idx) {
                            flag(
                                out,
                                file,
                                "TIME001",
                                ins.line,
                                format!(
                                    "wait registered in `{}.{}` without a timeout: some path through this insert in `{}` never schedules `Msg::{}`",
                                    rule.collection, "insert", f.name, rule.timer
                                ),
                                "arm the timer with `ctx.schedule(timeout, Msg::..)` on every path that registers the wait, or annotate with `// check:allow(time)` if the wait is reclaimed elsewhere",
                            );
                        }
                    }
                }
            }

            // Collect scheduled timer variants and their sites.
            let whole = 0..toks.len();
            let sites = schedule_sites(toks, whole.clone());
            let scheduled: BTreeSet<String> =
                sites.iter().filter_map(|s| s.variant.clone()).collect();
            if scheduled.is_empty() {
                continue;
            }

            // TIME002: scheduled-but-never-handled variants. A variant is
            // "handled" if `Msg::X` appears anywhere outside schedule
            // argument lists (a match pattern, a re-send, a forward).
            let all_hits = super::find_paths(toks, whole.clone(), "Msg");
            for variant in &scheduled {
                let outside = all_hits
                    .iter()
                    .any(|h| h.name == *variant && !sites.iter().any(|s| s.args.contains(&h.idx)));
                if !outside {
                    let line = sites
                        .iter()
                        .find(|s| s.variant.as_deref() == Some(variant))
                        .map(|s| s.line)
                        .unwrap_or(1);
                    flag(
                        out,
                        file,
                        "TIME002",
                        line,
                        format!(
                            "timer `Msg::{variant}` is scheduled but never handled in this file"
                        ),
                        "add a handler arm for the timer message (or delete the schedule); a timer nobody consumes is a silent liveness hole",
                    );
                }
            }

            // TIME003: one-shot timer consumed without re-arm.
            let arms = {
                let mut v = Vec::new();
                for f in &cg.fns {
                    v.extend(arms_in(toks, f.body.clone()));
                }
                v
            };
            // Handler regions per scheduled variant: the matching arms plus
            // every same-file function reachable from them.
            struct Region {
                variant: String,
                arms: Vec<crate::cfg::Arm>,
                fns: BTreeSet<usize>,
            }
            let regions: Vec<Region> = scheduled
                .iter()
                .map(|variant| {
                    let handler_arms: Vec<crate::cfg::Arm> = arms
                        .iter()
                        .filter(|a| range_has_path(toks, a.pattern.clone(), "Msg", variant))
                        .cloned()
                        .collect();
                    let mut roots: BTreeSet<usize> = BTreeSet::new();
                    for arm in &handler_arms {
                        for name in call_names(toks, arm.body.clone()) {
                            roots.extend(cg.named(&name).iter().copied());
                        }
                    }
                    let fns = cg.reachable(roots);
                    Region {
                        variant: variant.clone(),
                        arms: handler_arms,
                        fns,
                    }
                })
                .collect();
            let region_contains = |r: &Region, idx: usize| -> bool {
                r.arms.iter().any(|a| a.body.contains(&idx))
                    || r.fns.iter().any(|&f| cg.fns[f].body.contains(&idx))
            };
            let removals = method_calls(toks, whole.clone(), &["remove", "clear", "retain"]);
            for region in &regions {
                if region.arms.is_empty() {
                    continue; // TIME002's territory
                }
                let variant = &region.variant;
                let handler_set = &region.fns;
                // Collections reclaimed *only* by this timer's handler:
                // every removal site lies in this region and in no other
                // timer's region (a site reachable from two timers means
                // sweep ownership is ambiguous — e.g. a service queue that
                // re-dispatches arbitrary messages — and a one-shot
                // starvation claim would be unsound).
                let exclusive = |idx: usize| -> bool {
                    region_contains(region, idx)
                        && !regions
                            .iter()
                            .filter(|r| r.variant != *variant)
                            .any(|r| region_contains(r, idx))
                };
                let mut swept: BTreeSet<String> = BTreeSet::new();
                for r in &removals {
                    if exclusive(r.idx) {
                        swept.insert(r.coll.clone());
                    }
                }
                swept.retain(|c| {
                    removals
                        .iter()
                        .filter(|r| &r.coll == c)
                        .all(|r| exclusive(r.idx))
                });
                if swept.is_empty() {
                    continue;
                }
                // Any handler-reachable insert into a swept collection must
                // re-arm the timer on its path (in the inserting function or
                // around every handler-side call into it).
                for &fi in handler_set {
                    let f = &cg.fns[fi];
                    let inserts: Vec<MethodCall> = method_calls(toks, f.body.clone(), &["insert"])
                        .into_iter()
                        .filter(|c| swept.contains(&c.coll))
                        .collect();
                    if inserts.is_empty() {
                        continue;
                    }
                    let cfg = build_cfg(toks, f.body.clone());
                    let gens = schedule_gens(toks, &cfg, variant);
                    for ins in inserts {
                        let mut ok = armed_on_path(toks, &cfg, &gens, ins.idx);
                        if !ok {
                            // Caller-level cover: every handler-side call
                            // into `f` re-arms around the call site.
                            let callers: Vec<usize> = handler_set
                                .iter()
                                .copied()
                                .filter(|&g| cg.callees[g].contains(&fi))
                                .collect();
                            ok = !callers.is_empty()
                                && callers.iter().all(|&g| {
                                    let gf = &cg.fns[g];
                                    let gcfg = build_cfg(toks, gf.body.clone());
                                    let ggens = schedule_gens(toks, &gcfg, variant);
                                    let call_sites: Vec<usize> = (gf.body.clone())
                                        .filter(|&k| {
                                            toks[k].is_ident(&f.name)
                                                && toks.get(k + 1).is_some_and(|t| t.is_punct('('))
                                        })
                                        .collect();
                                    !call_sites.is_empty()
                                        && call_sites
                                            .iter()
                                            .all(|&k| armed_on_path(toks, &gcfg, &ggens, k))
                                });
                        }
                        if !ok {
                            flag(
                                out,
                                file,
                                "TIME003",
                                ins.line,
                                format!(
                                    "`{}` inserts into `{}`, which only the `Msg::{}` handler reclaims — but the handler path that reaches this insert consumed the timer without re-arming it",
                                    f.name, ins.coll, variant
                                ),
                                "re-schedule the timer on the handler path that performs the insert (the one-shot timer was consumed by firing), or annotate with `// check:allow(time)`",
                            );
                        }
                    }
                }
            }
        }
    }
}
