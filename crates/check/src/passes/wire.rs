//! Wire-codec completeness: every variant of each protocol enum must have a
//! matching encode arm and decode arm in the hand-rolled codec, with field
//! counts cross-checked against the enum declaration.
//!
//! The codec in `crates/cluster/src/wire.rs` is written by hand (the
//! workspace builds offline, so there is no derive-based serializer whose
//! exhaustive `match` the compiler would police on *both* sides: encode is a
//! `match` — exhaustive — but decode is a tag dispatch that silently loses a
//! variant). This pass restores the missing compiler guarantee: adding a
//! message variant without wiring the codec fails CI with a named variant.

use crate::diag::Diagnostic;
use crate::model::{Pass, Workspace};
use crate::passes::{find_paths, group_field_count};

/// One enum ↔ codec-function binding.
struct CodecRule {
    enum_name: &'static str,
    enum_file: &'static str,
    codec_file: &'static str,
    encode_fn: &'static str,
    decode_fn: &'static str,
}

/// The protocol surface: every enum that crosses the wire, and the pair of
/// codec functions responsible for it.
const RULES: &[CodecRule] = &[
    CodecRule {
        enum_name: "Msg",
        enum_file: "crates/mdcc/src/messages.rs",
        codec_file: "crates/cluster/src/wire.rs",
        encode_fn: "put_msg",
        decode_fn: "get_msg",
    },
    CodecRule {
        enum_name: "ProgressStage",
        enum_file: "crates/mdcc/src/messages.rs",
        codec_file: "crates/cluster/src/wire.rs",
        encode_fn: "put_stage",
        decode_fn: "get_stage",
    },
    CodecRule {
        enum_name: "Outcome",
        enum_file: "crates/mdcc/src/messages.rs",
        codec_file: "crates/cluster/src/wire.rs",
        encode_fn: "put_outcome",
        decode_fn: "get_outcome",
    },
    CodecRule {
        enum_name: "ReadLevel",
        enum_file: "crates/mdcc/src/messages.rs",
        codec_file: "crates/cluster/src/wire.rs",
        encode_fn: "put_spec",
        decode_fn: "get_spec",
    },
    CodecRule {
        enum_name: "Value",
        enum_file: "crates/storage/src/types.rs",
        codec_file: "crates/cluster/src/wire.rs",
        encode_fn: "put_value",
        decode_fn: "get_value",
    },
    CodecRule {
        enum_name: "WriteOp",
        enum_file: "crates/storage/src/options.rs",
        codec_file: "crates/cluster/src/wire.rs",
        encode_fn: "put_write_op",
        decode_fn: "get_write_op",
    },
    CodecRule {
        enum_name: "RejectReason",
        enum_file: "crates/storage/src/options.rs",
        codec_file: "crates/cluster/src/wire.rs",
        encode_fn: "put_reject",
        decode_fn: "get_reject",
    },
];

/// The wire-codec completeness pass.
pub struct WireCodecPass;

impl Pass for WireCodecPass {
    fn name(&self) -> &'static str {
        "wire"
    }

    fn description(&self) -> &'static str {
        "protocol enums have matching encode/decode arms with consistent field counts"
    }

    fn run(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for rule in RULES {
            // A fixture workspace may carry only some files; a rule whose
            // enum file is absent simply does not apply.
            let Some(enum_file) = ws.file(rule.enum_file) else {
                continue;
            };
            let Some(codec_file) = ws.file(rule.codec_file) else {
                continue;
            };
            let Some(enum_def) = enum_file.enum_named(rule.enum_name) else {
                out.push(Diagnostic::error(
                    "WIRE005",
                    rule.enum_file,
                    1,
                    format!(
                        "protocol enum `{}` not found (renamed? update the codec rules in planet-check)",
                        rule.enum_name
                    ),
                ));
                continue;
            };
            for (side, fn_name, missing_code, count_code) in [
                ("encode", rule.encode_fn, "WIRE001", "WIRE003"),
                ("decode", rule.decode_fn, "WIRE002", "WIRE004"),
            ] {
                let Some(fn_def) = codec_file.fn_named(fn_name) else {
                    out.push(Diagnostic::error(
                        "WIRE006",
                        rule.codec_file,
                        1,
                        format!(
                            "codec function `{fn_name}` for enum `{}` not found (renamed? update the codec rules in planet-check)",
                            rule.enum_name
                        ),
                    ));
                    continue;
                };
                let hits = find_paths(codec_file.toks(), fn_def.body.clone(), rule.enum_name);
                for variant in &enum_def.variants {
                    let uses: Vec<_> = hits.iter().filter(|h| h.name == variant.name).collect();
                    if uses.is_empty() {
                        out.push(
                            Diagnostic::error(
                                missing_code,
                                rule.enum_file,
                                variant.line,
                                format!(
                                    "wire-codec drift: `{}::{}` has no {side} arm in `{}` ({})",
                                    rule.enum_name,
                                    variant.name,
                                    fn_name,
                                    rule.codec_file,
                                ),
                            )
                            .with_suggestion(format!(
                                "add a `{}::{}` arm to `{fn_name}` — and a matching arm on the other side — or the live cluster cannot carry this message",
                                rule.enum_name, variant.name
                            )),
                        );
                        continue;
                    }
                    // Field-count cross-check at every use site.
                    for hit in uses {
                        let Some(seen) = group_field_count(codec_file.toks(), hit.idx) else {
                            continue; // `..` rest pattern: count unknowable
                        };
                        let declared = variant.fields.unwrap_or(0);
                        let seen_n = seen.unwrap_or(0);
                        if seen_n != declared {
                            out.push(
                                Diagnostic::error(
                                    count_code,
                                    rule.codec_file,
                                    hit.line,
                                    format!(
                                        "wire-codec drift: {side} arm for `{}::{}` handles {seen_n} field(s) but the enum declares {declared}",
                                        rule.enum_name, variant.name
                                    ),
                                )
                                .with_suggestion(format!(
                                    "see the declaration at {}:{}",
                                    rule.enum_file, variant.line
                                )),
                            );
                        }
                    }
                }
            }
        }
    }
}
