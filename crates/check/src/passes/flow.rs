//! Message-flow analysis: a per-`Msg`-variant send/handle graph spanning
//! `mdcc/src/messages.rs`, the actor files, and the cluster runtime.
//!
//! The wire pass proves the codec covers every variant; this pass proves
//! the *protocol* does. Every variant is declared to route to a role
//! (coordinator / replica / client); sends are `Msg::Variant` constructions,
//! handlers are `Msg::Variant` patterns (match arms, `if let`/`let else`
//! destructures, `matches!`). The codec (`cluster/src/wire.rs`) mentions
//! every variant by design, so it is excluded from the send/handle
//! inventory. Codes:
//!
//! * **FLOW001** — a variant is sent but its receiving role never matches
//!   it (the message arrives and falls through the handler), or a new
//!   variant is missing from the declared routing table.
//! * **FLOW002** — a request variant's handler neither reaches a reply-send
//!   (workspace-wide, via the interprocedural call graph) nor arms a timer
//!   on every path (the PR-5 must-dataflow); and, on the client side, a
//!   file that submits transactions without ever arming a client timer —
//!   one lost reply wedges a closed-loop client forever.
//! * **FLOW003** — dead wire surface: a variant never sent or never handled
//!   by any role file.
//! * **FLOW004** — a `planet-cluster` function that special-cases
//!   `Msg::Submit` (the shed/bounce paths) without reaching the synthetic
//!   `Msg::TxnDone` the client contract promises.
//!
//! Suppress with `// check:allow(flow)`.

use std::collections::HashMap;
use std::ops::Range;

use crate::cfg::{build_cfg, solve, Cfg, Dir, Meet};
use crate::diag::Diagnostic;
use crate::lexer::Tok;
use crate::model::{Pass, SourceFile, Workspace};
use crate::parse::skip_group;
use crate::passes::determinism::cfg_test_ranges;
use crate::passes::find_paths;

/// The message enum's home.
const MSG_FILE: &str = "crates/mdcc/src/messages.rs";

/// The codec mirrors the enum by construction; it is not protocol surface.
const CODEC_FILE: &str = "crates/cluster/src/wire.rs";

/// A protocol role: who a variant is addressed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Coordinator,
    Replica,
    Client,
}

impl Role {
    fn name(self) -> &'static str {
        match self {
            Role::Coordinator => "coordinator",
            Role::Replica => "replica",
            Role::Client => "client",
        }
    }

    /// The files whose handlers implement this role.
    fn files(self) -> &'static [&'static str] {
        match self {
            Role::Coordinator => &["crates/mdcc/src/coordinator.rs"],
            Role::Replica => &["crates/mdcc/src/replica_actor.rs"],
            Role::Client => &[
                "crates/core/src/client.rs",
                "crates/mdcc/src/cluster.rs",
                "crates/cluster/src/load.rs",
            ],
        }
    }
}

/// Variant → receiving role. A variant missing here trips FLOW001 at its
/// declaration: extending the protocol means declaring who handles it.
const ROUTES: &[(&str, Role)] = &[
    ("Submit", Role::Coordinator),
    ("RegisterPlan", Role::Coordinator),
    ("SubmitPlan", Role::Coordinator),
    ("ReadResp", Role::Coordinator),
    ("Vote", Role::Coordinator),
    ("TxnTimeout", Role::Coordinator),
    ("ReadReq", Role::Replica),
    ("FastPropose", Role::Replica),
    ("Propose", Role::Replica),
    ("Replicate", Role::Replica),
    ("Decide", Role::Replica),
    ("Apply", Role::Replica),
    ("DropPending", Role::Replica),
    ("ReplicateAck", Role::Replica),
    ("Crash", Role::Replica),
    ("Recover", Role::Replica),
    ("ReplicaServiceDone", Role::Replica),
    ("Progress", Role::Client),
    ("TxnDone", Role::Client),
    ("PlanReady", Role::Client),
    ("ClientTimer", Role::Client),
];

/// Request variant → (expected reply variant, handling role).
const REQUESTS: &[(&str, &str, Role)] = &[
    ("Submit", "TxnDone", Role::Coordinator),
    ("RegisterPlan", "PlanReady", Role::Coordinator),
    ("SubmitPlan", "TxnDone", Role::Coordinator),
    ("ReadReq", "ReadResp", Role::Replica),
    ("FastPropose", "Vote", Role::Replica),
    ("Propose", "Vote", Role::Replica),
    ("Replicate", "ReplicateAck", Role::Replica),
];

/// One `Msg::Variant` occurrence: file index, token index of the variant
/// ident, line. `test_only` marks a `matches!(..)` membership test — it
/// neither handles the message nor obligates a reply.
#[derive(Debug, Clone, Copy)]
struct Hit {
    file: usize,
    idx: usize,
    line: u32,
    test_only: bool,
}

fn in_ranges(ranges: &[Range<usize>], idx: usize) -> bool {
    ranges.iter().any(|r| r.contains(&idx))
}

/// What a `Msg::Variant` occurrence is doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// Expression position: a construction/send.
    Send,
    /// A destructuring pattern: a handler.
    Pattern,
    /// A `matches!(..)` membership test: neither.
    MatchTest,
}

/// Classify a `Msg::Variant` occurrence (`vidx` = variant ident token) as a
/// pattern (handler) vs an expression (send/construction).
fn classify(toks: &[Tok], vidx: usize) -> Kind {
    // Forward: skip the optional field group, then look for `=>` before a
    // statement/argument boundary — the match-arm shape (guards included).
    let mut k = vidx + 1;
    if k < toks.len() && toks[k].is_punct('{') {
        k = skip_group(toks, k, '{', '}');
    } else if k < toks.len() && toks[k].is_punct('(') {
        k = skip_group(toks, k, '(', ')');
    }
    let mut steps = 0;
    while k < toks.len() && steps < 40 {
        let t = &toks[k];
        if t.is_punct('=') && k + 1 < toks.len() && toks[k + 1].is_punct('>') {
            return Kind::Pattern;
        }
        if t.is_punct('(') {
            k = skip_group(toks, k, '(', ')');
        } else if t.is_punct('[') {
            k = skip_group(toks, k, '[', ']');
        } else if t.is_punct(',')
            || t.is_punct(';')
            || t.is_punct('{')
            || t.is_punct('}')
            || t.is_punct(')')
        {
            break;
        } else {
            k += 1;
        }
        steps += 1;
    }
    // Backward: a `let` at statement level (if-let / while-let / let-else /
    // plain destructure) or an enclosing `matches!(..)` makes it a pattern.
    let Some(mstart) = vidx.checked_sub(3) else {
        return Kind::Send;
    };
    let mut k = mstart;
    let mut steps = 0;
    while k > 0 && steps < 60 {
        k -= 1;
        steps += 1;
        let t = &toks[k];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        if t.is_punct('>') && k > 0 && toks[k - 1].is_punct('=') {
            break; // inside a match-arm body: expression position
        }
        if t.is_ident("let") {
            return Kind::Pattern;
        }
        if t.is_punct('(') {
            // The enclosing group: `matches!(expr, Msg::V { .. })`?
            if k >= 2 && toks[k - 1].is_punct('!') && toks[k - 2].is_ident("matches") {
                return Kind::MatchTest;
            }
            return Kind::Send;
        }
        if t.is_punct(')') || t.is_punct(']') {
            // Skip a balanced group backwards.
            let (open, close) = if t.is_punct(')') {
                ('(', ')')
            } else {
                ('[', ']')
            };
            let mut depth = 1i32;
            while k > 0 && depth > 0 {
                k -= 1;
                if toks[k].is_punct(close) {
                    depth += 1;
                } else if toks[k].is_punct(open) {
                    depth -= 1;
                }
            }
        }
    }
    Kind::Send
}

/// Token indices of `.schedule(` call sites in `range`.
fn schedule_calls(toks: &[Tok], range: Range<usize>) -> Vec<usize> {
    let mut out = Vec::new();
    let mut i = range.start.max(1);
    while i + 1 < range.end.min(toks.len()) {
        if toks[i].is_ident("schedule") && toks[i - 1].is_punct('.') && toks[i + 1].is_punct('(') {
            out.push(i);
        }
        i += 1;
    }
    out
}

/// True when every path through token `idx`'s block passes a
/// `.schedule(..)` call: the block itself, all paths into it, or all paths
/// out of it (the PR-5 TIME must-dataflow).
fn timer_armed_on_path(toks: &[Tok], cfg: &Cfg, body: Range<usize>, idx: usize) -> bool {
    let _ = body;
    let gens: Vec<u64> = cfg
        .blocks
        .iter()
        .map(|b| u64::from(!schedule_calls(toks, b.range.clone()).is_empty()))
        .collect();
    // A match pattern's tokens live between arm bodies, outside every CFG
    // block: fall forward to the arm body the pattern guards.
    let b = (0..cfg.blocks.len())
        .find(|&b| cfg.blocks[b].range.contains(&idx))
        .or_else(|| {
            (0..cfg.blocks.len())
                .filter(|&b| !cfg.blocks[b].range.is_empty() && cfg.blocks[b].range.start >= idx)
                .min_by_key(|&b| cfg.blocks[b].range.start)
        });
    let Some(b) = b else {
        return false;
    };
    if gens[b] & 1 == 1 {
        return true;
    }
    let fwd = solve(cfg, Dir::Forward, Meet::Must, |x| gens[x]);
    let bwd = solve(cfg, Dir::Backward, Meet::Must, |x| gens[x]);
    fwd.entry[b] & 1 == 1 || bwd.entry[b] & 1 == 1
}

fn flag(
    out: &mut Vec<Diagnostic>,
    file: &SourceFile,
    code: &'static str,
    line: u32,
    message: String,
    suggestion: &str,
) {
    if file.allowed("flow", line) {
        return;
    }
    out.push(Diagnostic::error(code, &file.path, line, message).with_suggestion(suggestion));
}

/// The message-flow pass.
pub struct FlowPass;

impl Pass for FlowPass {
    fn name(&self) -> &'static str {
        "flow"
    }

    fn description(&self) -> &'static str {
        "every Msg variant sent is handled by its role, requests reach a reply or an armed timeout, shed paths emit TxnDone"
    }

    fn run(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        let Some(msg_file) = ws.file(MSG_FILE) else {
            return; // fixture workspaces without the protocol: nothing to do
        };
        let Some(msg_enum) = msg_file.enum_named("Msg") else {
            return;
        };
        let files = ws.files();

        // ---- inventory: every Msg::Variant occurrence, classified ----
        let mut sends: HashMap<String, Vec<Hit>> = HashMap::new();
        let mut pats: HashMap<String, Vec<Hit>> = HashMap::new();
        for (fi, f) in files.iter().enumerate() {
            if f.path == CODEC_FILE {
                continue;
            }
            let toks = f.toks();
            let skip = cfg_test_ranges(toks);
            for hit in find_paths(toks, 0..toks.len(), "Msg") {
                if in_ranges(&skip, hit.idx) {
                    continue;
                }
                let kind = classify(toks, hit.idx);
                let h = Hit {
                    file: fi,
                    idx: hit.idx,
                    line: hit.line,
                    test_only: kind == Kind::MatchTest,
                };
                match kind {
                    Kind::Send => sends.entry(hit.name.clone()).or_default().push(h),
                    Kind::Pattern | Kind::MatchTest => {
                        pats.entry(hit.name.clone()).or_default().push(h)
                    }
                }
            }
        }
        let role_file_indices = |role: Role| -> Vec<usize> {
            role.files()
                .iter()
                .filter_map(|p| files.iter().position(|f| &f.path == p))
                .collect()
        };

        // ---- FLOW001 + FLOW003 over the declared enum ----
        for v in &msg_enum.variants {
            let route = ROUTES.iter().find(|(n, _)| *n == v.name).map(|(_, r)| *r);
            let Some(role) = route else {
                flag(
                    out,
                    msg_file,
                    "FLOW001",
                    v.line,
                    format!(
                        "`Msg::{}` has no declared receiving role in the flow routing table",
                        v.name
                    ),
                    "every protocol variant must name its handler role; extend ROUTES in the flow pass (or annotate with `// check:allow(flow)`)",
                );
                continue;
            };
            let v_sends = sends.get(&v.name).map(Vec::as_slice).unwrap_or(&[]);
            let v_pats = pats.get(&v.name).map(Vec::as_slice).unwrap_or(&[]);
            let role_fis = role_file_indices(role);
            if !v_sends.is_empty()
                && !v_pats
                    .iter()
                    .any(|h| !h.test_only && role_fis.contains(&h.file))
            {
                let first = v_sends[0];
                flag(
                    out,
                    &files[first.file],
                    "FLOW001",
                    first.line,
                    format!(
                        "`Msg::{}` is sent here but the {} role never matches it — the message arrives and is silently dropped",
                        v.name,
                        role.name()
                    ),
                    "add a handler arm on the receiving role, or annotate with `// check:allow(flow)` and justify",
                );
            }
            // FLOW003: dead wire surface. Handling only counts in role files
            // (a transport or checker matching a variant is not a handler).
            let any_role_file: Vec<usize> = [Role::Coordinator, Role::Replica, Role::Client]
                .iter()
                .flat_map(|r| role_file_indices(*r))
                .collect();
            if v_sends.is_empty() {
                flag(
                    out,
                    msg_file,
                    "FLOW003",
                    v.line,
                    format!("`Msg::{}` is never sent: dead wire surface", v.name),
                    "delete the variant (and its codec arms), or annotate with `// check:allow(flow)` if it is reserved",
                );
            } else if !v_pats
                .iter()
                .any(|h| !h.test_only && any_role_file.contains(&h.file))
            {
                flag(
                    out,
                    msg_file,
                    "FLOW003",
                    v.line,
                    format!(
                        "`Msg::{}` is never handled by any role file: dead wire surface",
                        v.name
                    ),
                    "delete the variant (and its codec arms), or annotate with `// check:allow(flow)` if it is reserved",
                );
            }
        }

        // ---- FLOW002: request handlers must reply or arm a timeout ----
        let g = ws.graph();
        for (req, reply, role) in REQUESTS {
            let reply_sends = sends.get(*reply).map(Vec::as_slice).unwrap_or(&[]);
            for &fi in &role_file_indices(*role) {
                let f = &files[fi];
                let toks = f.toks();
                for &node in g.nodes_of_file(fi) {
                    let body = g.fns[node].body.clone();
                    let req_hits: Vec<Hit> = pats
                        .get(*req)
                        .map(Vec::as_slice)
                        .unwrap_or(&[])
                        .iter()
                        .filter(|h| !h.test_only && h.file == fi && body.contains(&h.idx))
                        .copied()
                        .collect();
                    if req_hits.is_empty() {
                        continue;
                    }
                    // Workspace-reachable regions from the handler.
                    let (reach, _) = g.reachable_with_preds([node]);
                    let replies = reply_sends.iter().any(|s| {
                        reach
                            .iter()
                            .any(|&n| g.fns[n].file == s.file && g.fns[n].body.contains(&s.idx))
                    });
                    if replies {
                        continue;
                    }
                    let cfg = build_cfg(toks, body.clone());
                    for h in req_hits {
                        if !timer_armed_on_path(toks, &cfg, body.clone(), h.idx) {
                            flag(
                                out,
                                f,
                                "FLOW002",
                                h.line,
                                format!(
                                    "handler for request `Msg::{req}` neither reaches a `Msg::{reply}` send nor arms a timeout on every path"
                                ),
                                "a request the sender waits on must produce a reply or a timer; add the reply send or `ctx.schedule(..)`, or annotate with `// check:allow(flow)`",
                            );
                        }
                    }
                }
            }
        }
        // Client side: a file that submits must arm a client-side timer
        // somewhere, or one lost reply wedges its closed loop.
        for &fi in &role_file_indices(Role::Client) {
            let f = &files[fi];
            let toks = f.toks();
            let skip = cfg_test_ranges(toks);
            let submits: Vec<&Hit> = sends
                .get("Submit")
                .map(Vec::as_slice)
                .unwrap_or(&[])
                .iter()
                .filter(|h| h.file == fi)
                .collect();
            if submits.is_empty() {
                continue;
            }
            let has_timer = schedule_calls(toks, 0..toks.len())
                .iter()
                .any(|&i| !in_ranges(&skip, i));
            if !has_timer {
                let first = submits[0];
                flag(
                    out,
                    f,
                    "FLOW002",
                    first.line,
                    "client sends `Msg::Submit` but this file never arms a client-side timer — one lost reply wedges the closed loop forever".to_string(),
                    "arm a `Msg::ClientTimer` deadline per in-flight transaction and resubmit/report on expiry, or annotate with `// check:allow(flow)`",
                );
            }
        }

        // ---- FLOW004: Submit-shed paths must emit the synthetic TxnDone ----
        let done_sends = sends.get("TxnDone").map(Vec::as_slice).unwrap_or(&[]);
        for (fi, f) in files.iter().enumerate() {
            if !f.path.starts_with("crates/cluster/src/") || f.path == CODEC_FILE {
                continue;
            }
            for &node in g.nodes_of_file(fi) {
                let body = g.fns[node].body.clone();
                let shed_hits: Vec<Hit> = pats
                    .get("Submit")
                    .map(Vec::as_slice)
                    .unwrap_or(&[])
                    .iter()
                    .filter(|h| h.file == fi && body.contains(&h.idx))
                    .copied()
                    .collect();
                if shed_hits.is_empty() {
                    continue;
                }
                let (reach, _) = g.reachable_with_preds([node]);
                let emits_done = done_sends.iter().any(|s| {
                    reach
                        .iter()
                        .any(|&n| g.fns[n].file == s.file && g.fns[n].body.contains(&s.idx))
                });
                if !emits_done {
                    for h in shed_hits {
                        flag(
                            out,
                            f,
                            "FLOW004",
                            h.line,
                            format!(
                                "`{}` special-cases `Msg::Submit` without reaching the synthetic `Msg::TxnDone` the client contract promises",
                                g.fns[node].name
                            ),
                            "a shed/dropped Submit must bounce a timed-out TxnDone to `reply_to`, or annotate with `// check:allow(flow)` and justify",
                        );
                    }
                }
            }
        }
    }
}
