//! Watch PLANET's callbacks fire in wall-clock time.
//!
//! Run with: `cargo run --release --example live_callbacks`
//!
//! The same deterministic deployment the experiments use, paced against the
//! real clock (1 simulated second = 1 wall second), with transaction events
//! streamed over a channel. You can watch the likelihood climb as votes
//! return from around the planet, see the speculative commit fire, and —
//! a couple of hundred real milliseconds later — the final outcome land.

use std::time::Duration;

use planet_core::{Planet, PlanetTxn, Protocol, RealtimePlanet, TxnEvent};

fn main() {
    println!("launching a five-DC deployment paced at real time…");
    let rt = RealtimePlanet::launch(Planet::builder().protocol(Protocol::Fast).seed(99), 1.0);

    // Warm the model quickly (these commit in background sim time).
    for i in 0..5u64 {
        let txn = PlanetTxn::builder()
            .set(format!("warm:{i}"), i as i64)
            .build();
        rt.submit(0, txn);
        std::thread::sleep(Duration::from_millis(300));
    }
    // Drain warm-up events.
    while rt.events().try_recv().is_ok() {}

    println!("\nsubmitting a geo-replicated write from us-east (watch the clock)…");
    let started = std::time::Instant::now();
    let txn = PlanetTxn::builder()
        .set("demo:key", 1i64)
        .speculate_at(0.99)
        .build();
    let handle = rt.submit(0, txn);

    loop {
        match rt.events().recv_timeout(Duration::from_secs(10)) {
            Ok(event) if event.handle() == handle => {
                let wall = started.elapsed().as_millis();
                match &event {
                    TxnEvent::Progress {
                        stage, likelihood, ..
                    } => {
                        println!("  [{wall:>4}ms wall] {stage:?}: p = {likelihood:.3}");
                    }
                    TxnEvent::Speculative { likelihood, .. } => {
                        println!("  [{wall:>4}ms wall] ✦ speculative commit (p = {likelihood:.3})");
                    }
                    TxnEvent::Final {
                        outcome, latency, ..
                    } => {
                        println!("  [{wall:>4}ms wall] ✔ final outcome: {outcome:?} ({latency} simulated)");
                        break;
                    }
                    other => println!("  [{wall:>4}ms wall] {other:?}"),
                }
            }
            Ok(_) => {}
            Err(_) => {
                println!("  (timed out waiting for events)");
                break;
            }
        }
    }

    let planet = rt.shutdown();
    println!(
        "\ndeployment processed {} transactions total",
        planet.all_records().len()
    );
}
