//! Admission control under a contention storm.
//!
//! Run with: `cargo run --release --example admission_control`
//!
//! All five data centers hammer ten hot keys with physical writes while
//! every replica has finite validation capacity. Without admission control
//! the replicas saturate on doomed work and goodput collapses; with the
//! likelihood-based controller, transactions predicted to abort are refused
//! up front and the system keeps committing.

use planet_core::{AdmissionPolicy, Planet, Protocol, SimDuration};
use planet_workload::{Arrival, KeyChooser, KeyDistribution, WriteKind, YcsbConfig, YcsbWorkload};

fn run(admission: Option<AdmissionPolicy>, seed: u64) -> (f64, f64, u64) {
    let mut builder = Planet::builder()
        .protocol(Protocol::Fast)
        .seed(seed)
        .validation_service(SimDuration::from_millis(10));
    if let Some(policy) = admission {
        builder = builder.admission(policy);
    }
    let mut db = builder.build();

    let start = db.now();
    for site in 0..5 {
        let w = YcsbWorkload::new(
            YcsbConfig {
                arrival: Arrival::poisson(30.0),
                write_kind: WriteKind::Physical,
                ..Default::default()
            },
            KeyChooser::new("hot", KeyDistribution::Zipfian { n: 10, theta: 0.9 }),
        );
        db.attach_source(site, Box::new(w));
    }
    db.run_for(SimDuration::from_secs(30));
    let end = db.now();
    db.run_for(SimDuration::from_secs(15));

    let records: Vec<_> = db
        .all_records()
        .into_iter()
        .filter(|r| r.submitted_at >= start && r.submitted_at < end)
        .collect();
    let commits = records.iter().filter(|r| r.outcome.is_commit()).count();
    let goodput = commits as f64 / end.since(start).as_secs_f64();
    let admitted = records
        .iter()
        .filter(|r| r.outcome != planet_core::FinalOutcome::Rejected)
        .count();
    let commit_rate = if admitted > 0 {
        commits as f64 / admitted as f64
    } else {
        0.0
    };
    let refused: u64 = (0..5).map(|s| db.admission_stats(s).1).sum();
    (goodput, commit_rate, refused)
}

fn main() {
    println!("contention storm: 5 sites × 30 txn/s of physical writes on 10 hot keys");
    println!("replica capacity: 100 validations/s each (10ms per option)\n");

    let (g0, c0, _) = run(None, 11);
    println!("without admission control:");
    println!("  goodput      : {g0:.1} committed txns/s");
    println!(
        "  commit rate  : {:.1}% of admitted transactions\n",
        c0 * 100.0
    );

    let policy = AdmissionPolicy {
        min_likelihood: 0.2,
        max_inflight: 4096,
    };
    let (g1, c1, refused) = run(Some(policy), 12);
    println!("with likelihood-based admission control (refuse below p=0.2):");
    println!("  goodput      : {g1:.1} committed txns/s");
    println!(
        "  commit rate  : {:.1}% of admitted transactions",
        c1 * 100.0
    );
    println!("  refused      : {refused} transactions shed before touching the WAN\n");

    println!(
        "admission control {} goodput by {:.1}x and raised the admitted commit rate by {:.1}x",
        if g1 > g0 { "improved" } else { "changed" },
        g1 / g0.max(0.01),
        c1 / c0.max(0.01),
    );
}
