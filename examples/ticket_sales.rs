//! The paper's motivating scenario: a worldwide flash ticket sale.
//!
//! Run with: `cargo run --release --example ticket_sales`
//!
//! Buyers at all five data centers race for tickets to a small set of
//! events (one of them very hot). Each purchase decrements the event's
//! stock — a commutative option with a floor of zero, so the system can
//! admit concurrent purchases without conflicts while *provably never
//! overselling* — and inserts an order record. The storefront answers
//! users from the speculative-commit callback long before the WAN commit
//! finishes.

use planet_core::{Planet, Protocol, SimDuration};
use planet_workload::{preload_events, stock_key, Arrival, TicketConfig, TicketWorkload};

fn main() {
    let config = TicketConfig {
        events: 10,
        theta: 0.9,
        initial_stock: 40,
        tickets_per_purchase: 1,
        arrival: Arrival::poisson(15.0),
        speculate_at: Some(0.95),
        deadline: Some(SimDuration::from_millis(300)),
        limit: Some(60),
    };

    let mut db = Planet::builder().protocol(Protocol::Fast).seed(7).build();
    println!(
        "stocking {} events with {} tickets each…",
        config.events, config.initial_stock
    );
    preload_events(&mut db, &config);

    println!("opening the sale at all five data centers…");
    for site in 0..5 {
        db.attach_source(
            site,
            Box::new(TicketWorkload::new(config.clone(), site as u8)),
        );
    }
    db.run_for(SimDuration::from_secs(60));

    // Audit.
    let purchases: Vec<_> = db
        .all_records()
        .into_iter()
        .filter(|r| r.write_keys == 2)
        .collect();
    let commits = purchases.iter().filter(|r| r.outcome.is_commit()).count();
    let speculated = purchases
        .iter()
        .filter(|r| r.speculated_at.is_some())
        .count();
    let apologies = purchases.iter().filter(|r| r.apologised()).count();
    let mut spec_ms: Vec<f64> = purchases
        .iter()
        .filter_map(|r| r.speculated_at.map(|d| d.as_millis_f64()))
        .collect();
    spec_ms.sort_by(|a, b| a.partial_cmp(b).expect("latencies are never NaN"));
    let mut final_ms: Vec<f64> = purchases
        .iter()
        .filter(|r| r.outcome.is_commit())
        .map(|r| r.latency.as_millis_f64())
        .collect();
    final_ms.sort_by(|a, b| a.partial_cmp(b).expect("latencies are never NaN"));

    println!("\n== sale results ==");
    println!("purchases attempted : {}", purchases.len());
    println!("tickets sold        : {commits}");
    println!("storefront answered speculatively for {speculated} purchases");
    if !spec_ms.is_empty() && !final_ms.is_empty() {
        println!(
            "median user-visible response: {:.1}ms (speculative) vs {:.1}ms (final commit)",
            spec_ms[spec_ms.len() / 2],
            final_ms[final_ms.len() / 2]
        );
    }
    println!("apologies (wrong speculation): {apologies}");

    println!("\n== inventory audit (must never be negative anywhere) ==");
    let mut total_remaining = 0i64;
    for event in 0..config.events {
        let stock = match db.read_local(0, &stock_key(event)) {
            planet_core::Value::Int(s) => s,
            other => panic!("unexpected stock value {other:?}"),
        };
        assert!(stock >= 0, "oversold event {event}!");
        total_remaining += stock;
        println!("event {event:>2}: {stock:>3} tickets left");
    }
    let expected_sold = config.events as i64 * config.initial_stock - total_remaining;
    println!("\ntickets gone from inventory: {expected_sold} (committed purchases: {commits})");
    assert_eq!(
        expected_sold as usize, commits,
        "inventory must balance the order book"
    );
    println!("inventory balances ✓");
}
