//! Deadline planning: inverting the likelihood model.
//!
//! Run with: `cargo run --release --example deadline_planner`
//!
//! Instead of asking "will this transaction commit within my deadline?",
//! an application planning its UI asks the inverse question: *what deadline
//! buys me 95% confidence?* `Planet::suggest_deadline` answers it from the
//! site's learned path latencies and per-key conflict history — so the
//! answer differs per data center and per key, and adapts when the network
//! degrades.

use planet_core::{Planet, PlanetTxn, Protocol, SimDuration};
use planet_sim::topology::FIVE_DC_NAMES;
use planet_sim::{SiteId, Spike};

fn warm_site(db: &mut Planet, site: usize, n: u64) {
    let base = db.now();
    for i in 0..n {
        let txn = PlanetTxn::builder()
            .set(format!("warm:{site}:{i}"), i as i64)
            .build();
        db.submit_at(site, base + SimDuration::from_millis(1 + i * 350), txn);
    }
}

fn print_plan(db: &mut Planet, label: &str) {
    println!("\n== suggested deadlines, {label} ==");
    println!(
        "{:>14}  {:>10}  {:>10}  {:>10}",
        "origin", "p=0.50", "p=0.95", "p=0.99"
    );
    for (site, name) in FIVE_DC_NAMES.iter().enumerate() {
        let txn = PlanetTxn::builder().set("planning-probe", 0i64).build();
        let fmt = |p: f64, db: &mut Planet| match db.suggest_deadline(site, &txn, p) {
            Some(d) => format!("{:.0}ms", d.as_millis_f64()),
            None => "—".to_string(),
        };
        println!(
            "{:>14}  {:>10}  {:>10}  {:>10}",
            name,
            fmt(0.50, db),
            fmt(0.95, db),
            fmt(0.99, db),
        );
    }
}

fn main() {
    let mut db = Planet::builder()
        .protocol(Protocol::Fast)
        .seed(2014)
        .build();
    for site in 0..5 {
        warm_site(&mut db, site, 30);
    }
    db.run_for(SimDuration::from_secs(20));
    print_plan(&mut db, "calm network");

    // Degrade one trans-Pacific region and let the models observe it.
    println!("\n……… 3x latency storm towards ap-southeast; models re-learning ………");
    let from = db.now();
    db.network_mut().add_spike(Spike {
        from,
        to: from + SimDuration::from_secs(600),
        site: Some(SiteId(4)),
        factor: 3.0,
    });
    for site in 0..5 {
        warm_site(&mut db, site, 30);
    }
    db.run_for(SimDuration::from_secs(20));
    print_plan(&mut db, "during the ap-southeast storm");

    println!(
        "\nnote: origins whose fast quorum needs ap-southeast (notably ap-southeast \
         itself) now require much longer deadlines for the same confidence; \
         the others are unchanged because the 4-of-5 quorum routes around the storm."
    );
}
