//! Speculative workflows: chaining dependent transactions on *likelihood*
//! instead of durability — one of PLANET's expressiveness use cases.
//!
//! Run with: `cargo run --release --example checkout_workflow`
//!
//! A checkout is three dependent geo-replicated transactions:
//!   1. reserve stock        (commutative decrement, floor 0)
//!   2. create the order     (physical insert)
//!   3. charge the payment   (commutative balance decrement)
//!
//! Sequentially, that is three full WAN commits (~500 ms+). With
//! `ChainTrigger::Speculative`, each step launches the moment its
//! predecessor is *probably* committed, overlapping the WAN rounds. If a
//! predecessor ultimately aborts, unstarted successors are cancelled
//! automatically.

use planet_core::{ChainTrigger, FinalOutcome, Planet, PlanetTxn, Protocol, SimDuration};

fn checkout(
    db: &mut Planet,
    trigger: Option<ChainTrigger>,
    order_id: u64,
    user: u64,
) -> SimDuration {
    let reserve = PlanetTxn::builder()
        .add_with_floor("stock:gadget", -1, 0)
        .speculate_at(0.95)
        .build();
    let order = PlanetTxn::builder()
        .set(format!("order:{order_id}"), order_id as i64)
        .speculate_at(0.95)
        .build();
    let charge = PlanetTxn::builder()
        .add_with_floor(format!("balance:user{user}"), -100, 0)
        .build();

    let h1 = db.submit(0, reserve);
    let (h2, h3) = match trigger {
        Some(t) => {
            let h2 = db.submit_after(h1, t, order);
            let h3 = db.submit_after(h2, t, charge);
            (h2, h3)
        }
        None => {
            // Sequential baseline: wait for durability at each step.
            db.run_for(SimDuration::from_secs(3));
            assert!(db
                .record(h1)
                .expect("transaction was recorded")
                .outcome
                .is_commit());
            let h2 = db.submit(0, order);
            db.run_for(SimDuration::from_secs(3));
            assert!(db
                .record(h2)
                .expect("transaction was recorded")
                .outcome
                .is_commit());
            let h3 = db.submit(0, charge);
            (h2, h3)
        }
    };
    db.run_for(SimDuration::from_secs(5));
    for (step, h) in [(1, h1), (2, h2), (3, h3)] {
        assert_eq!(
            db.record(h).expect("transaction was recorded").outcome,
            FinalOutcome::Committed,
            "step {step} must commit"
        );
    }
    // Sequential's artificial waits between steps shouldn't count; its
    // honest end-to-end time is the sum of the three commit latencies.
    // Chained strategies are measured wall-to-wall.
    match trigger {
        None => [h1, h2, h3]
            .iter()
            .map(|h| db.record(*h).expect("transaction was recorded").latency)
            .fold(SimDuration::ZERO, |a, b| a + b),
        Some(_) => {
            let first = db.record(h1).expect("transaction was recorded");
            let last = db.record(h3).expect("transaction was recorded");
            last.submitted_at + last.latency - first.submitted_at
        }
    }
}

fn main() {
    let mut db = Planet::builder().protocol(Protocol::Fast).seed(77).build();

    // Stock the shelves, fund the users, warm the model.
    let mut seed_txn = PlanetTxn::builder().set("stock:gadget", 1_000i64);
    for user in 0..40u64 {
        seed_txn = seed_txn.set(format!("balance:user{user}"), 10_000i64);
    }
    db.submit(0, seed_txn.build());
    for i in 0..20u64 {
        let txn = PlanetTxn::builder().set(format!("warm:{i}"), 0i64).build();
        db.submit_at(0, db.now() + SimDuration::from_millis(1 + i * 300), txn);
    }
    db.run_for(SimDuration::from_secs(10));

    println!("running 10 checkouts per strategy…\n");
    let mut totals = Vec::new();
    for (label, trigger) in [
        ("sequential (wait for durability)", None),
        ("chained on durable commit", Some(ChainTrigger::Commit)),
        ("chained speculatively", Some(ChainTrigger::Speculative)),
    ] {
        let mut span = SimDuration::ZERO;
        for i in 0..10u64 {
            let order_id = match trigger {
                None => i,
                Some(ChainTrigger::Commit) => 100 + i,
                Some(ChainTrigger::Speculative) => 200 + i,
            };
            span += checkout(&mut db, trigger, order_id, i);
        }
        let mean = SimDuration::from_micros(span.as_micros() / 10);
        println!("{label:<34} mean end-to-end: {mean}");
        totals.push(mean);
    }
    println!(
        "\nspeculative chaining finished the 3-step workflow {:.1}x faster than sequential",
        totals[0].as_millis_f64() / totals[2].as_millis_f64()
    );
    let apologies = db.metrics().counter_value("planet.apologies");
    let cancelled = db.metrics().counter_value("planet.cancelled");
    println!("apologies: {apologies}, cancelled successors: {cancelled}");
}
