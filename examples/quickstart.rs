//! Quickstart: a five-data-center PLANET deployment in a few lines.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! Submits one transaction from the us-east application server and prints
//! every event the PLANET programming model delivers: progress callbacks
//! carrying the live commit likelihood, the speculative-commit signal, and
//! the final outcome.

use planet_core::{Planet, PlanetTxn, Protocol, SimDuration, TxnEvent};

fn main() {
    // A deterministic five-DC deployment running the MDCC fast commit path.
    let mut db = Planet::builder()
        .protocol(Protocol::Fast)
        .seed(2014)
        .build();

    // Stock the inventory and warm the latency model with a little
    // background traffic so the first "real" transaction gets meaningful
    // predictions.
    db.submit(0, PlanetTxn::builder().set("stock:widget", 100i64).build());
    for i in 0..20u64 {
        let txn = PlanetTxn::builder()
            .set(format!("warm:{i}"), i as i64)
            .build();
        db.submit_at(0, db.now() + SimDuration::from_millis(1 + i * 300), txn);
    }
    db.run_for(SimDuration::from_secs(10));

    println!("— submitting a transaction from us-east —");
    let txn = PlanetTxn::builder()
        .set("user:42:cart", 3i64)
        .add_with_floor("stock:widget", -3, 0)
        .deadline(SimDuration::from_millis(300))
        .speculate_at(0.95)
        .on_event(|event| match event {
            TxnEvent::Progress { stage, likelihood, elapsed, .. } => {
                println!("  +{elapsed:>10} {stage:?}: commit likelihood {likelihood:.3}");
            }
            TxnEvent::Speculative { likelihood, elapsed, .. } => {
                println!("  +{elapsed:>10} SPECULATIVE COMMIT (p = {likelihood:.3}) — tell the user now!");
            }
            TxnEvent::DeadlineExceeded { likelihood, .. } => {
                println!("  deadline passed; still running (p = {likelihood:.3})");
            }
            TxnEvent::Final { outcome, latency, .. } => {
                println!("  +{latency:>10} FINAL: {outcome:?}");
            }
            TxnEvent::Apology { .. } => {
                println!("  we speculated wrongly — apologise to the user");
            }
            TxnEvent::CompensationSubmitted { compensation, .. } => {
                println!("  compensation {compensation} submitted");
            }
        })
        .build();
    let handle = db.submit(0, txn);
    db.run_for(SimDuration::from_secs(5));

    let record = db.record(handle).expect("transaction finished");
    println!("\noutcome: {:?} in {}", record.outcome, record.latency);
    println!(
        "stock:widget is now {:?} at every site (e.g. Tokyo: {:?})",
        db.read_local(0, &planet_core::Key::new("stock:widget")),
        db.read_local(3, &planet_core::Key::new("stock:widget")),
    );
}
