//! Explore commit latency across origins, protocols and network weather.
//!
//! Run with: `cargo run --release --example latency_explorer`
//!
//! Prints a per-origin latency comparison of the three commit paths, then
//! injects a trans-Pacific latency spike and shows how commits from the
//! affected region degrade while the others hold — the "unpredictable
//! environment" PLANET is built for.

use planet_core::{Planet, PlanetTxn, Protocol, SimDuration};
use planet_sim::topology::FIVE_DC_NAMES;
use planet_sim::{SiteId, Spike};

fn percentile(mut v: Vec<f64>, q: f64) -> f64 {
    if v.is_empty() {
        return f64::NAN;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("latencies are never NaN"));
    v[((q * (v.len() - 1) as f64).round()) as usize]
}

fn measure(db: &mut Planet, label: &str, n: u64) {
    println!("\n== {label} ==");
    println!("{:>14}  {:>9}  {:>9}", "origin", "p50", "p95");
    let base = db.now();
    let mut handles = vec![Vec::new(); 5];
    for (site, site_handles) in handles.iter_mut().enumerate() {
        for i in 0..n {
            let txn = PlanetTxn::builder()
                .set(format!("{label}:{site}:{i}"), i as i64)
                .build();
            site_handles.push(db.submit_at(
                site,
                base + SimDuration::from_millis(1 + i * 400),
                txn,
            ));
        }
    }
    db.run_for(SimDuration::from_secs(n * 400 / 1000 + 10));
    for site in 0..5usize {
        let lats: Vec<f64> = handles[site]
            .iter()
            .filter_map(|h| db.record(*h))
            .filter(|r| r.outcome.is_commit())
            .map(|r| r.latency.as_millis_f64())
            .collect();
        println!(
            "{:>14}  {:>7.1}ms  {:>7.1}ms",
            FIVE_DC_NAMES[site],
            percentile(lats.clone(), 0.5),
            percentile(lats, 0.95)
        );
    }
}

fn main() {
    for protocol in [Protocol::Fast, Protocol::Classic, Protocol::TwoPc] {
        let mut db = Planet::builder().protocol(protocol).seed(31).build();
        measure(&mut db, &format!("{protocol} path, calm network"), 25);
    }

    // Now a latency storm toward Tokyo.
    println!("\n……… injecting a 5x latency spike on all paths into ap-northeast ………");
    let mut db = Planet::builder().protocol(Protocol::Fast).seed(32).build();
    let from = db.now() + SimDuration::from_secs(1);
    db.network_mut().add_spike(Spike {
        from,
        to: from + SimDuration::from_secs(120),
        site: Some(SiteId(3)),
        factor: 5.0,
    });
    measure(&mut db, "fast path, Tokyo storm", 25);
    println!(
        "\nnote: origins whose fast quorum includes ap-northeast degrade; \
         others route around it (the 4-of-5 quorum does not need the slowest replica)."
    );
}
