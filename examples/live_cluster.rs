//! A real thread-per-actor PLANET cluster — no simulation anywhere.
//!
//! Run with: `cargo run --release --example live_cluster`
//!
//! Unlike `live_callbacks` (the deterministic simulation paced to the wall
//! clock), this spins up a genuinely concurrent deployment: every replica,
//! coordinator and client from `planet-cluster` runs on its own OS thread,
//! exchanging the real protocol messages through the in-process transport
//! while a network model shapes deliveries — here, a three-site WAN with
//! 60 ms cross-site RTT. The PLANET programming model is unchanged: the
//! same progress callbacks, likelihoods and speculative commits, now driven
//! by real time.

use std::time::{Duration, Instant};

use planet_core::{LivePlanet, PlanetTxn, TxnEvent};
use planet_sim::NetworkModel;

fn main() {
    // A three-continent topology: 60 ms RTT between any two sites.
    let rtt = vec![
        vec![0.5, 60.0, 60.0],
        vec![60.0, 0.5, 60.0],
        vec![60.0, 60.0, 0.5],
    ];
    println!("spawning a 3-site live cluster (one OS thread per actor)…");
    let mut db = LivePlanet::builder()
        .topology(NetworkModel::from_rtt_ms(&rtt))
        .seed(99)
        .build();

    // Warm the likelihood model with a few easy commits.
    for i in 0..5u64 {
        let warm = db.submit(
            0,
            PlanetTxn::builder()
                .set(format!("warm:{i}"), i as i64)
                .build(),
        );
        loop {
            match db.events().recv_timeout(Duration::from_secs(10)) {
                Ok(TxnEvent::Final { handle, .. }) if handle == warm => break,
                Ok(_) => {}
                Err(_) => return println!("cluster did not respond"),
            }
        }
    }

    println!("\nsubmitting a geo-replicated write (60ms RTT — watch the wall clock)…");
    let started = Instant::now();
    let txn = PlanetTxn::builder()
        .set("demo:key", 1i64)
        .speculate_at(0.95)
        .build();
    let handle = db.submit(0, txn);

    loop {
        match db.events().recv_timeout(Duration::from_secs(10)) {
            Ok(event) if event.handle() == handle => {
                let wall = started.elapsed().as_millis();
                match &event {
                    TxnEvent::Progress {
                        stage, likelihood, ..
                    } => {
                        println!("  [{wall:>4}ms wall] {stage:?}: p = {likelihood:.3}");
                    }
                    TxnEvent::Speculative { likelihood, .. } => {
                        println!("  [{wall:>4}ms wall] ✦ speculative commit (p = {likelihood:.3})");
                    }
                    TxnEvent::Final {
                        outcome, latency, ..
                    } => {
                        println!("  [{wall:>4}ms wall] ✔ final outcome: {outcome:?} ({latency} end-to-end)");
                        break;
                    }
                    other => println!("  [{wall:>4}ms wall] {other:?}"),
                }
            }
            Ok(_) => {}
            Err(_) => {
                println!("  (timed out waiting for events)");
                break;
            }
        }
    }

    let harvest = db.shutdown();
    println!(
        "\nlive cluster processed {} transactions; {} messages shaped away by the network model",
        harvest.all_records().len(),
        harvest.dropped()
    );
}
